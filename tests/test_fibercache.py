"""Unit tests for the FiberCache (paper Sec. 3.2)."""

import pytest

from repro.config import GammaConfig, LINE_BYTES
from repro.core.fibercache import FiberCache, lines_for_bytes


def tiny_cache(ways=4, sets=4):
    config = GammaConfig(
        fibercache_bytes=ways * sets * LINE_BYTES,
        fibercache_ways=ways,
    )
    return FiberCache(config)


class TestPrimitives:
    def test_fetch_miss_then_read_hit(self):
        cache = tiny_cache()
        assert cache.fetch(0) is True  # compulsory miss
        assert cache.read(0) is False  # decoupled read hits
        assert cache.stats.fetch_misses == 1
        assert cache.stats.read_hits == 1

    def test_fetch_hit_on_refetch(self):
        cache = tiny_cache()
        cache.fetch(0)
        assert cache.fetch(0) is False
        assert cache.stats.fetch_hits == 1

    def test_read_miss_installs(self):
        cache = tiny_cache()
        assert cache.read(5) is True
        assert cache.contains(5)

    def test_write_allocates_without_fetch(self):
        cache = tiny_cache()
        cache.write(3)
        line = cache.line_state(3)
        assert line.dirty
        assert cache.stats.fetch_misses == 0
        assert cache.miss_lines == {"B": 0, "partial": 0}

    def test_consume_invalidates_without_writeback(self):
        cache = tiny_cache()
        cache.write(3)
        assert cache.consume(3) is False
        assert not cache.contains(3)
        assert cache.stats.dirty_evictions == 0

    def test_consume_miss_counts_partial_read(self):
        cache = tiny_cache()
        assert cache.consume(9) is True
        assert cache.miss_lines["partial"] == 1

    def test_invalidate(self):
        cache = tiny_cache()
        cache.fetch(1)
        cache.invalidate(1)
        assert not cache.contains(1)
        cache.invalidate(1)  # idempotent


class TestPriorityReplacement:
    def test_fetched_lines_protected(self):
        """Fetched-but-unread lines survive a streaming scan (soft lock)."""
        cache = tiny_cache(ways=4, sets=1)
        cache.fetch(0)  # priority 1
        # Stream lines through: each fetch+read leaves priority 0.
        for addr in range(1, 12):
            cache.fetch(addr)
            cache.read(addr)
        assert cache.contains(0)
        assert cache.read(0) is False

    def test_read_releases_priority(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fetch(0)
        cache.read(0)  # priority back to 0 -> evictable
        cache.fetch(1)
        cache.fetch(2)  # set full; 0 should be the victim
        assert not cache.contains(0)
        assert cache.contains(1)
        assert cache.contains(2)

    def test_dirty_eviction_counted(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.write(0)
        cache.write(1)
        cache.fetch(2)
        cache.fetch(3)
        assert cache.stats.dirty_evictions >= 1
        assert cache.last_victim_was_dirty or cache.stats.dirty_evictions == 2

    def test_victim_is_lowest_priority(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fetch(0)  # priority 1 (not yet read)
        cache.fetch(1)
        cache.read(1)  # priority 0
        cache.fetch(2)  # evicts addr 1, not addr 0
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_priority_saturates(self):
        cache = tiny_cache()
        for _ in range(100):
            cache.fetch(0)
        assert cache.line_state(0).priority <= 31
        for _ in range(200):
            cache.read(0)
        assert cache.line_state(0).priority == 0


class TestOccupancyTracking:
    def test_occupancy_by_category(self):
        cache = tiny_cache()
        cache.fetch(0, "B")
        cache.fetch(1, "B")
        cache.write(100, "partial")
        assert cache.occupancy == {"B": 2, "partial": 1}
        util = cache.utilization()
        assert util["B"] == pytest.approx(2 / 16)
        assert util["partial"] == pytest.approx(1 / 16)
        assert util["unused"] == pytest.approx(13 / 16)

    def test_occupancy_after_consume(self):
        cache = tiny_cache()
        cache.write(0, "partial")
        cache.consume(0)
        assert cache.occupancy["partial"] == 0

    def test_sampled_utilization(self):
        cache = tiny_cache()
        cache.fetch(0, "B")
        cache.sample_utilization(weight=1.0)
        cache.fetch(16, "B")  # different set
        cache.sample_utilization(weight=3.0)
        avg = cache.average_utilization()
        assert avg["B"] == pytest.approx((1 / 16 + 3 * 2 / 16) / 4)

    def test_unknown_category_rejected(self):
        cache = tiny_cache()
        with pytest.raises(ValueError, match="category"):
            cache.fetch(0, "X")

    def test_occupancy_never_exceeds_capacity(self):
        cache = tiny_cache(ways=2, sets=2)
        for addr in range(50):
            cache.fetch(addr)
        assert cache.resident_lines <= cache.total_lines


class TestSetMapping:
    def test_conflict_misses_within_set(self):
        cache = tiny_cache(ways=2, sets=4)
        # Addresses 0, 4, 8 all map to set 0 (addr % 4).
        cache.fetch(0)
        cache.read(0)
        cache.fetch(4)
        cache.read(4)
        cache.fetch(8)
        assert not cache.contains(0)
        # Other sets untouched.
        cache.fetch(1)
        assert cache.contains(1)

    def test_capacity_properties(self):
        config = GammaConfig()  # paper default: 3 MB, 16-way
        cache = FiberCache(config)
        assert cache.total_lines == 3 * 1024 * 1024 // 64
        assert cache.num_sets == cache.total_lines // 16


class TestHelpers:
    def test_lines_for_bytes(self):
        assert lines_for_bytes(0) == 0
        assert lines_for_bytes(1) == 1
        assert lines_for_bytes(64) == 1
        assert lines_for_bytes(65) == 2


class TestBankInstrumentation:
    def test_accesses_counted(self):
        cache = tiny_cache()
        cache.fetch(0)
        cache.read(0)
        cache.write(1)
        assert sum(cache.bank_accesses) == 3

    def test_sequential_lines_balance_banks(self):
        """Line-interleaved fiber streaming spreads across banks."""
        from repro.config import GammaConfig
        from repro.core.fibercache import FiberCache

        cache = FiberCache(GammaConfig())
        for addr in range(48 * 20):
            cache.fetch(addr)
        assert cache.bank_load_imbalance() == pytest.approx(1.0)

    def test_conflicting_stride_detected(self):
        from repro.config import GammaConfig
        from repro.core.fibercache import FiberCache

        cache = FiberCache(GammaConfig())
        for i in range(100):
            cache.fetch(i * 48)  # always bank 0
        assert cache.bank_load_imbalance() == pytest.approx(48.0)

    def test_empty_cache_balanced(self):
        cache = tiny_cache()
        assert cache.bank_load_imbalance() == 1.0
