"""Report-path figures: derived purely from a sweep's ``sweep.json``.

The run report (``repro report``) embeds a small figure set built from
the *deterministic roll-up* inside the sweep summary — not from reruns
— so the report's figures inherit the roll-up's guarantee: serial and
parallel executions of the same plan produce byte-identical artifacts.
Artifacts use the same writer as the main pipeline (spec + CSV +
manifest) and land in a ``figures/`` subdirectory next to
``report.md``/``report.html``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.analysis.charts import (
    bar_data,
    chart_csv_rows,
    multi_bar_data,
    render_chart,
    validate_vega_lite_spec,
    vega_lite_spec,
)
from repro.figures.manifest import (
    build_manifest,
    sha256_bytes,
    write_manifest,
)
from repro.figures.pipeline import csv_bytes, spec_bytes

#: Subdirectory of the report output holding the embedded figure set.
REPORT_FIGURES_SUBDIR = "figures"


def summary_charts(summary_payload: Dict[str, Any],
                   ) -> List[Tuple[str, str, Dict[str, Any]]]:
    """``(figure_id, title, chart_data)`` for one sweep summary.

    A pure function of the summary's deterministic ``summary`` key;
    sections with no data (e.g. a sweep with no non-reference models)
    are simply omitted.
    """
    summary = summary_payload["summary"]
    charts: List[Tuple[str, str, Dict[str, Any]]] = []

    speedup = summary.get("speedup", [])
    if speedup:
        charts.append((
            "sweep_speedup",
            "Gmean speedup over MKL per model",
            bar_data(
                [row["model"] for row in speedup],
                [row["gmean_speedup"] for row in speedup],
                title="Gmean speedup over MKL per model",
                label_field="model", value_field="gmean_speedup",
                value_format="{:.1f}x",
            ),
        ))

    traffic = summary.get("traffic", [])
    if traffic:
        charts.append((
            "sweep_traffic",
            "Gmean normalized DRAM traffic per model",
            bar_data(
                [row["model"] for row in traffic],
                [row["gmean_normalized_traffic"] for row in traffic],
                title="Gmean normalized traffic per model "
                      "(1.0 = compulsory)",
                label_field="model",
                value_field="gmean_normalized_traffic",
            ),
        ))

    records = summary.get("records", [])
    if records:
        matrices = sorted({row["matrix"] for row in records})
        labels = sorted({
            (f"gamma[{row['variant']}]" if row["model"] == "gamma"
             else row["model"])
            for row in records
        })
        runtimes: Dict[str, Dict[str, float]] = {}
        for row in records:
            label = (f"gamma[{row['variant']}]"
                     if row["model"] == "gamma" else row["model"])
            runtimes.setdefault(label, {})[row["matrix"]] = \
                row["runtime_seconds"]
        complete = [label for label in labels
                    if set(runtimes[label]) == set(matrices)]
        if complete:
            charts.append((
                "sweep_runtime",
                "Simulated runtime per model and matrix",
                multi_bar_data(
                    matrices,
                    {label: [runtimes[label][m] for m in matrices]
                     for label in complete},
                    title="Simulated runtime (s) per model and matrix",
                    label_field="matrix", series_field="model",
                    value_field="runtime_seconds",
                ),
            ))
    return charts


def write_report_figures(output_dir: Union[str, Path],
                         summary_payload: Dict[str, Any],
                         ) -> Dict[str, Any]:
    """Write the report's figure set; returns its manifest.

    The manifest's scope is ``"report"`` and its inputs fingerprint is
    a digest of the summary's record fingerprints (already part of the
    roll-up), keeping the serial/parallel byte-identity intact.
    """
    out_dir = Path(output_dir) / REPORT_FIGURES_SUBDIR
    out_dir.mkdir(parents=True, exist_ok=True)
    summary = summary_payload["summary"]
    fingerprint = sha256_bytes("\n".join(sorted(
        f"{row['model']}:{row['matrix']}:{row['variant']} "
        f"{row['fingerprint']}"
        for row in summary.get("records", [])
    )).encode("utf-8"))
    entries = []
    for figure_id, title, chart in summary_charts(summary_payload):
        rows = chart_csv_rows(chart)
        data_name = f"{figure_id}.csv"
        spec = vega_lite_spec(chart, data_url=data_name,
                              description=title)
        validate_vega_lite_spec(spec)
        data = csv_bytes(rows)
        payload = spec_bytes(spec)
        spec_name = f"{figure_id}.vl.json"
        (out_dir / data_name).write_bytes(data)
        (out_dir / spec_name).write_bytes(payload)
        entries.append({
            "id": figure_id,
            "title": title,
            "paper_ref": "sweep report",
            "kind": chart["kind"],
            "spec": spec_name,
            "data": data_name,
            "rows": len(rows),
            "spec_sha256": sha256_bytes(payload),
            "data_sha256": sha256_bytes(data),
        })
    manifest = build_manifest("report", fingerprint, entries)
    write_manifest(out_dir, manifest)
    return manifest


def report_figure_sections(summary_payload: Dict[str, Any],
                           ) -> List[Dict[str, str]]:
    """Renderer-ready figure blocks for the markdown/HTML report.

    Each block carries the artifact filenames (relative to the report)
    and the ASCII rendering of the same chart data, so the report shows
    the figure inline and links the versioned artifacts next to it.
    """
    sections = []
    for figure_id, title, chart in summary_charts(summary_payload):
        sections.append({
            "id": figure_id,
            "title": title,
            "spec": f"{REPORT_FIGURES_SUBDIR}/{figure_id}.vl.json",
            "data": f"{REPORT_FIGURES_SUBDIR}/{figure_id}.csv",
            "ascii": render_chart(chart),
        })
    return sections
