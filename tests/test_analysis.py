"""Tests for the analysis package: metrics, traffic, roofline, area, report."""

import pytest

from repro.analysis.area import (
    NODE_SCALE,
    gamma_area,
    merger_area,
    pe_area,
    pe_component_fractions,
    sparch_merger_area_ratio,
)
from repro.analysis.metrics import amean, gmean, speedup
from repro.analysis.report import render_breakdown_table, render_table
from repro.analysis.roofline import (
    ridge_intensity,
    roof_at,
    roofline_point,
)
from repro.analysis.traffic import (
    compulsory_traffic,
    noncompulsory_bytes,
    normalize_breakdown,
)
from repro.config import GammaConfig
from repro.core import multiply
from repro.matrices import generators


class TestMetrics:
    def test_gmean(self):
        assert gmean([2.0, 8.0]) == pytest.approx(4.0)
        assert gmean([5.0]) == pytest.approx(5.0)

    def test_gmean_validation(self):
        with pytest.raises(ValueError):
            gmean([])
        with pytest.raises(ValueError):
            gmean([1.0, 0.0])

    def test_amean(self):
        assert amean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            amean([])

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestTraffic:
    def test_compulsory_empty_a(self):
        from repro.matrices.csr import CsrMatrix

        a = CsrMatrix.from_rows([], 5)
        b = generators.uniform_random(5, 5, 2.0, seed=1)
        compulsory = compulsory_traffic(a, b, 0)
        assert compulsory["B"] == 0

    def test_normalize(self):
        breakdown = normalize_breakdown(
            {"A": 50, "B": 100}, {"A": 50, "B": 50, "C": 50})
        assert breakdown["A"] == pytest.approx(1 / 3)
        assert breakdown["B"] == pytest.approx(2 / 3)

    def test_noncompulsory(self):
        assert noncompulsory_bytes({"A": 120}, {"A": 100}) == 20
        assert noncompulsory_bytes({"A": 80}, {"A": 100}) == 0


class TestRoofline:
    def test_roof_segments(self):
        config = GammaConfig()
        ridge = ridge_intensity(config)
        assert roof_at(ridge / 10, config) == pytest.approx(
            config.memory_bandwidth_bytes_per_s * ridge / 10 / 1e9)
        assert roof_at(ridge * 10, config) == pytest.approx(
            config.peak_flops / 1e9)

    def test_ridge_paper_value(self):
        # 32 GFLOP/s over 128 GB/s -> ridge at 0.25 FLOP/byte.
        assert ridge_intensity(GammaConfig()) == pytest.approx(0.25)

    def test_point_below_roof(self):
        a = generators.uniform_random(200, 200, 5.0, seed=2)
        result = multiply(a, a)
        point = roofline_point("test", result)
        assert point.gflops <= point.roof_gflops * 1.01
        assert 0 < point.efficiency <= 1.01


class TestArea:
    def test_table2_reproduced(self):
        area = gamma_area()
        assert area.total == pytest.approx(30.6, abs=0.1)
        assert area.pes == pytest.approx(4.8, abs=0.05)
        assert area.fibercache == pytest.approx(22.6, abs=0.01)

    def test_pe_fractions_match_table2(self):
        fractions = pe_component_fractions()
        assert fractions["Merger"] == pytest.approx(0.30, abs=0.02)
        assert fractions["FP Mul"] == pytest.approx(0.55, abs=0.02)

    def test_merger_scaling_laws(self):
        # Linear in radix.
        assert merger_area(128) == pytest.approx(2 * merger_area(64))
        # Quadratic in throughput.
        assert merger_area(64, throughput=4) == pytest.approx(
            16 * merger_area(64))

    def test_node_scaling_sec66(self):
        # Paper: 30.6 mm^2 at 45 nm -> 24.2 mm^2 at 40 nm.
        at40 = gamma_area(node_nm=40)
        assert at40.total == pytest.approx(24.2, abs=0.2)
        with pytest.raises(ValueError, match="node"):
            gamma_area(node_nm=28)

    def test_sparch_merger_ratio_order_of_magnitude(self):
        ratio = sparch_merger_area_ratio()
        assert 20 < ratio < 60  # paper: ~38x

    def test_bigger_configs_bigger_area(self):
        small = gamma_area(GammaConfig(num_pes=8))
        big = gamma_area(GammaConfig(num_pes=128))
        assert big.total > small.total

    def test_validation(self):
        with pytest.raises(ValueError):
            merger_area(1)
        with pytest.raises(ValueError):
            merger_area(64, throughput=0)


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "bb"], [[1, 2.345], [10, 0.5]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[1]
        assert "2.35" in text  # default 2-digit precision

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a"], [[1, 2]])

    def test_breakdown_table(self):
        text = render_breakdown_table(
            {"m1": {"A": 0.5, "B": 1.0}},
            categories=["A", "B"],
        )
        assert "m1" in text
        assert "1.50" in text  # total column
