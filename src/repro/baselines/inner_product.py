"""Tiled inner-product spMspM traffic model (the 'IP' bars of Fig. 3).

Inner-product co-iterates rows of A against columns of B per output
element. With tiling, a block of A rows and a block of B columns are held
on chip and every pairwise intersection within the block pair is computed;
A is then re-read once per B column-block and B once per A row-block.
Following the paper's methodology (Sec. 5), coordinates and values are
stored separately for IP, and values are only fetched on an effectual
intersection.

The model picks the tile split that minimizes traffic subject to the block
pair fitting on chip — i.e., an *optimally* tiled inner product, which is
generous to the baseline.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.config import GammaConfig, OFFSET_BYTES
from repro.baselines.common import BaselineResult
from repro.baselines.spgemm_ref import output_nnz_upper_bound
from repro.matrices.csr import CsrMatrix
from repro.matrices.stats import flops as count_flops

#: IP stores 4 B coordinates and 8 B values separately (Sec. 5).
_COORD_BYTES = 4
_VALUE_BYTES = 8


def _length_cv(matrix: CsrMatrix) -> float:
    """Coefficient of variation of row lengths (tile irregularity)."""
    lengths = matrix.row_lengths()
    if len(lengths) == 0:
        return 0.0
    mean = lengths.mean()
    return float(lengths.std() / mean) if mean else 0.0


def run_inner_product_model(
    a: CsrMatrix,
    b: CsrMatrix,
    config: Optional[GammaConfig] = None,
    c_nnz: Optional[int] = None,
) -> BaselineResult:
    """Estimate the traffic of an optimally tiled inner-product accelerator.

    Args:
        a: Left operand (traversed by row blocks).
        b: Right operand (traversed by column blocks).
        config: Provides the on-chip buffer capacity (iso with Gamma).
        c_nnz: Output nonzeros if known.
    """
    config = config or GammaConfig()
    if c_nnz is None:
        c_nnz = output_nnz_upper_bound(a, b)
    flops = count_flops(a, b)
    # The tiler sizes blocks from average density, but per-tile occupancy
    # is "hard-to-predict" on irregular matrices (Sec. 2.3): blocks must
    # leave slack proportional to the row-length dispersion or they
    # overflow. Derate capacity by the coefficient of variation.
    capacity = config.fibercache_bytes / (
        1.0 + _length_cv(a) / 2 + _length_cv(b) / 2)

    a_coord_bytes = a.nnz * _COORD_BYTES + a.num_rows * OFFSET_BYTES
    b_coord_bytes = b.nnz * _COORD_BYTES + b.num_cols * OFFSET_BYTES
    # On-chip bytes per A row / B column (coords only; values stream).
    rows_m, cols_n = a.num_rows, b.num_cols
    avg_row_bytes = max(1.0, a_coord_bytes / max(1, rows_m))
    avg_col_bytes = max(1.0, b_coord_bytes / max(1, cols_n))

    # Choose the split M_t + N_t filling the buffer that minimizes
    #   A_bytes * N/N_t + B_bytes * M/M_t
    # (continuous optimum, then clamped) — an idealized tiler.
    best = None
    budget = capacity
    for fraction in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9):
        tile_m = max(1.0, fraction * budget / avg_row_bytes)
        tile_n = max(1.0, (1 - fraction) * budget / avg_col_bytes)
        passes_a = math.ceil(cols_n / tile_n)
        passes_b = math.ceil(rows_m / tile_m)
        cost = a_coord_bytes * passes_a + b_coord_bytes * passes_b
        if best is None or cost < best[0]:
            best = (cost, passes_a, passes_b)
    coord_traffic, passes_a, passes_b = best

    # Values: fetched only on effectual intersections, cached per tile —
    # at most once per pass, at least once per effectual multiply.
    a_value_traffic = min(a.nnz * _VALUE_BYTES * passes_a,
                          flops * _VALUE_BYTES)
    b_value_traffic = min(b.nnz * _VALUE_BYTES * passes_b,
                          flops * _VALUE_BYTES)
    a_total = (a_coord_bytes * passes_a) + a_value_traffic
    b_total = (b_coord_bytes * passes_b) + b_value_traffic

    c_bytes = c_nnz * (_COORD_BYTES + _VALUE_BYTES) \
        + a.num_rows * OFFSET_BYTES
    traffic = {
        "A": int(a_total),
        "B": int(b_total),
        "C": int(c_bytes),
        "partial_read": 0,
        "partial_write": 0,
    }
    # Inner product traverses full rows/columns per intersection; time is
    # bounded below by coordinate traversal at one element per PE-cycle.
    traversal = (a.nnz * passes_a + b.nnz * passes_b) / config.num_pes
    memory_cycles = sum(traffic.values()) / config.bytes_per_cycle
    return BaselineResult(
        name="IP",
        cycles=max(traversal, memory_cycles),
        frequency_hz=config.frequency_hz,
        traffic_bytes=traffic,
        flops=flops,
        c_nnz=c_nnz,
    )
