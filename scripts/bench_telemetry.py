#!/usr/bin/env python
"""Pinned telemetry-overhead benchmark: spans must stay near-free.

Runs the same serial sweep (disk cache disabled, so every point is
recomputed) twice per repetition — telemetry off, then telemetry on
(span recording to a throwaway directory) — and reports the relative
wall-clock overhead of the instrumented run. The pipeline's contract is
that span recording costs **under 5%** on a compute-bound sweep; this
script pins that number in ``BENCH_telemetry.json`` so successive
commits can be compared, and exits nonzero when the budget is blown.

Workloads are pinned: matrices come from the seeded generator suite,
the plan is fixed, and the median over repetitions is compared (medians
shrug off one noisy neighbour on shared CI runners).

    PYTHONPATH=src python scripts/bench_telemetry.py --out BENCH_telemetry.json

``--quick`` shrinks the repetitions for the CI smoke job (crash check
plus a loose threshold; quick numbers are not comparable to full runs).
"""

import argparse
import json
import os
import platform
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

SCHEMA_VERSION = 1

#: The contract: spans-enabled sweeps cost at most this much more.
OVERHEAD_BUDGET = 0.05

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))


def sweep_plan():
    from repro.engine.sweep import SweepPoint

    return [SweepPoint("gamma", "wiki-Vote", "none"),
            SweepPoint("gamma", "wiki-Vote", "full"),
            SweepPoint("gamma", "poisson3Da", "none")]


def run_once(telemetry_dir):
    """One serial sweep; records wall seconds and emitted event count."""
    from repro.engine.sweep import run_sweep
    from repro.obs import spans

    events = 0
    if telemetry_dir is not None:
        spans.enable(telemetry_dir)
    start = time.perf_counter()
    try:
        result = run_sweep(sweep_plan(), serial=True)
    finally:
        if telemetry_dir is not None:
            spans.disable()
    wall = time.perf_counter() - start
    assert result.complete
    if telemetry_dir is not None:
        events = len(spans.merge_directory(telemetry_dir)["spans"])
    return wall, events


def bench(repeats: int) -> dict:
    os.environ["REPRO_NO_DISK_CACHE"] = "1"
    from repro.matrices import suite

    for point in sweep_plan():  # pre-generate outside the timed region
        suite.operands(point.matrix)
    base_walls, span_walls, events = [], [], 0
    scratch = Path(tempfile.mkdtemp(prefix="bench_telemetry_"))
    try:
        run_once(None)  # warm-up (imports, allocator)
        for index in range(repeats):
            wall, _ = run_once(None)
            base_walls.append(wall)
            tele = scratch / f"rep{index}"
            wall, events = run_once(tele)
            span_walls.append(wall)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    base = statistics.median(base_walls)
    instrumented = statistics.median(span_walls)
    return {
        "baseline_wall_s": base,
        "instrumented_wall_s": instrumented,
        "overhead": (instrumented - base) / base,
        "events_per_run": events,
        "repeats": repeats,
        "baseline_walls": base_walls,
        "instrumented_walls": span_walls,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer repeats, looser threshold")
    args = parser.parse_args(argv)
    repeats = 2 if args.quick else args.repeats
    # Quick mode only smoke-checks for crashes/gross regressions: with
    # 2 repetitions a shared runner's noise can exceed the real budget.
    budget = 0.25 if args.quick else OVERHEAD_BUDGET

    result = bench(repeats)
    report = {
        "schema": SCHEMA_VERSION,
        "benchmark": "telemetry-overhead",
        "quick": args.quick,
        "budget": budget,
        "python": platform.python_version(),
        "machine": platform.machine(),
        **result,
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if result["overhead"] > budget:
        print(f"FAIL: telemetry overhead {result['overhead']:.1%} "
              f"exceeds the {budget:.0%} budget", file=sys.stderr)
        return 1
    print(f"OK: telemetry overhead {result['overhead']:.1%} "
          f"(budget {budget:.0%})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
