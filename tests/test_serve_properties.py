"""Hypothesis property tests: serving-tier invariants under random use.

The L1 LRU, the coalescing map, and the tiered store are small pieces of
state machinery whose failure modes are ordering bugs, so they are
exercised with random operation interleavings against simple reference
models. The four pinned invariants:

* the LRU never exceeds its capacity and evicts in exact
  least-recently-used order (checked against an ``OrderedDict`` model);
* between a key's first ``join`` and its ``finish``, every joiner shares
  one entry and *exactly one* caller is the leader — and each entry is
  resolved exactly once;
* in-flight work lives in the coalescing map, never in L1, so LRU
  eviction (even with capacity 1) can never drop a job that is still
  being computed;
* ``TieredStore.put`` is strict write-through: at every step, every key
  in L1 is also in L2 (containment).
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.serve import CoalescingMap, LruCache, TieredStore

KEYS = st.sampled_from([f"k{i}" for i in range(8)])

LRU_OPS = st.one_of(
    st.tuples(st.just("put"), KEYS, st.integers(0, 100)),
    st.tuples(st.just("get"), KEYS, st.just(0)),
    st.tuples(st.just("invalidate"), KEYS, st.just(0)),
)


class TestLruCache:
    @given(st.integers(1, 5), st.lists(LRU_OPS, max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_matches_ordered_dict_model(self, capacity, operations):
        cache = LruCache(capacity)
        model: "OrderedDict[str, int]" = OrderedDict()
        for kind, key, value in operations:
            if kind == "put":
                evicted = cache.put(key, value)
                if key in model:
                    model.move_to_end(key)
                model[key] = value
                expected_evicted = []
                while len(model) > capacity:
                    old, _ = model.popitem(last=False)
                    expected_evicted.append(old)
                assert evicted == expected_evicted
            elif kind == "get":
                got = cache.get(key)
                assert got == model.get(key)
                if key in model:
                    model.move_to_end(key)
            else:
                assert cache.invalidate(key) == (key in model)
                model.pop(key, None)
            # invariants at every step
            assert len(cache) <= capacity
            assert cache.keys() == list(model)

    @given(st.lists(LRU_OPS, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_zero_capacity_stays_empty(self, operations):
        cache = LruCache(0)
        for kind, key, value in operations:
            if kind == "put":
                assert cache.put(key, value) == []
            elif kind == "get":
                assert cache.get(key) is None
            else:
                cache.invalidate(key)
            assert len(cache) == 0


COALESCE_OPS = st.lists(
    st.tuples(st.sampled_from(["join", "finish"]), KEYS), max_size=60)


class _Entry:
    """Future stand-in that counts resolutions."""

    def __init__(self) -> None:
        self.resolved = 0

    def resolve(self) -> None:
        self.resolved += 1


class TestCoalescingMap:
    @given(COALESCE_OPS)
    @settings(max_examples=80, deadline=None)
    def test_leader_exactly_once_and_resolve_exactly_once(self, ops):
        coalesce = CoalescingMap()
        inflight: dict = {}  # model: key -> entry
        all_entries = []
        for kind, key in ops:
            if kind == "join":
                def factory():
                    entry = _Entry()
                    all_entries.append(entry)
                    return entry

                entry, leader = coalesce.join(key, factory)
                if key in inflight:
                    # follower: shares the leader's entry, never leads
                    assert not leader
                    assert entry is inflight[key]
                else:
                    # first join of the window: exactly one leader
                    assert leader
                    inflight[key] = entry
            else:
                entry = coalesce.finish(key)
                model_entry = inflight.pop(key, None)
                assert entry is model_entry
                if entry is not None:
                    # the leader resolves on finish — exactly once,
                    # because finish pops the key
                    entry.resolve()
            assert len(coalesce) == len(inflight)
        for entry in all_entries:
            assert entry.resolved <= 1
        # joins + creations account for every join call
        joins = sum(1 for kind, _ in ops if kind == "join")
        assert coalesce.created + coalesce.joined == joins

    @given(COALESCE_OPS)
    @settings(max_examples=60, deadline=None)
    def test_eviction_never_drops_inflight_work(self, ops):
        """The server discipline: in-flight entries live in the
        coalescing map, results in the (tiny) L1. Even a capacity-1 L1
        thrashing constantly can never make an in-flight key
        unreachable."""
        coalesce = CoalescingMap()
        l1 = LruCache(1)
        for kind, key in ops:
            if kind == "join":
                coalesce.join(key, _Entry)
            else:
                entry = coalesce.finish(key)
                if entry is not None:
                    l1.put(key, entry)  # result admitted after finish
            for inflight_key in coalesce.keys():
                # reachable regardless of what L1 evicted
                assert coalesce.get(inflight_key) is not None


class _DictBackend:
    """In-memory L2 stand-in (no disk, no checksums)."""

    def __init__(self) -> None:
        self.entries: dict = {}

    def load(self, key):
        return self.entries.get(key)

    def store(self, key, payload):
        self.entries[key] = payload

    def contains(self, key):
        return key in self.entries

    def invalidate(self, key):
        return self.entries.pop(key, None) is not None


STORE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS),
        st.tuples(st.just("get"), KEYS),
        st.tuples(st.just("invalidate"), KEYS),
    ),
    max_size=60,
)


class TestTieredStoreContainment:
    @given(st.integers(1, 4), STORE_OPS)
    @settings(max_examples=80, deadline=None)
    def test_l1_subset_of_l2_under_put_discipline(self, capacity, ops):
        l2 = _DictBackend()
        store = TieredStore(l1_capacity=capacity, l2=l2)
        for index, (kind, key) in enumerate(ops):
            if kind == "put":
                store.put(key, {"v": index})
            elif kind == "get":
                payload, tier = store.get(key)
                if tier == "l1":
                    # an L1 hit implies the L2 entry exists and agrees
                    assert l2.entries[key] == payload
            else:
                store.invalidate(key)
            # containment at every step
            for resident in store.l1.keys():
                assert resident in l2.entries
            assert len(store.l1) <= capacity
