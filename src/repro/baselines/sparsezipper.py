"""SparseZipper CPU matrix-extension SpGEMM model (PAPERS.md).

SparseZipper extends a CPU ISA with *stream zip* instructions: two
sorted (coordinate, value) streams merge in hardware, several elements
per cycle, turning Gustavson's inner merge loop — the part scalar cores
crawl through branch by branch — into a pipelined unit. The paper
reports ~2.4x over an optimized scalar Gustavson kernel on the same
core, with memory behavior unchanged (it is still a cache-based CPU).

Two artifacts here:

* :func:`zipper_spgemm` — the execution *semantics*: a left-fold of
  two-way sorted merges, scaled B row ``k`` zipped into the row
  accumulator in A-column order. Duplicate coordinates combine as
  ``add(accumulated, incoming)``, the same association order as the
  dict oracle, so results are bit-identical to
  :func:`~repro.baselines.spgemm_ref.spgemm_semiring` under *every*
  semiring — the differential suite leans on this.
* :func:`run_sparsezipper_model` — the timing/traffic estimate behind
  the ``sparsezipper`` registry model: MKL's memory model (A and C
  streamed once, B through the LLC reuse model) with the compute
  roofline replaced by the zipper's element throughput.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.reuse import b_read_traffic, gustavson_row_stream
from repro.baselines.common import BaselineResult
from repro.baselines.spgemm_ref import output_nnz_upper_bound
from repro.config import CpuConfig, ELEMENT_BYTES, OFFSET_BYTES
from repro.matrices.csr import CsrMatrix
from repro.matrices.fiber import Fiber
from repro.matrices.stats import flops as count_flops
from repro.semiring import ARITHMETIC

#: Elements the zip unit retires per cycle per core (stream width).
ZIPPER_LANES = 4

#: Average passes an element makes through the zipper across the fold —
#: a product enters once and the surviving stream re-enters on later
#: zips; 2.0 is the calibrated Gustavson-fold average.
ZIP_PASS_FACTOR = 2.0

#: Cycles to (re)configure the stream engines per A nonzero.
STREAM_SETUP_CYCLES = 12


def _zip_merge(coords_acc, values_acc, coords_in, values_in, add):
    """Two-pointer sorted merge; duplicates combine as add(acc, in)."""
    out_coords: List[int] = []
    out_values: List[float] = []
    i = j = 0
    len_a, len_b = len(coords_acc), len(coords_in)
    while i < len_a and j < len_b:
        ca, cb = coords_acc[i], coords_in[j]
        if ca < cb:
            out_coords.append(ca)
            out_values.append(values_acc[i])
            i += 1
        elif cb < ca:
            out_coords.append(cb)
            out_values.append(values_in[j])
            j += 1
        else:
            out_coords.append(ca)
            out_values.append(add(values_acc[i], values_in[j]))
            i += 1
            j += 1
    out_coords.extend(coords_acc[i:])
    out_values.extend(values_acc[i:])
    out_coords.extend(coords_in[j:])
    out_values.extend(values_in[j:])
    return out_coords, out_values


def zipper_spgemm(a: CsrMatrix, b: CsrMatrix,
                  semiring=ARITHMETIC) -> CsrMatrix:
    """Stream-zip Gustavson SpGEMM (SparseZipper execution semantics)."""
    if a.num_cols != b.num_rows:
        raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")
    add, mul = semiring.add, semiring.mul
    rows: List[Fiber] = []
    for row in range(a.num_rows):
        coords: List[int] = []
        values: List[float] = []
        start, end = a.offsets[row], a.offsets[row + 1]
        for idx in range(start, end):
            k = int(a.coords[idx])
            scale = a.values[idx]
            b_start, b_end = b.offsets[k], b.offsets[k + 1]
            in_coords = [int(c) for c in b.coords[b_start:b_end]]
            in_values = [mul(scale, v) for v in b.values[b_start:b_end]]
            coords, values = _zip_merge(
                coords, values, in_coords, in_values, add)
        rows.append(Fiber(
            np.asarray(coords, dtype=np.int64),
            np.asarray(values, dtype=np.float64), check=False))
    return CsrMatrix.from_rows(rows, b.num_cols)


def run_sparsezipper_model(
    a: CsrMatrix,
    b: CsrMatrix,
    config: Optional[CpuConfig] = None,
    c_nnz: Optional[int] = None,
) -> BaselineResult:
    """Estimate SparseZipper's runtime and traffic for C = A x B."""
    config = config or CpuConfig()
    flops = count_flops(a, b)
    if c_nnz is None:
        c_nnz = output_nnz_upper_bound(a, b)

    a_bytes = a.nnz * ELEMENT_BYTES + a.num_rows * OFFSET_BYTES
    c_bytes = c_nnz * ELEMENT_BYTES + a.num_rows * OFFSET_BYTES
    b_bytes = b_read_traffic(
        gustavson_row_stream(a), b, config.llc_bytes)
    traffic = {
        "A": a_bytes,
        "B": b_bytes,
        "C": c_bytes,
        "partial_read": 0,
        "partial_write": 0,
    }

    zip_elements = flops * ZIP_PASS_FACTOR
    compute_cycles = (zip_elements / ZIPPER_LANES
                      + a.nnz * STREAM_SETUP_CYCLES) / config.num_cores
    compute_seconds = compute_cycles / config.frequency_hz
    memory_seconds = (
        sum(traffic.values()) / config.memory_bandwidth_bytes_per_s
    )
    seconds = max(compute_seconds, memory_seconds)
    return BaselineResult(
        name="SparseZipper",
        cycles=seconds * config.frequency_hz,
        frequency_hz=config.frequency_hz,
        traffic_bytes=traffic,
        flops=flops,
        c_nnz=c_nnz,
    )
