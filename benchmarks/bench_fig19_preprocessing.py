"""Fig. 19: preprocessing ablations on Maragal_7 and sme3Db.

Paper: affinity reordering gives a large (6x-class) traffic cut on
sme3Db; tiling *all* rows backfires badly (13x extra on sme3Db);
selective coordinate-space tiling keeps reordering's gains and helps
Maragal_7 further.
"""


def test_fig19(run_figure):
    result = run_figure("fig19")
    rows = {(r["matrix"], r["variant"]): r["total"]
            for r in result["rows"]}

    for matrix in ("Maragal_7", "sme3Db"):
        # Reordering helps.
        assert rows[(matrix, "+R")] < rows[(matrix, "G")]
        # Selective tiling never loses to tiling everything.
        assert rows[(matrix, "+R+ST")] <= rows[(matrix, "+R+T")] * 1.02

    # The tile-everything pathology on sme3Db (paper: 13x extra traffic).
    assert rows[("sme3Db", "+R+T")] > 1.5 * rows[("sme3Db", "+R")]
    # Selective tiling does not hurt sme3Db (its rows stay untiled).
    assert rows[("sme3Db", "+R+ST")] <= rows[("sme3Db", "+R")] * 1.02
    # Tiling provides additional benefit on Maragal_7's dense rows.
    assert rows[("Maragal_7", "+R+ST")] < rows[("Maragal_7", "+R")]
