"""One function per paper table/figure, producing its data and a text table.

Every figure is built in two layers:

* a **row/figure builder** (``speedup_figure``, ``traffic_figure``, ...)
  parameterized by the matrix set and an
  :class:`~repro.experiments.runner.ExperimentRunner` — the versioned
  figure pipeline (:mod:`repro.figures`) calls these directly with its
  own runner and scope, and
* the zero-argument ``figN()``/``tableN()`` entry points the experiment
  registry exposes, which bind the paper's matrix sets and the shared
  module runner.

Each builder returns a dict with at least:

* ``rows`` — structured per-matrix (or per-config) records,
* ``table`` — a rendered monospace table matching the paper's artifact,
* ``chart_data`` — the structured chart (see
  :mod:`repro.analysis.charts`) both the ASCII ``chart`` and the
  pipeline's Vega-Lite spec + CSV are derived from, so the terminal
  rendering and the committed artifact can never disagree.

Cross-model figures carry *every* comparable design — the paper's
accelerators (OuterSPACE, SpArch, G, GP) plus the CPU matrix-extension
baselines (SparseZipper, RVV) — so cross-model comparisons are
reviewable in one artifact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.area import (
    gamma_area,
    pe_area,
    pe_component_fractions,
    merger_area,
    sparch_merger_area_ratio,
)
from repro.analysis.charts import (
    bar_data,
    multi_bar_data,
    render_chart,
    scatter_data,
    stacked_bar_data,
)
from repro.analysis.metrics import amean, gmean
from repro.analysis.report import render_table
from repro.analysis.roofline import (
    ridge_intensity,
    roof_at,
    roofline_point,
    roofline_series,
)
from repro.config import GammaConfig
from repro.experiments.runner import (
    MODEL_SCALE,
    RUNNER,
    ExperimentRunner,
    scaled_gamma_config,
)
from repro.matrices import suite
from repro.matrices.stats import MatrixStats

_TRAFFIC_CATEGORIES = ("A", "B", "C", "partial_read", "partial_write")

_Fetch = Callable[[ExperimentRunner, str], object]

#: Design label -> record fetcher for the cross-model comparison
#: figures. Order is presentation order (paper designs first, CPU
#: matrix extensions last); every entry must produce a RunRecord whose
#: runtime is comparable to the MKL reference.
CROSS_MODEL_DESIGNS: Tuple[Tuple[str, _Fetch], ...] = (
    ("OuterSPACE", lambda r, n: r.baseline("outerspace", n)),
    ("SpArch", lambda r, n: r.baseline("sparch", n)),
    ("SparseZipper", lambda r, n: r.baseline("sparsezipper", n)),
    ("RVV", lambda r, n: r.baseline("rvv", n)),
    ("G", lambda r, n: r.gamma(n, "none")),
    ("GP", lambda r, n: r.gamma(n, "full")),
)

#: Designs in the traffic-breakdown (stacked) figures.
BREAKDOWN_DESIGNS: Tuple[Tuple[str, _Fetch], ...] = (
    ("IP", lambda r, n: r.baseline("ip", n)),
    ("OuterSPACE", lambda r, n: r.baseline("outerspace", n)),
    ("SpArch", lambda r, n: r.baseline("sparch", n)),
    ("G", lambda r, n: r.gamma(n, "none")),
    ("GP", lambda r, n: r.gamma(n, "full")),
)

#: Preprocessing ablation variants (paper Fig. 19 labels).
PREPROCESS_ABLATION: Tuple[Tuple[str, str], ...] = (
    ("G", "none"),
    ("+R", "reorder"),
    ("+R+T", "reorder_tile_all"),
    ("+R+ST", "full"),
)


def _resolve(runner: Optional[ExperimentRunner]) -> ExperimentRunner:
    return runner if runner is not None else RUNNER


def _breakdown(name: str, traffic: Dict[str, int],
               runner: ExperimentRunner) -> Dict[str, float]:
    compulsory = runner.compulsory_total(name)
    return {k: traffic.get(k, 0) / compulsory
            for k in _TRAFFIC_CATEGORIES}


def _design_labels(designs) -> List[str]:
    return [label for label, _ in designs]


# ----------------------------------------------------------------------
# Parameterized figure builders (the pipeline's entry points)
# ----------------------------------------------------------------------
def speedup_figure(names: Sequence[str], figure: str,
                   runner: Optional[ExperimentRunner] = None,
                   designs=CROSS_MODEL_DESIGNS) -> Dict:
    """Per-matrix speedup over MKL for every comparable design."""
    runner = _resolve(runner)
    rows = []
    for name in names:
        row: Dict[str, object] = {"matrix": name}
        for label, fetch in designs:
            record = fetch(runner, name)
            row[label] = runner.speedup_over_mkl(
                name, record.runtime_seconds)
        rows.append(row)
    labels = _design_labels(designs)
    rows.append({
        "matrix": "gmean",
        **{label: gmean([r[label] for r in rows]) for label in labels},
    })
    table = render_table(
        ["matrix"] + labels,
        [[r["matrix"]] + [r[label] for label in labels] for r in rows],
        precision=1,
        title=f"{figure}: speedup over MKL (higher is better)",
    )
    chart_data = multi_bar_data(
        [r["matrix"] for r in rows],
        {label: [r[label] for r in rows] for label in labels},
        title=f"{figure}: speedup over MKL",
        label_field="matrix", series_field="design",
        value_field="speedup",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def traffic_figure(names: Sequence[str], figure: str,
                   runner: Optional[ExperimentRunner] = None,
                   designs=CROSS_MODEL_DESIGNS) -> Dict:
    """Per-matrix DRAM traffic normalized to compulsory, every design."""
    runner = _resolve(runner)
    rows = []
    for name in names:
        row: Dict[str, object] = {"matrix": name}
        for label, fetch in designs:
            row[label] = fetch(runner, name).normalized_traffic
        rows.append(row)
    labels = _design_labels(designs)
    rows.append({
        "matrix": "gmean",
        **{label: gmean([r[label] for r in rows]) for label in labels},
    })
    table = render_table(
        ["matrix"] + labels,
        [[r["matrix"]] + [r[label] for label in labels] for r in rows],
        title=f"{figure}: off-chip traffic normalized to compulsory "
              "(lower is better)",
    )
    chart_data = multi_bar_data(
        [r["matrix"] for r in rows],
        {label: [r[label] for r in rows] for label in labels},
        title=f"{figure}: normalized traffic (x compulsory, lower is "
              "better)",
        label_field="matrix", series_field="design",
        value_field="normalized_traffic",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def gmean_speedup_figure(names: Sequence[str], figure: str,
                         runner: Optional[ExperimentRunner] = None,
                         designs=CROSS_MODEL_DESIGNS) -> Dict:
    """Suite-level gmean speedup over MKL per design (paper Fig. 10)."""
    runner = _resolve(runner)
    rows = []
    for label, fetch in designs:
        speedups = [
            runner.speedup_over_mkl(
                name, fetch(runner, name).runtime_seconds)
            for name in names
        ]
        rows.append({"design": label, "gmean_speedup": gmean(speedups)})
    table = render_table(
        ["design", "gmean speedup vs MKL"],
        [[r["design"], r["gmean_speedup"]] for r in rows],
        precision=1,
        title=f"{figure}: gmean speedup over MKL",
    )
    chart_data = bar_data(
        [r["design"] for r in rows],
        [r["gmean_speedup"] for r in rows],
        title=f"{figure}: gmean speedup over MKL",
        label_field="design", value_field="gmean_speedup",
        value_format="{:.1f}x",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def breakdown_figure(names: Sequence[str], figure: str,
                     runner: Optional[ExperimentRunner] = None,
                     designs=BREAKDOWN_DESIGNS) -> Dict:
    """Stacked traffic breakdown (A/B/C/partial) per matrix x design."""
    runner = _resolve(runner)
    rows = []
    for name in names:
        for label, fetch in designs:
            breakdown = _breakdown(
                name, fetch(runner, name).traffic_bytes, runner)
            rows.append({
                "matrix": name, "design": label, **breakdown,
                "total": sum(breakdown.values()),
            })
    table = render_table(
        ["matrix", "design", "A", "B", "C", "partial", "total"],
        [[r["matrix"], r["design"], r["A"], r["B"], r["C"],
          r["partial_read"] + r["partial_write"], r["total"]]
         for r in rows],
        title=f"{figure}: normalized off-chip traffic (lower is better)",
    )
    chart_data = stacked_bar_data(
        [f"{r['matrix']}/{r['design']}" for r in rows],
        [{"A": r["A"], "B": r["B"], "C": r["C"],
          "partial": r["partial_read"] + r["partial_write"]}
         for r in rows],
        ["A", "B", "C", "partial"],
        title=f"{figure}: traffic breakdown (x compulsory)",
        label_field="matrix_design", category_field="stream",
        value_field="normalized_bytes",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def bandwidth_figure(names: Sequence[str], figure: str,
                     runner: Optional[ExperimentRunner] = None) -> Dict:
    """G/GP memory-bandwidth utilization per matrix."""
    runner = _resolve(runner)
    rows = []
    for name in names:
        rows.append({
            "matrix": name,
            "G": runner.gamma(name, "none").bandwidth_utilization,
            "GP": runner.gamma(name, "full").bandwidth_utilization,
        })
    rows.append({
        "matrix": "mean",
        "G": amean([r["G"] for r in rows]),
        "GP": amean([r["GP"] for r in rows]),
    })
    table = render_table(
        ["matrix", "G", "GP"],
        [[r["matrix"], r["G"], r["GP"]] for r in rows],
        title=f"{figure}: memory bandwidth utilization",
    )
    chart_data = multi_bar_data(
        [r["matrix"] for r in rows],
        {"G": [r["G"] for r in rows], "GP": [r["GP"] for r in rows]},
        title=f"{figure}: bandwidth utilization (1.0 = saturated)",
        label_field="matrix", series_field="design",
        value_field="bandwidth_utilization",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def cache_util_figure(names: Sequence[str], figure: str,
                      runner: Optional[ExperimentRunner] = None) -> Dict:
    """FiberCache utilization split by fiber type, G and GP."""
    runner = _resolve(runner)
    rows = []
    for name in names:
        util_g = runner.gamma(name, "none").cache_utilization
        util_gp = runner.gamma(name, "full").cache_utilization
        rows.append({
            "matrix": name,
            "G_B": util_g["B"], "G_partial": util_g["partial"],
            "GP_B": util_gp["B"], "GP_partial": util_gp["partial"],
        })
    table = render_table(
        ["matrix", "G:B", "G:partial", "GP:B", "GP:partial"],
        [[r["matrix"], r["G_B"], r["G_partial"], r["GP_B"],
          r["GP_partial"]] for r in rows],
        title=f"{figure}: FiberCache utilization by fiber type",
    )
    chart_data = stacked_bar_data(
        [f"{r['matrix']}/{design}" for r in rows
         for design in ("G", "GP")],
        [{"B": r[f"{design}_B"], "partial": r[f"{design}_partial"]}
         for r in rows for design in ("G", "GP")],
        ["B", "partial"],
        title=f"{figure}: FiberCache utilization by fiber type",
        label_field="matrix_design", category_field="fiber_type",
        value_field="utilization", max_value=1.0,
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def preprocessing_figure(names: Sequence[str], figure: str,
                         runner: Optional[ExperimentRunner] = None,
                         variants=PREPROCESS_ABLATION) -> Dict:
    """Preprocessing ablation: traffic breakdown per variant."""
    runner = _resolve(runner)
    rows = []
    for name in names:
        for label, variant in variants:
            breakdown = _breakdown(
                name, runner.gamma(name, variant).traffic_bytes, runner)
            rows.append({
                "matrix": name, "variant": label, **breakdown,
                "total": sum(breakdown.values()),
            })
    table = render_table(
        ["matrix", "variant", "A", "B", "C", "partial", "total"],
        [[r["matrix"], r["variant"], r["A"], r["B"], r["C"],
          r["partial_read"] + r["partial_write"], r["total"]]
         for r in rows],
        title=f"{figure}: preprocessing ablations, normalized traffic",
    )
    chart_data = stacked_bar_data(
        [f"{r['matrix']}/{r['variant']}" for r in rows],
        [{"A": r["A"], "B": r["B"], "C": r["C"],
          "partial": r["partial_read"] + r["partial_write"]}
         for r in rows],
        ["A", "B", "C", "partial"],
        title=f"{figure}: traffic breakdown (x compulsory)",
        label_field="matrix_variant", category_field="stream",
        value_field="normalized_bytes",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def scheduling_figure(name: str, figure: str,
                      runner: Optional[ExperimentRunner] = None) -> Dict:
    """Multi-PE vs single-PE-per-row scheduling on one matrix."""
    runner = _resolve(runner)
    multi = runner.gamma(name, "none", multi_pe=True)
    single = runner.gamma(name, "none", multi_pe=False)
    rows = []
    for label, result in (("multi-PE", multi), ("single-PE", single)):
        breakdown = _breakdown(name, result.traffic_bytes, runner)
        rows.append({
            "scheduler": label, **breakdown,
            "total": sum(breakdown.values()),
            "cycles": result.cycles,
        })
    speedup = single.cycles / multi.cycles
    table = render_table(
        ["scheduler", "A", "B", "C", "partial", "total", "cycles"],
        [[r["scheduler"], r["A"], r["B"], r["C"],
          r["partial_read"] + r["partial_write"], r["total"],
          int(r["cycles"])] for r in rows],
        title=(f"{figure}: scheduling ablation on {name} "
               f"(multi-PE is {speedup:.2f}x faster)"),
    )
    chart_data = stacked_bar_data(
        [r["scheduler"] for r in rows],
        [{"A": r["A"], "B": r["B"], "C": r["C"],
          "partial": r["partial_read"] + r["partial_write"]}
         for r in rows],
        ["A", "B", "C", "partial"],
        title=f"{figure}: scheduling ablation on {name} "
              "(x compulsory)",
        label_field="scheduler", category_field="stream",
        value_field="normalized_bytes",
    )
    return {"rows": rows, "table": table, "speedup": speedup,
            "chart_data": chart_data, "chart": render_chart(chart_data)}


def roofline_figure(names: Sequence[str], figure: str,
                    runner: Optional[ExperimentRunner] = None) -> Dict:
    """Roofline placement of every matrix, G and GP variants."""
    runner = _resolve(runner)
    points = []
    for name in names:
        for variant in ("none", "full"):
            result = runner.gamma(name, variant)
            points.append(roofline_point(f"{name}:{variant}", result))
    series = roofline_series(points)
    on_roof = sum(1 for p in points if p.efficiency > 0.8)
    config = scaled_gamma_config()
    table = render_table(
        ["matrix", "intensity", "GFLOP/s", "roof", "efficiency"],
        [[s["name"], s["intensity"], s["gflops"], s["roof"],
          s["efficiency"]] for s in series],
        precision=3,
        title=(f"{figure}: roofline (ridge at "
               f"{ridge_intensity(config):.2f} FLOP/byte; "
               f"{on_roof}/{len(points)} points within 80% of the "
               "roof)"),
    )
    intensities = sorted(p.intensity for p in points)
    roof_curve = [(x, roof_at(x, config)) for x in intensities]
    chart_data = scatter_data(
        [(p.intensity, max(p.gflops, 1e-3)) for p in points],
        names=[p.name for p in points],
        curve=roof_curve,
        log_x=True, log_y=True,
        title=f"{figure}: roofline — * matrices, - roof",
        x_field="intensity", y_field="gflops",
        point_series="matrix", curve_series="roof",
    )
    return {"rows": series, "table": table, "points": points,
            "chart_data": chart_data, "chart": render_chart(chart_data)}


def _sweep_figure(names: Sequence[str], figure: str,
                  configs: Dict[str, GammaConfig],
                  runner: Optional[ExperimentRunner] = None,
                  config_field: str = "config") -> Dict:
    runner = _resolve(runner)
    rows = []
    for label, config in configs.items():
        speedups, traffic, bandwidth = [], [], []
        for name in names:
            result = runner.gamma(name, "full", config=config)
            speedups.append(
                runner.speedup_over_mkl(name, result.runtime_seconds))
            traffic.append(result.normalized_traffic)
            bandwidth.append(result.bandwidth_utilization)
        rows.append({
            config_field: label,
            "gmean_speedup": gmean(speedups),
            "mean_traffic": amean(traffic),
            "mean_bandwidth": amean(bandwidth),
        })
    table = render_table(
        [config_field, "gmean speedup", "mean traffic", "mean bw util"],
        [[r[config_field], r["gmean_speedup"], r["mean_traffic"],
          r["mean_bandwidth"]] for r in rows],
        title=figure,
    )
    chart_data = bar_data(
        [r[config_field] for r in rows],
        [r["gmean_speedup"] for r in rows],
        title=f"{figure} — gmean speedup vs MKL",
        label_field=config_field, value_field="gmean_speedup",
        value_format="{:.1f}x",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def pe_sweep_figure(names: Sequence[str], figure: str,
                    runner: Optional[ExperimentRunner] = None) -> Dict:
    configs = {
        str(pes): scaled_gamma_config(num_pes=pes)
        for pes in (8, 16, 32, 64, 128)
    }
    return _sweep_figure(names, f"{figure}: PE-count sweep", configs,
                         runner, config_field="pes")


def cache_sweep_figure(names: Sequence[str], figure: str,
                       runner: Optional[ExperimentRunner] = None) -> Dict:
    # Paper sizes 0.75 / 1.5 / 3 / 6 / 12 MB, divided by the model scale.
    configs = {}
    for paper_mb in (0.75, 1.5, 3.0, 6.0, 12.0):
        scaled = int(paper_mb * 1024 * 1024 / MODEL_SCALE)
        configs[f"{paper_mb}MB"] = scaled_gamma_config(
            fibercache_bytes=scaled)
    return _sweep_figure(names, f"{figure}: FiberCache-size sweep",
                         configs, runner, config_field="cache_size")


def spmv_figure(names: Sequence[str], figure: str,
                runner: Optional[ExperimentRunner] = None) -> Dict:
    """GUST-style SpMV on the Gamma core: spMspV vs dense-vector SpMV.

    Extension beyond the paper: the ``gamma-spmv`` model collapses the
    B operand to a vector, so the comparison here is operand shape
    (sparse vs dense vector), not speedup over MKL — SpMV is a
    different operation from the SpGEMM the other figures measure.
    """
    runner = _resolve(runner)
    rows = []
    for name in names:
        for operand in ("sparse-vector", "dense-vector"):
            record = runner.spmv(name, operand=operand)
            rows.append({
                "matrix": name,
                "operand": operand,
                "cycles": record.cycles,
                "total_traffic_bytes": record.total_traffic,
                "gflops": record.gflops,
            })
    table = render_table(
        ["matrix", "operand", "cycles", "traffic bytes", "GFLOP/s"],
        [[r["matrix"], r["operand"], int(r["cycles"]),
          int(r["total_traffic_bytes"]), r["gflops"]] for r in rows],
        title=f"{figure}: Gamma SpMV by vector operand shape",
    )
    labels = [r["matrix"] for r in rows if r["operand"]
              == "sparse-vector"]
    chart_data = multi_bar_data(
        labels,
        {
            operand: [r["cycles"] for r in rows
                      if r["operand"] == operand]
            for operand in ("sparse-vector", "dense-vector")
        },
        title=f"{figure}: Gamma SpMV cycles by operand shape",
        label_field="matrix", series_field="operand",
        value_field="cycles",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def energy_figure(names: Sequence[str], figure: str,
                  runner: Optional[ExperimentRunner] = None) -> Dict:
    """Energy comparison across designs (parametric model)."""
    from repro.analysis.energy import estimate_energy

    runner = _resolve(runner)
    designs = {
        "OuterSPACE": lambda n: runner.baseline("outerspace", n),
        "SpArch": lambda n: runner.baseline("sparch", n),
        "Gamma": lambda n: runner.gamma(n, "none"),
        "Gamma+pre": lambda n: runner.gamma(n, "full"),
    }
    rows = []
    for label, fetch in designs.items():
        energies = []
        dram_shares = []
        for name in names:
            result = fetch(name)
            breakdown = estimate_energy(result)
            energies.append(breakdown.total_uj)
            dram_shares.append(breakdown.fractions()["dram"])
        rows.append({
            "design": label,
            "gmean_energy_uj": gmean(energies),
            "mean_dram_share": amean(dram_shares),
        })
    baseline = rows[0]["gmean_energy_uj"]
    for row in rows:
        row["relative"] = row["gmean_energy_uj"] / baseline
    table = render_table(
        ["design", "gmean energy (uJ)", "vs OuterSPACE", "DRAM share"],
        [[r["design"], r["gmean_energy_uj"], r["relative"],
          r["mean_dram_share"]] for r in rows],
        title=f"{figure}: energy across designs (parametric 45 nm-class "
              "model)",
    )
    chart_data = bar_data(
        [r["design"] for r in rows],
        [r["gmean_energy_uj"] for r in rows],
        title=f"{figure}: gmean energy per spMspM (uJ, lower is better)",
        label_field="design", value_field="gmean_energy_uj",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def suite_figure(specs, title: str,
                 runner: Optional[ExperimentRunner] = None) -> Dict:
    """Matrix-suite characteristics table (paper Tables 3/4)."""
    rows = []
    for spec in specs:
        matrix = suite.load(spec.name)
        stats = MatrixStats.of(matrix)
        rows.append({
            "matrix": spec.name,
            "paper_rows": spec.paper_rows,
            "paper_nnz_per_row": round(spec.paper_npr, 2),
            "rows": stats.rows,
            "nnz_per_row": round(stats.nnz_per_row_mean, 2),
            "nnz": stats.nnz,
        })
    table = render_table(
        ["matrix", "paper rows", "paper nnz/row", "rows", "nnz/row",
         "nnz"],
        [[r["matrix"], r["paper_rows"], r["paper_nnz_per_row"],
          r["rows"], r["nnz_per_row"], r["nnz"]] for r in rows],
        title=title,
    )
    chart_data = bar_data(
        [r["matrix"] for r in rows],
        [r["nnz"] for r in rows],
        title=f"{title} — nonzeros per matrix",
        label_field="matrix", value_field="nnz",
        value_format="{:.0f}",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def area_figure(figure: str = "Table 2") -> Dict:
    """Area breakdown from the analytic model vs published numbers."""
    breakdown = gamma_area()
    published = {
        "PEs": 4.8, "Scheduler": 0.11, "FiberCache": 22.6,
        "Crossbars": 3.1, "Total": 30.6,
    }
    model = breakdown.as_dict()
    rows = [
        {"component": component, "model_mm2": model[component],
         "paper_mm2": published[component]}
        for component in published
    ]
    fractions = pe_component_fractions()
    pe_rows = [
        {"component": "Merger", "mm2": merger_area(64),
         "fraction": fractions["Merger"]},
        {"component": "FP Mul", "mm2": 0.082,
         "fraction": fractions["FP Mul"]},
        {"component": "FP Add", "mm2": 0.015,
         "fraction": fractions["FP Add"]},
        {"component": "Others", "mm2": 0.008,
         "fraction": fractions["Others"]},
        {"component": "PE total", "mm2": pe_area(), "fraction": 1.0},
    ]
    table = (
        render_table(
            ["component", "model mm^2", "paper mm^2"],
            [[r["component"], r["model_mm2"], r["paper_mm2"]]
             for r in rows],
            title=f"{figure}: Gamma area at 45 nm")
        + "\n\n"
        + render_table(
            ["PE component", "mm^2", "fraction"],
            [[r["component"], r["mm2"], r["fraction"]]
             for r in pe_rows],
            precision=3)
        + f"\n\nSpArch merger / FP multiplier area ratio: "
          f"{sparch_merger_area_ratio():.0f}x (paper: ~38x)"
    )
    chart_data = multi_bar_data(
        [r["component"] for r in rows],
        {
            "model": [r["model_mm2"] for r in rows],
            "paper": [r["paper_mm2"] for r in rows],
        },
        title=f"{figure}: Gamma area at 45 nm (mm^2)",
        label_field="component", series_field="source",
        value_field="area_mm2",
    )
    return {"rows": rows, "pe_rows": pe_rows, "table": table,
            "chart_data": chart_data, "chart": render_chart(chart_data)}


def config_figure(figure: str = "Table 1") -> Dict:
    """The evaluated configuration (and its scaled twin)."""
    paper = GammaConfig()
    scaled = scaled_gamma_config()
    rows = [
        {"parameter": "PEs", "paper": paper.num_pes,
         "scaled": scaled.num_pes},
        {"parameter": "PE radix", "paper": paper.radix,
         "scaled": scaled.radix},
        {"parameter": "FiberCache (KB)",
         "paper": paper.fibercache_bytes // 1024,
         "scaled": scaled.fibercache_bytes // 1024},
        {"parameter": "FiberCache ways", "paper": paper.fibercache_ways,
         "scaled": scaled.fibercache_ways},
        {"parameter": "Banks", "paper": paper.fibercache_banks,
         "scaled": scaled.fibercache_banks},
        {"parameter": "Frequency (GHz)",
         "paper": paper.frequency_hz / 1e9,
         "scaled": scaled.frequency_hz / 1e9},
        {"parameter": "Memory BW (GB/s)",
         "paper": paper.memory_bandwidth_bytes_per_s / 1e9,
         "scaled": scaled.memory_bandwidth_bytes_per_s / 1e9},
    ]
    table = render_table(
        ["parameter", "paper", "scaled model"],
        [[r["parameter"], r["paper"], r["scaled"]] for r in rows],
        title=f"{figure}: configuration (model scale 1/{MODEL_SCALE})",
    )
    return {"rows": rows, "table": table}


def dataflows_figure(names: Sequence[str], figure: str) -> Dict:
    """Per-dataflow work counts on a sparse vs denser input (Sec. 2.2)."""
    from repro.baselines.dataflows import compare_dataflows

    rows = []
    for name in names:
        a, b = suite.operands(name)
        for dataflow, counts in compare_dataflows(a, b).items():
            rows.append({
                "matrix": name,
                "dataflow": dataflow,
                "effectual": counts.effectual_multiplies,
                "ineffectual": counts.ineffectual_comparisons,
                "merge": counts.merge_elements,
                "intermediate": counts.intermediate_elements,
            })
    table = render_table(
        ["matrix", "dataflow", "effectual", "ineffectual", "merge",
         "peak intermediate"],
        [[r["matrix"], r["dataflow"], r["effectual"], r["ineffectual"],
          r["merge"], r["intermediate"]] for r in rows],
        precision=0,
        title=f"{figure}: work counts of the three spMspM dataflows",
    )
    chart_data = multi_bar_data(
        [f"{r['matrix']}/{r['dataflow']}" for r in rows],
        {
            "effectual": [r["effectual"] for r in rows],
            "ineffectual": [r["ineffectual"] for r in rows],
        },
        title=f"{figure}: effectual vs ineffectual work",
        label_field="matrix_dataflow", series_field="work",
        value_field="count",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


def matraptor_figure(names: Sequence[str], figure: str,
                     runner: Optional[ExperimentRunner] = None) -> Dict:
    """MatRaptor vs Gamma: Gustavson without B reuse (Sec. 7)."""
    from repro.baselines.matraptor import run_matraptor_model

    runner = _resolve(runner)
    rows = []
    for name in names:
        a, b = suite.operands(name)
        c_nnz = runner.c_nnz(name)
        matraptor = run_matraptor_model(
            a, b, scaled_gamma_config(), c_nnz)
        outerspace = runner.baseline("outerspace", name)
        gamma = runner.gamma(name, "none")
        rows.append({
            "matrix": name,
            "matraptor_vs_os": (outerspace.runtime_seconds
                                / matraptor.runtime_seconds),
            "gamma_vs_os": (outerspace.runtime_seconds
                            / gamma.runtime_seconds),
            "matraptor_traffic": (matraptor.total_traffic
                                  / runner.compulsory_total(name)),
            "gamma_traffic": gamma.normalized_traffic,
        })
    keys = ("matraptor_vs_os", "gamma_vs_os", "matraptor_traffic",
            "gamma_traffic")
    rows.append({
        "matrix": "gmean",
        **{key: gmean([r[key] for r in rows]) for key in keys},
    })
    table = render_table(
        ["matrix", "MatRaptor vs OS", "Gamma vs OS",
         "MatRaptor traffic", "Gamma traffic"],
        [[r["matrix"], r["matraptor_vs_os"], r["gamma_vs_os"],
          r["matraptor_traffic"], r["gamma_traffic"]] for r in rows],
        title=f"{figure}: MatRaptor, a Gustavson design without B reuse",
    )
    chart_data = multi_bar_data(
        [r["matrix"] for r in rows],
        {
            "MatRaptor": [r["matraptor_vs_os"] for r in rows],
            "Gamma": [r["gamma_vs_os"] for r in rows],
        },
        title=f"{figure}: speedup over OuterSPACE",
        label_field="matrix", series_field="design",
        value_field="speedup_vs_outerspace",
    )
    return {"rows": rows, "table": table, "chart_data": chart_data,
            "chart": render_chart(chart_data)}


# ----------------------------------------------------------------------
# Registry entry points: the paper's figures on the paper's matrix sets
# ----------------------------------------------------------------------
def fig3() -> Dict:
    """Fig. 3: traffic of IP/OS/S/G/GP on gupta2 and web-Google."""
    return breakdown_figure(("gupta2", "web-Google"), "Fig. 3")


def fig10() -> Dict:
    """Fig. 10: gmean speedup over MKL on the common set."""
    return gmean_speedup_figure(suite.common_set_names(), "Fig. 10")


def fig11() -> Dict:
    return speedup_figure(suite.common_set_names(), "Fig. 11")


def fig12() -> Dict:
    return traffic_figure(suite.common_set_names(), "Fig. 12")


def fig13() -> Dict:
    return bandwidth_figure(suite.common_set_names(), "Fig. 13")


def fig14() -> Dict:
    return cache_util_figure(suite.common_set_names(), "Fig. 14")


def fig15() -> Dict:
    return speedup_figure(suite.extended_set_names(), "Fig. 15")


def fig16() -> Dict:
    return traffic_figure(suite.extended_set_names(), "Fig. 16")


def fig17() -> Dict:
    return bandwidth_figure(suite.extended_set_names(), "Fig. 17")


def fig18() -> Dict:
    return cache_util_figure(suite.extended_set_names(), "Fig. 18")


def fig19() -> Dict:
    """Fig. 19: preprocessing ablation on Maragal_7 and sme3Db."""
    return preprocessing_figure(("Maragal_7", "sme3Db"), "Fig. 19")


def fig20() -> Dict:
    """Fig. 20: multi-PE vs single-PE-per-row scheduling."""
    return scheduling_figure("email-Enron", "Fig. 20")


def fig21() -> Dict:
    """Fig. 21: roofline placement of every matrix, G and GP."""
    return roofline_figure(
        suite.common_set_names() + suite.extended_set_names(),
        "Fig. 21")


def fig22() -> Dict:
    return pe_sweep_figure(suite.common_set_names(),
                           "Fig. 22 (common set)")


def fig23() -> Dict:
    return pe_sweep_figure(suite.extended_set_names(),
                           "Fig. 23 (extended set)")


def fig24() -> Dict:
    return cache_sweep_figure(suite.common_set_names(),
                              "Fig. 24 (common set)")


def fig25() -> Dict:
    return cache_sweep_figure(suite.extended_set_names(),
                              "Fig. 25 (extended set)")


def table1() -> Dict:
    return config_figure("Table 1")


def table2() -> Dict:
    return area_figure("Table 2")


def table3() -> Dict:
    return suite_figure(
        suite.COMMON_SET,
        f"Table 3: common set (scaled stand-ins, 1/{MODEL_SCALE} rows)")


def table4() -> Dict:
    return suite_figure(
        suite.EXTENDED_SET,
        "Table 4: extended set (scaled stand-ins)")


def ext_matraptor() -> Dict:
    """Sec. 7 discussion, quantified: MatRaptor vs Gamma, common set."""
    return matraptor_figure(suite.common_set_names(),
                            "Extension (Sec. 7)")


def ext_dataflows() -> Dict:
    """Sec. 2.2 quantified: per-dataflow work counts."""
    return dataflows_figure(
        ("p2p-Gnutella31", "wiki-Vote", "poisson3Da"),
        "Extension (Sec. 2.2)")


def ext_energy() -> Dict:
    """Extension: energy comparison across designs (parametric model)."""
    return energy_figure(suite.common_set_names(), "Extension")
