"""The Gamma accelerator simulator: data-oriented, epoch-batched core.

Functionally this is the same machine as
:mod:`repro.core.simulator_ref` — Gustavson spMspM with scheduler-driven
task trees, FiberCache line touches, a bandwidth-limited memory channel,
and the paper's PE timing law — and it is lockstep-tested to produce
bit-identical outputs, cycle counts, and traffic breakdowns. What
changed is the execution engine: instead of one Python
``_execute_task`` call, heap transaction, and dict update per task, the
run advances in *epochs*.

An epoch is a maximal run of dispatches whose order the reference event
loop would fix independently of task timing. Two stretch shapes
qualify. With no task tree in flight, the scheduler only expands
*simple* work items (untiled rows fitting the merger radix, each a
single final leaf task) and :meth:`EpochScheduler.drain_stretch`
extracts the whole cursor-consuming run. With trees in flight, the
ready run of level-0 leaves — final and non-final alike — executes as a
*fenced* epoch: the fence is the earliest instant a completion drain
could make a waiting parent ready (:meth:`EpochScheduler.fence_plan`),
dispatching stops when the PE-availability horizon reaches it, and each
non-final dispatch arms its parent and lowers the fence in place so the
stop condition stays exact. Either way the core works on
struct-of-arrays state:

* input gathering, B line ranges, and the PE timing law are evaluated
  as numpy arrays over the whole batch (``epoch_cycles``);
* every task's cache touches go through one
  ``FiberCache.fetch_read_epoch`` call (fenced epochs keep per-task
  ``fetch_read_range`` calls, so stopping at the fence leaves no
  phantom cache state);
* output fibers for the whole batch come from one composite-key merge
  kernel (stable argsort + group reduction), bit-matched to
  ``linear_combine``'s dict and array paths;
* memory charges whose completion times feed nothing (C writes,
  partial writebacks) are deferred and flushed in issue order via
  ``MemoryInterface.request_epoch``.

Only the dependency-chain tail proper — interior merge tasks and root
emits, whose dispatch order genuinely depends on completion timing —
falls back to the scalar per-task path, which is inherited unchanged
from the reference run state. Non-final leaves dispatched in a fenced
epoch keep the reference's side effects exactly: the partial-output
budget rises per dispatch (with the reference's between-dispatch refill
expansions replayed at the same budget values), partial lines are
allocated and written in dispatch order, and completions enter the
drain heap carrying the real task so parents unblock identically.
Runs that collect a MetricsRegistry take the scalar path wholesale so
every per-dispatch metric sample stays bit-identical; traces are
supported in epoch mode (events are emitted from the batch timing
loop with the same fields).

See docs/architecture.md §13 for the layout and the epoch advancement
rule, and ``tests/test_simulator_lockstep.py`` for the differential
suite against the reference engine.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

import numpy as np

from repro.config import ELEMENT_BYTES, GammaConfig, LINE_BYTES, OFFSET_BYTES
from repro.core.pe import epoch_cycles
from repro.core.result import SimulationResult
from repro.core.scheduler import EpochScheduler, WorkProgram
from repro.core.simulator_ref import (_PARTIAL_BASE_LINE,  # noqa: F401
                                      ReferenceGammaSimulator,
                                      _ReferenceRunState)
from repro.matrices.csr import CsrMatrix
from repro.matrices.fiber import Fiber, _make_fiber

_INF = float("inf")


class _FastDetailedPE:
    """Serves ``combine_detailed`` from the fast functional model.

    The two PE models are observably identical: ``combine_detailed``
    reports ``cycles = max(1, len(merged))`` with every merged element
    consuming exactly one input element and ``multiplies = total_in`` —
    the same closed forms ``combine`` uses — and its accumulator fold
    (scaled left-to-right over the (coordinate, way)-sorted element
    stream) is the fold ``linear_combine`` evaluates array-wise. The
    batched core therefore runs detailed-PE configurations through the
    vectorized path; the reference engine keeps walking the per-cycle
    pipeline, and the lockstep suite holds the two bit-identical.
    """

    __slots__ = ("_pe",)

    def __init__(self, pe) -> None:
        self._pe = pe

    def __getattr__(self, name):
        return getattr(self._pe, name)

    def combine_detailed(self, fibers, scales, semiring=None):
        return self._pe.combine(fibers, scales, semiring=semiring)


class GammaSimulator:
    """Simulates one spMspM on a Gamma system (batched engine).

    Drop-in replacement for :class:`ReferenceGammaSimulator` — same
    constructor, same results bit-for-bit — advancing execution in
    epochs instead of per-task events. Custom semirings without a
    declared ``add_ufunc`` have no vectorizable accumulation, so those
    runs delegate to the reference engine wholesale.

    Args:
        config: Hardware parameters.
        multi_pe_scheduling: Scheduler mode (Fig. 20 ablation); the default
            True lets tasks of one row run on any PE.
        keep_output: Retain the computed C matrix in the result (disable to
            save memory on large sweeps; also skips output-value
            computation entirely, since structure alone determines
            traffic and timing).
        semiring: Scalar algebra for the PEs' multiply/accumulate units;
            None selects ordinary (+, x).
        trace: Optional :class:`~repro.core.trace.ExecutionTrace` that
            records one event per executed task.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; when set,
            the run executes on the scalar path so per-dispatch samples
            match the reference engine exactly.
    """

    def __init__(
        self,
        config: Optional[GammaConfig] = None,
        multi_pe_scheduling: bool = True,
        keep_output: bool = True,
        semiring=None,
        trace=None,
        metrics=None,
    ) -> None:
        self.config = config or GammaConfig()
        self.multi_pe_scheduling = multi_pe_scheduling
        self.keep_output = keep_output
        self.semiring = semiring
        self.trace = trace
        self.metrics = metrics

    def run(
        self,
        a: CsrMatrix,
        b: CsrMatrix,
        program: Optional[WorkProgram] = None,
    ) -> SimulationResult:
        """Execute C = A x B; see :meth:`ReferenceGammaSimulator.run`."""
        if (self.semiring is not None and not self.semiring.is_arithmetic
                and self.semiring.add_ufunc is None):
            return ReferenceGammaSimulator(
                self.config, self.multi_pe_scheduling, self.keep_output,
                self.semiring, self.trace, self.metrics,
            ).run(a, b, program=program)
        if a.num_cols != b.num_rows:
            raise ValueError(
                f"inner dimensions differ: {a.shape} x {b.shape}"
            )
        if program is None:
            program = WorkProgram.from_matrix(a)
        state = _BatchedRunState(self.config, a, b, program,
                                 self.multi_pe_scheduling, self.semiring,
                                 self.trace, self.metrics,
                                 keep_output=self.keep_output)
        state.execute()
        return state.result(self.keep_output)


class _BatchedRunState(_ReferenceRunState):
    """Run state with struct-of-arrays epoch execution.

    Inherits all scalar machinery — ``_execute_task``, PE picking,
    metrics publishing, result assembly — from the reference run state
    and overrides the main loop to carve timing-independent stretches
    into batched epochs.
    """

    def __init__(self, config, a, b, program, multi_pe, semiring=None,
                 trace=None, metrics=None, keep_output=True) -> None:
        super().__init__(config, a, b, program, multi_pe, semiring,
                         trace, metrics)
        # Same construction arguments as the base Scheduler: the epoch
        # variant is bit-neutral and only adds stretch extraction.
        self.scheduler = EpochScheduler(
            program,
            radix=config.radix,
            multi_pe=multi_pe,
            max_outstanding_partials=2 * config.num_pes,
            metrics=metrics,
        )
        self.keep_output = keep_output
        if config.detailed_pe_model:
            self.pe_model = _FastDetailedPE(self.pe_model)
        # Per-dispatch metric samples can't be replayed from batch
        # aggregates, so metric runs stay on the scalar path throughout.
        self.use_epochs = metrics is None
        #: Output-row lengths (c_nnz and C-write sizing) — maintained even
        #: when output values are skipped.
        self.output_len: Dict[int, int] = {}

    # -- main loop --------------------------------------------------------
    def execute(self) -> None:
        """Epoch-batched list scheduling.

        Identical decision sequence to the reference event loop; whenever
        the loop reaches a dispatch point whose upcoming dispatch order
        is provably timing-independent (nothing waiting, final leaf at
        the head), the whole stretch executes as one epoch.
        """
        target_pending = 2 * self.config.num_pes
        completions: List = []
        sequence = 0
        scheduler = self.scheduler
        items = self.program.items
        use_epochs = self.use_epochs
        while True:
            scheduler.refill(target_pending, allow_force=not completions)
            next_pe_time = self._next_pe_time()
            while completions and completions[0][0] <= next_pe_time:
                _, _, done = heapq.heappop(completions)
                if done is not None:
                    scheduler.task_completed(done)
                scheduler.refill(target_pending,
                                 allow_force=not completions)
            if use_epochs:
                head = scheduler.peek_ready()
                if head is not None and head.level == 0:
                    if not scheduler.has_blocked_tasks():
                        # No task tree in flight: the head is a simple
                        # final leaf (a non-final leaf implies a waiting
                        # parent) and the whole cursor-consuming stretch
                        # is timing-independent end to end.
                        batch = scheduler.drain_stretch(target_pending)
                        sequence = self._execute_epoch(
                            batch, completions, sequence)
                        continue
                    entries = scheduler.drain_ready_leaves()
                    ids = [entry[1].task_id for entry in entries]
                    fence, waiters = scheduler.fence_plan(
                        self.finish_time, ids)
                    if fence == _INF and not waiters:
                        # Every drained leaf is final (a non-final leaf
                        # would put its armable parent in ``waiters``)
                        # and nothing armed can become ready mid-stretch
                        # (any unemitted combine still depends on an
                        # undispatched root), so the cursor fast path
                        # applies.
                        scheduler.push_back(entries)
                        batch = scheduler.drain_stretch(target_pending)
                        sequence = self._execute_epoch(
                            batch, completions, sequence)
                    else:
                        new_sequence = self._execute_epoch_fenced(
                            entries, ids, fence, waiters, completions,
                            sequence, target_pending)
                        if new_sequence == sequence:
                            # Unreachable per the fence invariant (the
                            # fence clears the PE horizon at epoch
                            # entry); degrade to one scalar dispatch
                            # rather than spin.
                            task = scheduler.next_task()
                            finish = self._execute_task(task)
                            heapq.heappush(
                                completions, (finish, sequence, task))
                            sequence += 1
                        else:
                            sequence = new_sequence
                    continue
            task = scheduler.next_task()
            if task is not None:
                finish = self._execute_task(task)
                heapq.heappush(completions, (finish, sequence, task))
                sequence += 1
                continue
            if completions:
                if (not scheduler.has_blocked_tasks()
                        and scheduler._item_cursor >= len(items)):
                    # Nothing can become ready anymore: the remaining
                    # completion drains are bookkeeping no-ops, so skip
                    # the one-pop-per-iteration tail wholesale.
                    completions.clear()
                    continue
                _, _, done = heapq.heappop(completions)
                if done is not None:
                    scheduler.task_completed(done)
                continue
            if scheduler.exhausted:
                break
            raise RuntimeError(
                "scheduler stalled with blocked tasks outstanding"
            )
        self._account_a_traffic()
        bandwidth_floor = (
            self.memory.traffic.total_bytes / self.config.bytes_per_cycle
        )
        self.now = max(
            max(self.pe_free_times, default=0.0),
            self.memory.busy_until,
            bandwidth_floor,
        )
        if self.metrics is not None:
            self._publish_run_metrics(bandwidth_floor)

    # -- scalar-path hook -------------------------------------------------
    def _execute_task(self, task):
        finish = super()._execute_task(task)
        if task.is_final:
            self.output_len[task.row] = len(self.output_rows[task.row])
        return finish

    # -- epoch execution --------------------------------------------------
    def _execute_epoch(self, batch, completions, sequence: int) -> int:
        """Execute one epoch of final-leaf tasks on array state.

        ``batch`` is the struct-of-arrays stretch from
        :meth:`EpochScheduler.drain_stretch`: parallel ``(rows,
        task_ids, coords, scales)`` sequences, one entry per dispatch.
        """
        rows, task_ids, coord_parts, scale_parts = batch
        offsets = self.b.offsets
        num_tasks = len(rows)
        counts = np.fromiter((len(part) for part in coord_parts),
                             dtype=np.int64, count=num_tasks)
        all_rows = (np.concatenate(coord_parts) if num_tasks > 1
                    else np.asarray(coord_parts[0], dtype=np.int64))
        row_start = offsets[all_rows]
        nnzs = offsets[all_rows + 1] - row_start

        # One fused fetch+read per B input, whole epoch in one call.
        start_bytes = row_start * ELEMENT_BYTES
        end_bytes = (row_start + nnzs) * ELEMENT_BYTES
        lows = start_bytes // LINE_BYTES
        highs = -(-end_bytes // LINE_BYTES)
        misses, dirties, occ_b, occ_p = self.cache.fetch_read_epoch(
            lows, highs, counts, "B")

        # PE timing law over the batch.
        input_first = np.empty(num_tasks, dtype=np.int64)
        input_first[0] = 0
        np.cumsum(counts[:-1], out=input_first[1:])
        input_task = np.repeat(np.arange(num_tasks, dtype=np.int64), counts)
        totals = np.add.reduceat(nnzs, input_first)
        cycles = epoch_cycles(totals)
        total_elements = int(totals.sum())
        self.flops += total_elements
        self.num_tasks += num_tasks

        out_lens = self._combine_epoch(
            rows, scale_parts, row_start, nnzs, input_task, input_first,
            counts, total_elements, num_tasks)

        # Bulk time advancement: earliest-free assignment per task, B
        # requests issued at dispatch, result-less charges deferred.
        multi = self.multi_pe
        pe_free = self.pe_free
        free_times = self.pe_free_times
        busy_cycles = self.pe_busy_cycles
        row_pe = self.row_pe
        memory = self.memory
        trace = self.trace
        output_len = self.output_len
        heappush = heapq.heappush
        heappop = heapq.heappop
        cycle_list = cycles.tolist()
        len_list = out_lens.tolist()
        pending: List = []
        finishes: List[float] = []
        pe_busy = 0.0
        threshold = 0.0
        if trace is not None:
            from repro.core.trace import TaskEvent
        for i in range(num_tasks):
            row = rows[i]
            if multi:
                start, pe = heappop(pe_free)
                threshold = start
            else:
                while pe_free[0][0] != free_times[pe_free[0][1]]:
                    heappop(pe_free)
                threshold = pe_free[0][0]
                pe = row_pe.get(row)
                if pe is None:
                    pe = pe_free[0][1]
                    row_pe[row] = pe
                start = free_times[pe]
            miss = misses[i]
            cyc = cycle_list[i]
            if miss:
                if pending:
                    memory.request_epoch(pending)
                    pending = []
                data_ready = memory.request(
                    "B", miss * LINE_BYTES, start)
                finish = start + cyc
                if data_ready > finish:
                    finish = data_ready
            else:
                finish = start + cyc
            free_times[pe] = finish
            heappush(pe_free, (finish, pe))
            busy_cycles[pe] += cyc
            pe_busy += cyc
            out_len = len_list[i]
            output_len[row] = out_len
            pending.append(
                ("C", out_len * ELEMENT_BYTES + OFFSET_BYTES, finish))
            dirty = dirties[i]
            if dirty:
                pending.append(
                    ("partial_write", dirty * LINE_BYTES, finish))
            finishes.append(finish)
            if trace is not None:
                trace.record(TaskEvent(
                    task_id=task_ids[i],
                    row=row,
                    level=0,
                    is_final=True,
                    pe=pe,
                    start=start,
                    finish=finish,
                    busy_cycles=cyc,
                    b_miss_lines=miss,
                    partial_miss_lines=0,
                ))
        if pending:
            memory.request_epoch(pending)
        self.pe_busy += pe_busy
        self.cache.sample_utilization_epoch(occ_b, occ_p, cycle_list)
        # Catch up the completion drains the reference loop performed
        # during the stretch: everything finishing by the PE-availability
        # horizon it saw before the last dispatch is already completed.
        # Epoch tasks are final leaves — completing one is pure
        # bookkeeping (final ids are never consulted by a dependency
        # scan) — so drained epoch completions vanish outright and only
        # the still-in-flight tail enters the completions heap.
        scheduler = self.scheduler
        while completions and completions[0][0] <= threshold:
            _, _, done = heappop(completions)
            if done is not None:
                scheduler.task_completed(done)
        for i in range(num_tasks):
            finish = finishes[i]
            if finish > threshold:
                heappush(completions, (finish, sequence + i, None))
        return sequence + num_tasks

    def _execute_epoch_fenced(self, entries, ids, fence: float, waiters,
                              completions, sequence: int,
                              target_pending: int) -> int:
        """Execute a leaf stretch bounded by a ready-fence.

        With task trees in flight, the reference loop keeps dispatching
        level-0 leaves back-to-back until its PE-availability horizon
        reaches the *fence* — the earliest time a completion drain can
        make a waiting parent ready (``EpochScheduler.fence_plan``), at
        which point the parent preempts every later-ordered leaf. This
        path batches exactly that run: cache touches stay per-task (so
        stopping at the fence leaves no phantom state) while input
        gathering, output lengths, and the merge kernel run vectorized;
        the undispatched suffix returns to the ready heap verbatim.

        Both final leaves and non-final tree leaves dispatch here.
        A non-final leaf allocates and writes its partial-fiber lines in
        dispatch order (bit-identical cache evolution), records its
        finish for dependants, and folds that finish into the
        ``waiters`` records of parents it helps arm — lowering the
        fence on the spot, so the stop condition stays exact while the
        stretch itself changes which parents are armed. Its completion
        enters the heap carrying the real task so the drain unblocks
        the parent exactly like the reference loop's.

        ``entries`` are the raw heap entries from
        ``drain_ready_leaves``; ``ids`` their task ids in order.
        """
        num_batch = len(entries)
        offsets = self.b.offsets
        tasks = [entry[1] for entry in entries]
        rows = [task.row for task in tasks]
        finals = [task.is_final for task in tasks]
        coord_parts = []
        scale_parts = []
        for task in tasks:
            coords = getattr(task, "b_coords", None)
            if coords is None:
                # Tree leaf: materialize the TaskInput list once as
                # arrays (all inputs are B rows at level 0).
                inputs = task.inputs
                n = len(inputs)
                coords = np.fromiter((inp.index for inp in inputs),
                                     dtype=np.int64, count=n)
                scales = np.fromiter((inp.scale for inp in inputs),
                                     dtype=np.float64, count=n)
            else:
                scales = task.b_scales
            coord_parts.append(coords)
            scale_parts.append(scales)
        counts = np.fromiter((len(part) for part in coord_parts),
                             dtype=np.int64, count=num_batch)
        all_rows = (np.concatenate(coord_parts) if num_batch > 1
                    else np.asarray(coord_parts[0], dtype=np.int64))
        row_start = offsets[all_rows]
        nnzs = offsets[all_rows + 1] - row_start
        start_bytes = row_start * ELEMENT_BYTES
        end_bytes = (row_start + nnzs) * ELEMENT_BYTES
        lows = (start_bytes // LINE_BYTES).tolist()
        highs = (-(-end_bytes // LINE_BYTES)).tolist()

        input_first = np.empty(num_batch, dtype=np.int64)
        input_first[0] = 0
        np.cumsum(counts[:-1], out=input_first[1:])
        input_task = np.repeat(np.arange(num_batch, dtype=np.int64), counts)
        totals = np.add.reduceat(nnzs, input_first)
        cycle_list = epoch_cycles(totals).tolist()
        total_elements = int(totals.sum())

        # Output lengths for the whole chunk up front (value-independent,
        # needed in-loop to size each C write before the next flush).
        if total_elements:
            block_start = np.cumsum(nnzs) - nnzs
            gather = np.arange(total_elements, dtype=np.int64)
            gather += np.repeat(row_start - block_start, nnzs)
            el_task = np.repeat(input_task, nnzs)
            key = el_task * np.int64(self.b.num_cols) + self.b.coords[gather]
            order = np.argsort(key, kind="stable")
            sorted_key = key[order]
            flags = np.empty(total_elements, dtype=bool)
            flags[0] = True
            np.not_equal(sorted_key[1:], sorted_key[:-1], out=flags[1:])
            len_list = np.bincount(el_task[order][flags],
                                   minlength=num_batch).tolist()
        else:
            len_list = [0] * num_batch

        multi = self.multi_pe
        pe_free = self.pe_free
        free_times = self.pe_free_times
        busy_cycles = self.pe_busy_cycles
        row_pe = self.row_pe
        memory = self.memory
        cache = self.cache
        fetch = cache.fetch_read_range
        write = cache.write_range
        sample = cache.sample_utilization
        allocate = self._allocate_partial_lines
        partial_lines = self.partial_lines
        finish_time = self.finish_time
        trace = self.trace
        output_len = self.output_len
        scheduler = self.scheduler
        refill_epoch = scheduler.refill_epoch
        heappush = heapq.heappush
        heappop = heapq.heappop
        first_list = input_first.tolist()
        count_list = counts.tolist()
        pending: List = []
        finishes: List[float] = []
        pe_busy = 0.0
        threshold = 0.0
        dispatched = num_batch
        # Chunks that dispatch non-final leaves move the partial-output
        # budget, which gates the reference loop's between-dispatch
        # refills; replay those refills in-loop so an expansion the
        # reference performed (or skipped) right at the budget edge
        # lands identically. All-final chunks leave the budget static,
        # so their refills defer to the main loop unchanged.
        needs_refill = not all(finals)
        if trace is not None:
            from repro.core.trace import TaskEvent
        for i in range(num_batch):
            row = rows[i]
            if multi:
                thr = pe_free[0][0]
            else:
                while pe_free[0][0] != free_times[pe_free[0][1]]:
                    heappop(pe_free)
                thr = pe_free[0][0]
            if thr >= fence:
                dispatched = i
                break
            threshold = thr
            if multi:
                start, pe = heappop(pe_free)
            else:
                pe = row_pe.get(row)
                if pe is None:
                    pe = pe_free[0][1]
                    row_pe[row] = pe
                start = free_times[pe]
            miss = 0
            dirty = 0
            base = first_list[i]
            for j in range(base, base + count_list[i]):
                got_miss, got_dirty = fetch(lows[j], highs[j], "B")
                miss += got_miss
                dirty += got_dirty
            cyc = cycle_list[i]
            if miss:
                if pending:
                    memory.request_epoch(pending)
                    pending = []
                data_ready = memory.request("B", miss * LINE_BYTES, start)
                finish = start + cyc
                if data_ready > finish:
                    finish = data_ready
            else:
                finish = start + cyc
            free_times[pe] = finish
            heappush(pe_free, (finish, pe))
            busy_cycles[pe] += cyc
            pe_busy += cyc
            out_len = len_list[i]
            if finals[i]:
                output_len[row] = out_len
                pending.append(
                    ("C", out_len * ELEMENT_BYTES + OFFSET_BYTES, finish))
            else:
                tid = ids[i]
                self.num_partials += 1
                # Mirror ``Scheduler.next_task``: dispatching a
                # non-final task brings one more partial output fiber
                # into existence (Sec. 3.4 budget).
                scheduler.outstanding_partials += 1
                lines = allocate(out_len)
                partial_lines[tid] = lines
                _, write_dirty = write(lines[0], lines[1], "partial")
                dirty += write_dirty
                finish_time[tid] = finish
                records = waiters.get(tid)
                if records is not None:
                    for record in records:
                        if finish > record[1]:
                            record[1] = finish
                        record[0] -= 1
                        if record[0] == 0 and record[1] < fence:
                            fence = record[1]
            if dirty:
                pending.append(
                    ("partial_write", dirty * LINE_BYTES, finish))
            finishes.append(finish)
            sample(weight=cyc)
            if trace is not None:
                trace.record(TaskEvent(
                    task_id=ids[i],
                    row=row,
                    level=0,
                    is_final=finals[i],
                    pe=pe,
                    start=start,
                    finish=finish,
                    busy_cycles=cyc,
                    b_miss_lines=miss,
                    partial_miss_lines=0,
                ))
            if needs_refill:
                refill_epoch(target_pending, num_batch - i - 1)
        if pending:
            memory.request_epoch(pending)
        if dispatched < num_batch:
            scheduler.push_back(entries[dispatched:])
        if dispatched:
            if dispatched == num_batch:
                prefix_inputs = len(nnzs)
                prefix_elements = total_elements
            else:
                prefix_inputs = int(first_list[dispatched])
                prefix_elements = int(totals[:dispatched].sum())
            self.flops += prefix_elements
            self.num_tasks += dispatched
            self.pe_busy += pe_busy
            dispatched_finals = finals[:dispatched]
            # Non-final leaves need their partial fibers materialized
            # even on structure-only runs: parents merge real values.
            if self.keep_output or not all(dispatched_finals):
                self._combine_epoch(
                    rows[:dispatched], scale_parts[:dispatched],
                    row_start[:prefix_inputs], nnzs[:prefix_inputs],
                    input_task[:prefix_inputs], input_first[:dispatched],
                    counts[:dispatched], prefix_elements, dispatched,
                    finals=dispatched_finals, ids=ids[:dispatched])
        # Catch up the completion drains the reference loop performed
        # during the stretch, in its exact (finish, sequence) order:
        # merge the stretch's own completions into the heap first, then
        # drain everything up to the horizon it saw before the last
        # dispatch. Drained finals vanish (their ids are never consulted
        # by a dependency scan); drained tree leaves unblock their
        # parents — by the fence invariant none of those parents can
        # have become ready at or below ``threshold``, so deferring the
        # drains to the epoch boundary is order-equivalent.
        for i in range(dispatched):
            heappush(completions, (finishes[i], sequence + i,
                                   None if finals[i] else tasks[i]))
        while completions and completions[0][0] <= threshold:
            _, _, done = heappop(completions)
            if done is not None:
                scheduler.task_completed(done)
        return sequence + dispatched

    def _combine_epoch(self, rows, scale_parts, row_start, nnzs, input_task,
                       input_first, counts, total: int, num_tasks: int,
                       finals=None, ids=None):
        """Merge every task's B rows in one composite-key kernel.

        Bit-matched to ``linear_combine``: the composite key
        ``task * num_cols + coord`` makes one stable argsort order all
        tasks' elements by (task, coordinate) with ties in input order,
        so per-group reduction reproduces the scalar fold exactly —
        zero-started ``np.bincount`` for arithmetic, first-element
        ``add_ufunc.reduceat`` for semirings. Single-nonempty-input
        tasks mirror the ``fiber.scale`` shortcut (a direct product,
        no zero start) to preserve IEEE signed zeros.

        With ``finals``/``ids`` (the fenced mixed path), each task's
        fiber routes by kind: final rows to ``output_rows`` (under
        ``keep_output``), tree-leaf partials to ``partial_fibers``
        under their task id — always, since parents merge real values.
        Without them every task is a final row. Returns the per-task
        output lengths.
        """
        b = self.b
        if finals is None:
            need_values = self.keep_output
        else:
            need_values = self.keep_output or not all(finals)
        if total == 0:
            if need_values:
                self._store_epoch_outputs(
                    rows, finals, ids,
                    lambda i: Fiber.empty())
            return np.zeros(num_tasks, dtype=np.int64)
        block_start = np.cumsum(nnzs) - nnzs
        gather = np.arange(total, dtype=np.int64)
        gather += np.repeat(row_start - block_start, nnzs)
        el_coords = b.coords[gather]
        el_task = np.repeat(input_task, nnzs)
        key = el_task * np.int64(b.num_cols) + el_coords
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        flags = np.empty(total, dtype=bool)
        flags[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=flags[1:])
        out_lens = np.bincount(el_task[order][flags], minlength=num_tasks)
        if not need_values:
            return out_lens
        all_scales = (np.concatenate(scale_parts) if num_tasks > 1
                      else np.asarray(scale_parts[0], dtype=np.float64))
        el_scales = np.repeat(all_scales, nnzs)
        el_values = b.values[gather]
        out_coords = el_coords[order][flags]
        semiring = self.semiring
        arithmetic = semiring is None or semiring.is_arithmetic
        if arithmetic:
            sorted_values = (el_values * el_scales)[order]
            inverse = np.cumsum(flags)
            inverse -= 1
            out_values = np.bincount(inverse, weights=sorted_values)
        else:
            products = np.asarray(
                semiring.mul_array(el_scales, el_values), dtype=np.float64)
            out_values = np.asarray(
                semiring.add_ufunc.reduceat(products[order],
                                            np.flatnonzero(flags)),
                dtype=np.float64)
        bounds = np.cumsum(out_lens)
        task_start = bounds - out_lens
        if arithmetic:
            # linear_combine's single-nonempty shortcut scales the fiber
            # directly, with no zero-started fold; replay it so -0.0
            # products survive bit-for-bit.
            nonempty = np.bincount(input_task[nnzs > 0],
                                   minlength=num_tasks)
            b_values = b.values
            nnz_list = nnzs
            for t in np.flatnonzero(nonempty == 1).tolist():
                first = input_first[t]
                span = np.flatnonzero(
                    nnz_list[first:first + counts[t]] > 0)
                j = first + span[0]
                lo = row_start[j]
                out_values[task_start[t]:bounds[t]] = (
                    b_values[lo:lo + nnz_list[j]] * all_scales[j])
        task_bounds = bounds
        self._store_epoch_outputs(
            rows, finals, ids,
            lambda i: _make_fiber(out_coords[task_start[i]:task_bounds[i]],
                                  out_values[task_start[i]:task_bounds[i]]))
        return out_lens

    def _store_epoch_outputs(self, rows, finals, ids, make_fiber) -> None:
        """Route each epoch task's fiber to its destination store."""
        output_rows = self.output_rows
        if finals is None:
            for i, row in enumerate(rows):
                output_rows[row] = make_fiber(i)
            return
        partial_fibers = self.partial_fibers
        keep = self.keep_output
        for i, row in enumerate(rows):
            if finals[i]:
                if keep:
                    output_rows[row] = make_fiber(i)
            else:
                partial_fibers[ids[i]] = make_fiber(i)

    # -- results ----------------------------------------------------------
    def c_nnz(self) -> int:
        return sum(self.output_len.values())


def multiply(
    a: CsrMatrix,
    b: CsrMatrix,
    config: Optional[GammaConfig] = None,
    program: Optional[WorkProgram] = None,
) -> SimulationResult:
    """Convenience one-shot simulation of C = A x B on Gamma."""
    return GammaSimulator(config).run(a, b, program=program)
