"""Disk-backed memoization shared by every process of a sweep.

Simulations of the full suites take minutes; persisting their numeric
results (never the output matrices) lets separate pytest/benchmark/sweep
processes share one sweep. The cache lives under ``.repro_cache/`` in the
working directory (override with ``REPRO_CACHE_DIR``) and is keyed by a
hash of the simulation parameters, the package version, and the record
schema version — bump either to invalidate.

Writes are atomic: each entry is serialized to a uniquely named temporary
file in the cache directory and moved into place with ``os.replace``, so
concurrent sweep workers racing on the same key can never leave a torn or
interleaved JSON entry — the last complete write wins (and both writers
compute identical payloads anyway).

Entries are checksum-validated: the stored JSON is an envelope
``{"format": .., "checksum": sha256(payload-json), "payload": ..}``, and
:func:`load` recomputes the digest on every read. An entry that fails to
parse, carries the wrong envelope format, or whose digest mismatches —
bit-rot, a torn write on a filesystem without atomic rename, a
crashed-mid-write copy restored from backup — is *invalidated in place*
(unlinked) and reported as a miss, so a corrupt entry costs one
recomputation instead of silently poisoning every later sweep.

When sweep telemetry is active (:mod:`repro.obs.spans`), every load and
store publishes a ``cache/hit`` / ``cache/miss`` / ``cache/corrupt_unlink``
/ ``cache/store`` instant event, so a run log shows exactly which points
were served from disk and which entries had to be healed. With telemetry
off the hooks cost one environment lookup.

Delete the directory (or set ``REPRO_NO_DISK_CACHE=1``) to force re-runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Dict, Optional

import repro
from repro.engine.record import SCHEMA_VERSION
from repro.matrices.generators import GENERATOR_VERSION
from repro.obs import spans

#: Envelope layout version (independent of the record schema: the record
#: schema versions *payloads*, this versions the on-disk wrapper).
ENTRY_FORMAT = 1


def cache_dir() -> pathlib.Path:
    """The cache directory (env-dependent, so workers honor overrides)."""
    return pathlib.Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_DISK_CACHE", "") != "1"


def cache_key(kind: str, **params) -> str:
    """Stable key from parameters plus package/schema/generator versions."""
    payload = json.dumps(
        {"kind": kind, "version": repro.__version__,
         "schema": SCHEMA_VERSION, "generator": GENERATOR_VERSION,
         **params},
        sort_keys=True, default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def entry_path(key: str) -> pathlib.Path:
    """Where a key's entry lives (used by fault injection and tests)."""
    return cache_dir() / f"{key}.json"


def contains(key: str) -> bool:
    """Whether a (well-formed or not) entry exists for this key."""
    return cache_enabled() and entry_path(key).exists()


def payload_checksum(payload: Dict) -> str:
    """The digest stored alongside (and validated against) a payload."""
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def invalidate(key: str) -> bool:
    """Drop a key's entry (corrupt or stale); True when one was removed."""
    try:
        entry_path(key).unlink()
        return True
    except OSError:
        return False


def load(key: str) -> Optional[Dict]:
    """Read and validate an entry; corrupt entries are invalidated.

    Returns the payload, or None for a miss *or* any entry that fails
    envelope/checksum validation (which is removed so the next writer
    starts clean).
    """
    if not cache_enabled():
        return None
    path = entry_path(key)
    try:
        envelope = json.loads(path.read_text())
    except FileNotFoundError:
        spans.emit_instant("cache/miss", key=key)
        return None
    except (json.JSONDecodeError, OSError):
        invalidate(key)
        spans.emit_instant("cache/corrupt_unlink", key=key)
        return None
    if (
        not isinstance(envelope, dict)
        or envelope.get("format") != ENTRY_FORMAT
        or "payload" not in envelope
        or envelope.get("checksum") != payload_checksum(envelope["payload"])
    ):
        invalidate(key)
        spans.emit_instant("cache/corrupt_unlink", key=key)
        return None
    spans.emit_instant("cache/hit", key=key)
    return envelope["payload"]


def store(key: str, payload: Dict) -> None:
    if not cache_enabled():
        return
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    envelope = {
        "format": ENTRY_FORMAT,
        "checksum": payload_checksum(payload),
        "payload": payload,
    }
    path = directory / f"{key}.json"
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{key}.", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(envelope))
        os.replace(tmp_name, path)
        spans.emit_instant("cache/store", key=key)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
