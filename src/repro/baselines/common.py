"""Shared result type for baseline accelerator/CPU models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional



@dataclass(frozen=True)
class BaselineResult:
    """Traffic and timing estimate of one baseline on one input.

    Attributes:
        name: Model name ('MKL', 'IP', 'OuterSPACE', 'SpArch').
        cycles: Execution time in the model's clock cycles.
        frequency_hz: The model's clock.
        traffic_bytes: DRAM bytes by category
            (A / B / C / partial_read / partial_write).
        flops: Multiply-accumulate operations.
        c_nnz: Output nonzero count the model priced C traffic with
            (the caller-supplied truth, or the model's upper bound).
    """

    name: str
    cycles: float
    frequency_hz: float
    traffic_bytes: Dict[str, int]
    flops: int
    c_nnz: Optional[int] = None

    @property
    def total_traffic(self) -> int:
        return sum(self.traffic_bytes.values())

    @property
    def runtime_seconds(self) -> float:
        return self.cycles / self.frequency_hz

    def normalized_traffic(self, compulsory_bytes: int) -> float:
        return self.total_traffic / max(1, compulsory_bytes)

    def normalized_breakdown(self, compulsory_bytes: int) -> Dict[str, float]:
        compulsory = max(1, compulsory_bytes)
        return {k: v / compulsory for k, v in self.traffic_bytes.items()}


# Re-exported for baseline callers; single definition in analysis.traffic.
from repro.analysis.traffic import compulsory_traffic  # noqa: E402,F401
