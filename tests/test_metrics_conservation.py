"""Conservation laws tying the metrics layer to the simulator's totals.

The observability layer measures request by request and task by task; if
its sums ever drift from the simulator's own aggregate accounting, the
instrumentation is lying. These tests pin the two views together.
"""

import numpy as np
import pytest

from repro.analysis.traffic import (
    check_traffic_conservation,
    stream_breakdown_from_metrics,
)
from repro.config import GammaConfig, LINE_BYTES
from repro.core import GammaSimulator
from repro.matrices.builder import CooBuilder
from repro.obs import MetricsRegistry

SMALL = GammaConfig(
    num_pes=4, radix=4, fibercache_bytes=4 * 1024,
    fibercache_ways=4, fibercache_banks=4,
)


def assert_breakdown_matches(breakdown, traffic_bytes):
    """Streams with zero requests never create a counter, so compare
    with an implicit zero default rather than dict equality."""
    assert set(breakdown) <= set(traffic_bytes)
    for category, count in traffic_bytes.items():
        assert breakdown.get(category, 0) == count, category


def random_matrix(rng, rows, cols, entries):
    builder = CooBuilder(rows, cols)
    for _ in range(entries):
        builder.add(int(rng.integers(rows)), int(rng.integers(cols)),
                    float(rng.uniform(0.1, 5.0)))
    return builder.build()


@pytest.fixture(scope="module", params=[0, 1, 2])
def instrumented_run(request):
    rng = np.random.default_rng(request.param)
    a = random_matrix(rng, 30, 24, 140)
    b = random_matrix(rng, 24, 28, 150)
    metrics = MetricsRegistry()
    result = GammaSimulator(SMALL, metrics=metrics).run(a, b)
    return result, metrics


class TestTrafficConservation:
    def test_streams_sum_to_total_traffic(self, instrumented_run):
        result, metrics = instrumented_run
        breakdown = check_traffic_conservation(
            metrics, result.total_traffic)
        assert_breakdown_matches(breakdown, result.traffic_bytes)

    def test_blob_roundtrip_preserves_conservation(self, instrumented_run):
        result, metrics = instrumented_run
        blob = metrics.to_blob()
        assert_breakdown_matches(
            stream_breakdown_from_metrics(blob), result.traffic_bytes)
        check_traffic_conservation(blob, result.total_traffic)

    def test_miss_lines_match_dram_reads(self, instrumented_run):
        result, metrics = instrumented_run
        miss = metrics.counters_with_prefix("cache/miss_lines/")
        assert miss["B"] * LINE_BYTES == result.traffic_bytes["B"]
        assert (miss["partial"] * LINE_BYTES
                == result.traffic_bytes["partial_read"])

    def test_conservation_check_rejects_wrong_total(self, instrumented_run):
        result, metrics = instrumented_run
        with pytest.raises(ValueError, match="aggregate traffic"):
            check_traffic_conservation(metrics, result.total_traffic + 1)


class TestCycleConservation:
    def test_pe_busy_plus_idle_covers_execution(self, instrumented_run):
        result, metrics = instrumented_run
        busy = metrics.counter("cycles/pe_busy_total").value
        idle = metrics.counter("cycles/pe_idle_total").value
        assert busy + idle == pytest.approx(
            result.cycles * SMALL.num_pes, rel=1e-9)

    def test_busy_total_matches_simulator_aggregate(self, instrumented_run):
        result, metrics = instrumented_run
        busy = metrics.counter("cycles/pe_busy_total").value
        assert busy == pytest.approx(result.pe_busy_cycles, rel=1e-9)
        # The per-PE table must sum to the same total.
        per_pe = metrics.series("pe/busy")
        assert sum(per_pe.ys) == pytest.approx(busy, rel=1e-9)

    def test_compute_cycles_equal_busy_cycles(self, instrumented_run):
        result, metrics = instrumented_run
        # Per-task compute accounting and per-PE busy accounting are two
        # routes to the same quantity.
        compute = metrics.counter("cycles/compute").value
        busy = metrics.counter("cycles/pe_busy_total").value
        assert compute == pytest.approx(busy, rel=1e-9)

    def test_task_counts_conserve(self, instrumented_run):
        result, metrics = instrumented_run
        dispatched = metrics.counter("tasks/dispatched").value
        assert dispatched == result.num_tasks
        assert dispatched == (
            metrics.counter("tasks/final").value
            + metrics.counter("tasks/partial_outputs").value)
        assert (metrics.counter("tasks/partial_outputs").value
                == result.num_partial_fibers)

    def test_run_gauges_match_result(self, instrumented_run):
        result, metrics = instrumented_run
        assert metrics.gauge("run/cycles").value == result.cycles
        assert metrics.gauge("run/flops").value == result.flops


class TestEngineIntegration:
    def test_record_carries_conserving_blob(self):
        from repro.engine.registry import get_model

        rng = np.random.default_rng(7)
        a = random_matrix(rng, 20, 20, 80)
        b = random_matrix(rng, 20, 20, 80)
        record = get_model("gamma").run(
            a, b, SMALL, matrix="synthetic", collect_metrics=True)
        assert record.metrics is not None
        assert_breakdown_matches(
            check_traffic_conservation(
                record.metrics, record.total_traffic),
            record.traffic_bytes)
        # Serialization to/from the disk-cache payload keeps the blob.
        from repro.engine.record import RunRecord

        revived = RunRecord.from_payload(record.to_payload())
        check_traffic_conservation(revived.metrics, revived.total_traffic)

    def test_metrics_off_by_default(self):
        from repro.engine.registry import get_model

        rng = np.random.default_rng(8)
        a = random_matrix(rng, 15, 15, 50)
        b = random_matrix(rng, 15, 15, 50)
        record = get_model("gamma").run(a, b, SMALL, matrix="synthetic")
        assert record.metrics is None
