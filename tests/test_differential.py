"""Randomized differential tests: the simulator vs reference SpGEMM.

Fifty seeded random CSR pairs — varied density, empty rows, singleton
rows and columns, rectangular shapes — multiplied on a deliberately tiny
Gamma system (4 KB FiberCache, radix 4, so evictions, spills, and
multi-level task trees all trigger) and checked against the software
Gustavson kernels under the arithmetic, boolean, and tropical semirings.
The first dozen seeds run everywhere; the rest ride the ``slow`` marker.
"""

import numpy as np
import pytest

from repro.apps.masked import apply_mask, masked_spgemm
from repro.baselines.rvv import rvv_spgemm
from repro.baselines.sparsezipper import zipper_spgemm
from repro.baselines.spgemm_ref import (
    spgemm_hash,
    spgemm_semiring,
    spgemm_spa,
)
from repro.config import GammaConfig
from repro.core import GammaSimulator, ReferenceGammaSimulator
from repro.matrices.builder import CooBuilder
from repro.matrices.csr import CsrMatrix
from repro.semiring import ARITHMETIC, BOOLEAN, TROPICAL_MIN

#: Small enough that random 25-dim operands actually stress eviction,
#: partial spills, and multi-level merges.
SMALL_CONFIG = GammaConfig(
    num_pes=4, radix=4, fibercache_bytes=4 * 1024,
    fibercache_ways=4, fibercache_banks=4,
)

QUICK = 12
SEEDS = [
    pytest.param(seed, marks=pytest.mark.slow) if seed >= QUICK else seed
    for seed in range(50)
]


def random_pair(seed):
    """One seeded (A, B) pair with deliberately varied structure."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 25))
    k = int(rng.integers(1, 25))
    n = int(rng.integers(1, 25))
    density = float(rng.choice([0.02, 0.08, 0.2, 0.5]))

    def build(rows, cols):
        builder = CooBuilder(rows, cols)
        for _ in range(int(np.ceil(density * rows * cols))):
            builder.add(
                int(rng.integers(rows)), int(rng.integers(cols)),
                float(rng.uniform(0.1, 5.0)),
            )
        return builder.build()

    return build(m, k), build(k, n)


def entries(matrix):
    """CSR content as {(row, col): value} for structural comparison."""
    out = {}
    for row in range(matrix.num_rows):
        start, end = matrix.offsets[row], matrix.offsets[row + 1]
        for idx in range(start, end):
            out[(row, int(matrix.coords[idx]))] = float(matrix.values[idx])
    return out


def assert_same_matrix(actual, expected, exact):
    got, want = entries(actual), entries(expected)
    assert set(got) == set(want)
    for coord, value in want.items():
        if exact:
            assert got[coord] == value, coord
        else:
            assert got[coord] == pytest.approx(value, rel=1e-9), coord


def simulate(a, b, semiring=None):
    sim = GammaSimulator(SMALL_CONFIG, semiring=semiring)
    return sim.run(a, b).output


class TestDifferentialArithmetic:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_spa_reference(self, seed):
        a, b = random_pair(seed)
        expected, _ = spgemm_spa(a, b)
        # Tree-order float summation differs from reference order, so
        # arithmetic comparisons are tolerance-based, not bit-exact.
        assert_same_matrix(simulate(a, b), expected, exact=False)

    @pytest.mark.parametrize("seed", range(QUICK))
    def test_reference_kernels_agree(self, seed):
        a, b = random_pair(seed)
        spa, _ = spgemm_spa(a, b)
        hashed, _ = spgemm_hash(a, b)
        generic = spgemm_semiring(a, b, ARITHMETIC)
        assert_same_matrix(hashed, spa, exact=False)
        assert_same_matrix(generic, spa, exact=False)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_explicit_semiring_matches_default_path(self, seed):
        a, b = random_pair(seed)
        assert_same_matrix(
            simulate(a, b, semiring=ARITHMETIC),
            spgemm_semiring(a, b, ARITHMETIC), exact=False)


class TestDifferentialSemirings:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_boolean(self, seed):
        a, b = random_pair(seed)
        assert_same_matrix(
            simulate(a, b, semiring=BOOLEAN),
            spgemm_semiring(a, b, BOOLEAN), exact=True)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tropical(self, seed):
        a, b = random_pair(seed)
        assert_same_matrix(
            simulate(a, b, semiring=TROPICAL_MIN),
            spgemm_semiring(a, b, TROPICAL_MIN), exact=True)


SEMIRINGS = pytest.mark.parametrize(
    "semiring", [ARITHMETIC, BOOLEAN, TROPICAL_MIN],
    ids=["arithmetic", "boolean", "tropical"])

MASK_KINDS = pytest.mark.parametrize("complement", [False, True],
                                     ids=["structural", "complement"])


def random_mask(seed, num_rows, num_cols):
    """A seeded random mask pattern over the output shape.

    Densities span nearly-empty to nearly-full so the structural and
    complemented filters each get both aggressive and trivial masks.
    """
    rng = np.random.default_rng(seed + 7919)
    density = float(rng.choice([0.0, 0.1, 0.3, 0.7, 1.0]))
    pattern = rng.random((num_rows, num_cols)) < density
    return CsrMatrix.from_dense(pattern.astype(float))


class TestMaskedDifferential:
    """C<M> = A x B on every execution model vs the filtered oracle."""

    @pytest.mark.parametrize("seed", SEEDS)
    @SEMIRINGS
    @MASK_KINDS
    def test_simulator_matches_oracle(self, seed, semiring, complement):
        a, b = random_pair(seed)
        mask = random_mask(seed, a.num_rows, b.num_cols)
        expected = spgemm_semiring(a, b, semiring, mask=mask,
                                   complement=complement)
        result = masked_spgemm(a, b, mask, complement=complement,
                               semiring=semiring, config=SMALL_CONFIG)
        assert_same_matrix(result.output, expected,
                           exact=semiring is not ARITHMETIC)
        assert result.c_nnz == expected.nnz
        assert all(v >= 0 for v in result.traffic_bytes.values())

    @pytest.mark.parametrize("seed", range(QUICK))
    @SEMIRINGS
    @MASK_KINDS
    def test_reference_engine_matches_oracle(self, seed, semiring,
                                             complement):
        a, b = random_pair(seed)
        mask = random_mask(seed, a.num_rows, b.num_cols)
        expected = spgemm_semiring(a, b, semiring, mask=mask,
                                   complement=complement)
        result = masked_spgemm(a, b, mask, complement=complement,
                               semiring=semiring, config=SMALL_CONFIG,
                               simulator_cls=ReferenceGammaSimulator)
        assert_same_matrix(result.output, expected,
                           exact=semiring is not ARITHMETIC)

    @pytest.mark.parametrize("seed", SEEDS)
    @SEMIRINGS
    @MASK_KINDS
    def test_cpu_kernels_bit_exact(self, seed, semiring, complement):
        # The zipper merge-fold and the SPA walk both apply add() in
        # A-column order per output coordinate — the oracle's exact
        # association order — so even arithmetic results are
        # bit-identical, not merely close.
        a, b = random_pair(seed)
        mask = random_mask(seed, a.num_rows, b.num_cols)
        expected = spgemm_semiring(a, b, semiring, mask=mask,
                                   complement=complement)
        for kernel in (zipper_spgemm, rvv_spgemm):
            filtered = apply_mask(kernel(a, b, semiring), mask,
                                  complement=complement)
            assert_same_matrix(filtered, expected, exact=True)

    @pytest.mark.parametrize("seed", SEEDS)
    @SEMIRINGS
    def test_unmasked_cpu_kernels_bit_exact(self, seed, semiring):
        a, b = random_pair(seed)
        expected = spgemm_semiring(a, b, semiring)
        assert_same_matrix(zipper_spgemm(a, b, semiring), expected,
                           exact=True)
        assert_same_matrix(rvv_spgemm(a, b, semiring), expected,
                           exact=True)


class TestDifferentialStructure:
    """Pathological shapes every seed may not hit get explicit coverage."""

    def build(self, rows, cols, coords):
        builder = CooBuilder(rows, cols)
        for r, c, v in coords:
            builder.add(r, c, v)
        return builder.build()

    @pytest.mark.parametrize(
        "semiring", [None, BOOLEAN, TROPICAL_MIN],
        ids=["arithmetic", "boolean", "tropical"])
    def test_empty_a(self, semiring):
        a = self.build(6, 5, [])
        b = self.build(5, 7, [(0, 1, 2.0), (4, 6, 3.0)])
        assert simulate(a, b, semiring=semiring).nnz == 0

    @pytest.mark.parametrize(
        "semiring", [None, BOOLEAN, TROPICAL_MIN],
        ids=["arithmetic", "boolean", "tropical"])
    def test_singleton_rows_and_interior_empty_rows(self, semiring):
        a = self.build(5, 4, [(0, 2, 1.5), (3, 0, 2.0), (3, 3, 0.5)])
        b = self.build(4, 3, [(0, 0, 1.0), (2, 1, 4.0), (3, 2, 2.5)])
        oracle = semiring or ARITHMETIC
        assert_same_matrix(
            simulate(a, b, semiring=semiring),
            spgemm_semiring(a, b, oracle),
            exact=semiring is not None)

    def test_row_wider_than_radix(self):
        # One A row referencing more B rows than the merger radix forces
        # a multi-level task tree; the result must not depend on it.
        k = 3 * SMALL_CONFIG.radix + 1
        a = self.build(1, k, [(0, i, 1.0 + i / 7) for i in range(k)])
        b = self.build(
            k, 6, [(i, i % 6, 0.5 + (i % 9) / 3) for i in range(k)])
        expected, _ = spgemm_spa(a, b)
        assert_same_matrix(simulate(a, b), expected, exact=False)
