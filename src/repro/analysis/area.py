"""Analytic area model reproducing the paper's Table 2 and Sec. 6.6.

Component areas are anchored to the published synthesis results (45 nm
FreePDK45 at 1 GHz) and extended with the scaling laws the paper argues
from: merger area grows *linearly* with radix but *quadratically* with
throughput (Sec. 3), which is why Gamma uses many 1-element/cycle mergers
while SpArch's single high-throughput merger dominates its area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import GammaConfig

#: Published component areas in mm^2 at 45 nm (paper Table 2).
MERGER_AREA_MM2 = 0.045          # radix-64, 1 elem/cycle
FP_MULTIPLIER_AREA_MM2 = 0.082   # 64-bit floating-point multiplier
FP_ADDER_AREA_MM2 = 0.015
PE_OTHER_AREA_MM2 = 0.008
SCHEDULER_AREA_MM2 = 0.11
FIBERCACHE_AREA_MM2 = 22.6       # 3 MB, 48 banks (CACTI 7.0)
CROSSBAR_AREA_MM2 = 3.1          # 48x48 and 48x16 swizzle switches

_REFERENCE_RADIX = 64
_REFERENCE_CACHE_BYTES = 3 * 1024 * 1024
_REFERENCE_PES = 32

#: Area scale factors between process nodes, relative to 45 nm
#: (first-order linear-dimension-squared scaling used in Sec. 6.6).
NODE_SCALE = {45: 1.0, 40: (40 / 45) ** 2, 32: (32 / 45) ** 2}


@dataclass(frozen=True)
class AreaBreakdown:
    """Chip area by component, in mm^2."""

    pes: float
    scheduler: float
    fibercache: float
    crossbars: float

    @property
    def total(self) -> float:
        return self.pes + self.scheduler + self.fibercache + self.crossbars

    def as_dict(self) -> Dict[str, float]:
        return {
            "PEs": self.pes,
            "Scheduler": self.scheduler,
            "FiberCache": self.fibercache,
            "Crossbars": self.crossbars,
            "Total": self.total,
        }


def merger_area(radix: int, throughput: int = 1) -> float:
    """Merger area: linear in radix, quadratic in throughput (Sec. 3).

    Producing N outputs per cycle requires up to N^2 comparisons, so a
    high-throughput merger like SpArch's pays quadratically.
    """
    if radix < 2:
        raise ValueError("radix must be >= 2")
    if throughput < 1:
        raise ValueError("throughput must be >= 1")
    radix_scale = radix / _REFERENCE_RADIX
    return MERGER_AREA_MM2 * radix_scale * throughput ** 2


def pe_area(radix: int = 64) -> float:
    """One PE: merger + FP multiplier + FP adder + control (Table 2)."""
    return (merger_area(radix) + FP_MULTIPLIER_AREA_MM2
            + FP_ADDER_AREA_MM2 + PE_OTHER_AREA_MM2)


def pe_component_fractions(radix: int = 64) -> Dict[str, float]:
    """Per-component share of PE area (Table 2 right half)."""
    total = pe_area(radix)
    return {
        "Merger": merger_area(radix) / total,
        "FP Mul": FP_MULTIPLIER_AREA_MM2 / total,
        "FP Add": FP_ADDER_AREA_MM2 / total,
        "Others": PE_OTHER_AREA_MM2 / total,
    }


def fibercache_area(capacity_bytes: int) -> float:
    """SRAM area scales linearly with capacity to first order (CACTI)."""
    return FIBERCACHE_AREA_MM2 * capacity_bytes / _REFERENCE_CACHE_BYTES


def gamma_area(config: Optional[GammaConfig] = None,
               node_nm: int = 45) -> AreaBreakdown:
    """Full-chip area for a Gamma configuration at a process node.

    The default configuration reproduces Table 2: 30.6 mm^2 at 45 nm,
    24.2 mm^2 scaled to 40 nm (Sec. 6.6).
    """
    config = config or GammaConfig()
    if node_nm not in NODE_SCALE:
        raise ValueError(
            f"unsupported node {node_nm} nm; known: {sorted(NODE_SCALE)}"
        )
    scale = NODE_SCALE[node_nm]
    pe_ratio = config.num_pes / _REFERENCE_PES
    return AreaBreakdown(
        pes=pe_area(config.radix) * config.num_pes * scale,
        scheduler=SCHEDULER_AREA_MM2 * max(1.0, pe_ratio) * scale,
        fibercache=fibercache_area(config.fibercache_bytes) * scale,
        crossbars=CROSSBAR_AREA_MM2 * max(1.0, pe_ratio) * scale,
    )


def sparch_merger_area_ratio() -> float:
    """SpArch's merger-to-multiplier area ratio (paper: ~38x Gamma's).

    SpArch implements a radix-64 merger sustaining ~8 elements/cycle (the
    same constant the SpArch timing model uses); quadratic throughput
    scaling makes it far larger than Gamma's scalar merger relative to a
    multiplier.
    """
    sparch_merger = merger_area(64, throughput=8)
    return sparch_merger / FP_MULTIPLIER_AREA_MM2
