"""Matrix structure statistics used across the evaluation.

Includes the affinity score functions from paper Sec. 4.1 (Eq. 1-3), which
the reordering preprocessor maximizes and the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.config import ELEMENT_BYTES
from repro.matrices.csr import CsrMatrix


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics of one sparse matrix."""

    rows: int
    cols: int
    nnz: int
    density: float
    nnz_per_row_mean: float
    nnz_per_row_max: int
    nnz_per_row_std: float
    footprint_bytes: int

    @staticmethod
    def of(matrix: CsrMatrix) -> "MatrixStats":
        lengths = matrix.row_lengths()
        return MatrixStats(
            rows=matrix.num_rows,
            cols=matrix.num_cols,
            nnz=matrix.nnz,
            density=matrix.density,
            nnz_per_row_mean=float(lengths.mean()) if len(lengths) else 0.0,
            nnz_per_row_max=int(lengths.max()) if len(lengths) else 0,
            nnz_per_row_std=float(lengths.std()) if len(lengths) else 0.0,
            footprint_bytes=matrix.nbytes,
        )


def row_affinity(matrix: CsrMatrix, i: int, j: int) -> int:
    """s(i, j) from Eq. 1: shared nonzero coordinates of rows i and j."""
    a = matrix.row(i).coords
    b = matrix.row(j).coords
    return int(len(np.intersect1d(a, b, assume_unique=True)))


def window_size(matrix_b: CsrMatrix, fibercache_bytes: int) -> int:
    """W from Eq. 2: B rows that fit in the FiberCache on average."""
    avg_row = matrix_b.nnz / max(1, matrix_b.num_rows)
    denominator = max(1.0, avg_row * ELEMENT_BYTES)
    return max(1, int(fibercache_bytes / denominator))


def matrix_affinity(matrix: CsrMatrix, window: int) -> int:
    """F from Eq. 3: total affinity of rows with their preceding window.

    Computed with a sliding multiset of column counts so it runs in
    O(nnz * window-turnover) rather than O(rows^2).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    counts: Dict[int, int] = {}
    total = 0
    history: List[np.ndarray] = []
    for row in range(matrix.num_rows):
        coords = matrix.row(row).coords
        for coord in coords.tolist():
            total += counts.get(coord, 0)
        for coord in coords.tolist():
            counts[coord] = counts.get(coord, 0) + 1
        history.append(coords)
        if len(history) > window:
            old = history.pop(0)
            for coord in old.tolist():
                remaining = counts[coord] - 1
                if remaining:
                    counts[coord] = remaining
                else:
                    del counts[coord]
    return total


def flops(a: CsrMatrix, b: CsrMatrix) -> int:
    """Multiply-accumulate count of A x B (each MAC = 1 FLOP, Sec. 6.5)."""
    if a.num_cols != b.num_rows:
        raise ValueError(
            f"inner dimensions differ: {a.shape} x {b.shape}"
        )
    b_lengths = b.row_lengths()
    if a.nnz == 0:
        return 0
    return int(b_lengths[a.coords].sum())


def reuse_factor(a: CsrMatrix, b: CsrMatrix) -> float:
    """Average times each touched row of B is consumed (Gustavson reuse)."""
    if a.nnz == 0:
        return 0.0
    touched = np.unique(a.coords)
    return a.nnz / len(touched)
