"""ASCII chart rendering for the paper's figures.

The evaluation artifacts are *figures*; these helpers render them as
terminal bar charts and scatter plots so benchmark output is directly
comparable to the paper's plots without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

_BAR_FILL = "#"
_STACK_FILLS = "#=+:*o"


def hbar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    value_format: str = "{:.2f}",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title
    peak = max_value if max_value is not None else max(values)
    peak = max(peak, 1e-12)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar_len = int(round(width * min(value, peak) / peak))
        bar = _BAR_FILL * bar_len
        overflow = ">" if value > peak else ""
        lines.append(
            f"{str(label):>{label_width}} |{bar}{overflow} "
            + value_format.format(value)
        )
    return "\n".join(lines)


def stacked_hbar_chart(
    labels: Sequence[str],
    stacks: Sequence[Dict[str, float]],
    categories: Sequence[str],
    width: int = 50,
    title: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Stacked horizontal bars (the paper's traffic-breakdown figures).

    Each category gets a distinct fill character, listed in the legend.
    """
    if len(labels) != len(stacks):
        raise ValueError("labels and stacks must have equal length")
    if len(categories) > len(_STACK_FILLS):
        raise ValueError(
            f"at most {len(_STACK_FILLS)} categories supported")
    totals = [sum(stack.get(c, 0.0) for c in categories)
              for stack in stacks]
    peak = max_value if max_value is not None else max(totals, default=0.0)
    peak = max(peak, 1e-12)
    label_width = max((len(str(label)) for label in labels), default=0)
    lines = [title] if title else []
    legend = "  ".join(
        f"{fill}={category}"
        for fill, category in zip(_STACK_FILLS, categories)
    )
    lines.append(f"legend: {legend}")
    for label, stack, total in zip(labels, stacks, totals):
        bar = ""
        for fill, category in zip(_STACK_FILLS, categories):
            segment = stack.get(category, 0.0)
            bar += fill * int(round(width * min(segment, peak) / peak))
        overflow = ">" if total > peak else ""
        lines.append(
            f"{str(label):>{label_width}} |{bar}{overflow} {total:.2f}"
        )
    return "\n".join(lines)


def scatter_plot(
    points: Sequence[Tuple[float, float]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    log_x: bool = False,
    log_y: bool = False,
    marker: str = "*",
    curve: Optional[Sequence[Tuple[float, float]]] = None,
) -> str:
    """ASCII scatter plot, optionally log-scaled, with an overlay curve.

    Used for the roofline figure: ``curve`` draws the roof itself.
    """
    if not points:
        return title

    def transform(value: float, log: bool) -> float:
        if log:
            if value <= 0:
                raise ValueError("log scale requires positive values")
            return math.log10(value)
        return value

    everything = list(points) + list(curve or [])
    xs = [transform(x, log_x) for x, _ in everything]
    ys = [transform(y, log_y) for _, y in everything]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, symbol: str) -> None:
        col = int((transform(x, log_x) - x_lo) / x_span * (width - 1))
        row = int((transform(y, log_y) - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = symbol

    for x, y in curve or []:
        place(x, y, "-")
    for x, y in points:
        place(x, y, marker)

    lines = [title] if title else []
    axis_note = []
    if log_x:
        axis_note.append("log x")
    if log_y:
        axis_note.append("log y")
    if axis_note:
        lines.append(f"({', '.join(axis_note)})")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f" x: [{min(x for x, _ in points):.3g}, "
        f"{max(x for x, _ in points):.3g}]  "
        f"y: [{min(y for _, y in points):.3g}, "
        f"{max(y for _, y in points):.3g}]"
    )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Grouped horizontal bars: one block per group, one bar per series."""
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    peak = max(
        (v for values in series.values() for v in values), default=0.0)
    peak = max(peak, 1e-12)
    series_width = max(len(name) for name in series)
    lines = [title] if title else []
    for index, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[index]
            bar = _BAR_FILL * int(round(width * value / peak))
            lines.append(f"  {name:>{series_width}} |{bar} {value:.2f}")
    return "\n".join(lines)
