"""Cross-process span/event recorder for sweep-scale telemetry.

A sweep is many processes — the parent driving worker slots, each slot a
killable worker — and questions like "where did the wall-clock go",
"which slots starved", and "how often did the cache save a recompute"
need one event stream spanning all of them. This module provides it in
three parts:

* :class:`SpanRecorder` — appends schema-versioned JSON-lines records
  (``span`` and ``instant`` events) to one file per process. Every line
  is flushed as written, so a worker killed mid-point (the sweep
  engine's cancellation mechanism) leaves a valid prefix plus at most
  one torn final line.
* **Activation by environment** — the parent enables telemetry with
  :func:`enable`, which points ``REPRO_SPAN_DIR`` at a directory;
  worker processes inherit the variable and lazily open their own
  ``spans-<pid>.jsonl`` on first emit. When the variable is unset,
  every :func:`emit_instant`/:func:`emit_span` call is a dictionary
  lookup returning immediately — uninstrumented sweeps pay nothing.
* **Parent merge** — :func:`merge_directory` reads every per-process
  file (tolerating torn lines from killed workers), orders events by
  ``(ts, pid, seq)``, and :func:`write_run_log` persists them as one
  schema-versioned run log the trace-event exporter and the run report
  consume.

Publishers are the sweep engine (point lifecycle, retries, backoff,
timeout kills, quarantine, checkpoint writes) and the disk cache
(hit / miss / corrupt-unlink / store); see
:mod:`repro.engine.sweep` and :mod:`repro.engine.diskcache`.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple, Union

#: Bump when the per-line record layout changes (checked on read).
SPAN_SCHEMA_VERSION = 1

#: Directory that activates recording for this process and its children.
SPAN_DIR_ENV = "REPRO_SPAN_DIR"

#: Slot index a sweep worker inherits (its lane in the trace view).
SPAN_SLOT_ENV = "REPRO_SPAN_SLOT"

#: Run-log header ``kind`` (distinguishes merged logs from raw files).
RUN_LOG_KIND = "run-log"


class SpanRecorder:
    """Appends span/instant records to one JSONL file, flushing per line.

    Records carry a per-recorder ``seq`` so a stable merge order exists
    even when two events share a timestamp. ``slot`` is the sweep slot
    lane (None for the parent / serial execution).
    """

    def __init__(self, path: Union[str, Path], role: str = "worker",
                 slot: Optional[int] = None) -> None:
        self.path = Path(path)
        self.pid = os.getpid()
        self.role = role
        self.slot = slot
        self._seq = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._write({
                "type": "header",
                "schema": SPAN_SCHEMA_VERSION,
                "pid": self.pid,
                "role": role,
                "slot": slot,
            })

    def _write(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def _emit(self, kind: str, name: str, ts: float, dur: float,
              attrs: Dict[str, Any]) -> None:
        self._seq += 1
        self._write({
            "type": kind,
            "name": name,
            "ts": ts,
            "dur": dur,
            "pid": self.pid,
            "slot": self.slot,
            "seq": self._seq,
            "attrs": attrs,
        })

    def instant(self, name: str, **attrs: Any) -> None:
        """A point-in-time event (retry, cache hit, quarantine, ...)."""
        self._emit("instant", name, time.time(), 0.0, attrs)

    def span(self, name: str, start_ts: float,
             end_ts: Optional[float] = None, **attrs: Any) -> None:
        """A completed interval ``[start_ts, end_ts]`` (unix seconds)."""
        if end_ts is None:
            end_ts = time.time()
        self._emit("span", name, start_ts,
                   max(0.0, end_ts - start_ts), attrs)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Process-wide current recorder (parent sets it, workers inherit by env)
# ----------------------------------------------------------------------
_recorder: Optional[SpanRecorder] = None
_recorder_pid: Optional[int] = None


def enable(directory: Union[str, Path], role: str = "parent",
           slot: Optional[int] = None) -> SpanRecorder:
    """Activate recording for this process *and its future children*.

    Creates ``directory``, opens this process's recorder there, and sets
    :data:`SPAN_DIR_ENV` so worker processes spawned afterwards record
    themselves into sibling files.
    """
    global _recorder, _recorder_pid
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    os.environ[SPAN_DIR_ENV] = str(directory)
    disable_current()
    _recorder = SpanRecorder(
        directory / f"spans-{os.getpid()}.jsonl", role=role, slot=slot)
    _recorder_pid = os.getpid()
    return _recorder


def disable() -> None:
    """Stop recording here and stop propagating to future children."""
    os.environ.pop(SPAN_DIR_ENV, None)
    disable_current()


def disable_current() -> None:
    global _recorder, _recorder_pid
    if _recorder is not None and _recorder_pid == os.getpid():
        _recorder.close()
    _recorder = None
    _recorder_pid = None


def current_recorder() -> Optional[SpanRecorder]:
    """This process's recorder, or None when telemetry is off.

    The first call in a freshly spawned worker (which inherited
    :data:`SPAN_DIR_ENV` and possibly :data:`SPAN_SLOT_ENV`) lazily
    opens that worker's own span file; a recorder inherited through
    ``fork`` is never reused because the pid no longer matches.
    """
    global _recorder, _recorder_pid
    pid = os.getpid()
    if _recorder is not None and _recorder_pid == pid:
        return _recorder
    directory = os.environ.get(SPAN_DIR_ENV, "")
    if not directory:
        return None
    slot_text = os.environ.get(SPAN_SLOT_ENV, "")
    slot = int(slot_text) if slot_text.isdigit() else None
    _recorder = SpanRecorder(
        Path(directory) / f"spans-{pid}.jsonl", role="worker", slot=slot)
    _recorder_pid = pid
    return _recorder


def active() -> bool:
    return bool(os.environ.get(SPAN_DIR_ENV, ""))


def emit_instant(name: str, **attrs: Any) -> None:
    """Record an instant event if telemetry is active (else free)."""
    recorder = current_recorder()
    if recorder is not None:
        recorder.instant(name, **attrs)


def emit_span(name: str, start_ts: float,
              end_ts: Optional[float] = None, **attrs: Any) -> None:
    """Record a completed span if telemetry is active (else free)."""
    recorder = current_recorder()
    if recorder is not None:
        recorder.span(name, start_ts, end_ts, **attrs)


# ----------------------------------------------------------------------
# Parent-side merge
# ----------------------------------------------------------------------
def read_span_file(path: Union[str, Path]) -> Tuple[List[Dict], int]:
    """Read one per-process file; returns (records, torn_line_count).

    A worker killed mid-write (timeout cancellation, injected
    ``os._exit``) leaves at most one torn final line; any undecodable
    or schema-mismatched line is counted and skipped rather than
    failing the merge — partial telemetry from a dead worker is still
    telemetry.
    """
    records: List[Dict] = []
    torn = 0
    try:
        text = Path(path).read_text(encoding="utf-8", errors="replace")
    except OSError:
        return records, torn
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            torn += 1
            continue
        if not isinstance(record, dict):
            torn += 1
            continue
        if record.get("type") == "header":
            if record.get("schema") != SPAN_SCHEMA_VERSION:
                torn += 1
            continue
        if record.get("type") not in ("span", "instant"):
            torn += 1
            continue
        records.append(record)
    return records, torn


def merge_directory(directory: Union[str, Path]) -> Dict[str, Any]:
    """Merge every ``spans-*.jsonl`` under ``directory`` into one stream.

    Returns ``{"spans": [...], "source_files": N, "torn_lines": M}``
    with events ordered by ``(ts, pid, seq)`` — a total order that is
    stable across re-merges of the same files.
    """
    directory = Path(directory)
    spans: List[Dict] = []
    torn_total = 0
    files = sorted(directory.glob("spans-*.jsonl"))
    for path in files:
        records, torn = read_span_file(path)
        spans.extend(records)
        torn_total += torn
    spans.sort(key=lambda r: (r.get("ts", 0.0), r.get("pid", 0),
                              r.get("seq", 0)))
    return {
        "spans": spans,
        "source_files": len(files),
        "torn_lines": torn_total,
    }


def write_run_log(path: Union[str, Path], merged: Dict[str, Any],
                  **header_extras: Any) -> int:
    """Write a merged stream as the schema-versioned run log.

    One header line (``kind: run-log``) followed by one event per line;
    returns the number of lines written.
    """
    spans = merged["spans"]
    header = {
        "type": "header",
        "schema": SPAN_SCHEMA_VERSION,
        "kind": RUN_LOG_KIND,
        "num_spans": len(spans),
        "source_files": merged.get("source_files", 0),
        "torn_lines": merged.get("torn_lines", 0),
        **header_extras,
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(record, sort_keys=True) for record in spans)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


def read_run_log(
        path: Union[str, Path]) -> Tuple[Dict[str, Any], List[Dict]]:
    """Load a run log; returns ``(header, events)``.

    Raises:
        ValueError: If the header is missing, has the wrong kind, an
            unsupported schema, or the event count disagrees.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    header: Optional[Dict[str, Any]] = None
    events: List[Dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if header is None:
            if (record.get("type") != "header"
                    or record.get("kind") != RUN_LOG_KIND):
                raise ValueError("run log must start with its header")
            if record.get("schema") != SPAN_SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported run-log schema {record.get('schema')!r}")
            header = record
            continue
        events.append(record)
    if header is None:
        raise ValueError("empty run log")
    if header.get("num_spans") != len(events):
        raise ValueError(
            f"run log header says {header.get('num_spans')} events, "
            f"found {len(events)}")
    return header, events


def count_by_name(events: List[Dict], prefix: str = "") -> Dict[str, int]:
    """Event counts keyed by name (optionally filtered by prefix).

    The chaos-integration test uses this to assert that the engine's
    ``sweep/*`` span counts agree exactly with ``SweepResult.stats``.
    """
    counts: Dict[str, int] = {}
    for event in events:
        name = event.get("name", "")
        if prefix and not name.startswith(prefix):
            continue
        counts[name] = counts.get(name, 0) + 1
    return counts
