#!/usr/bin/env python
"""Graph analytics on Gamma via semiring spMspM.

The paper motivates spMspM with graph workloads (BFS, shortest paths,
triangle counting — Sec. 1-2). Gamma's PEs are algebra-agnostic: swapping
the multiply/accumulate units yields GraphBLAS-style semiring products.
This example runs breadth-first search (boolean semiring) and all-pairs
shortest paths (tropical min-plus semiring) on the simulated accelerator,
cross-checking both against classical algorithms.
"""

import numpy as np

from repro.apps import all_pairs_shortest_paths, bfs_levels
from repro.apps.apsp import apsp_reference
from repro.apps.bfs import bfs_reference
from repro.config import GammaConfig
from repro.matrices import generators
from repro.matrices.csr import CsrMatrix


def build_social_graph(n: int, seed: int) -> CsrMatrix:
    base = generators.power_law(n, n, 6.0, seed=seed, max_degree=60)
    dense = (base.to_dense() > 0).astype(float)
    dense = np.maximum(dense, dense.T)  # undirected
    np.fill_diagonal(dense, 0.0)
    return CsrMatrix.from_dense(dense)


def main() -> None:
    config = GammaConfig()

    # --- BFS over the boolean semiring --------------------------------
    adj = build_social_graph(900, seed=21)
    sources = [0, adj.num_rows // 2]
    bfs = bfs_levels(adj, sources, config)
    for i, source in enumerate(sources):
        reference = bfs_reference(adj, source)
        assert np.array_equal(bfs["levels"][i], reference)
    reached = int((bfs["levels"][0] >= 0).sum())
    print(f"BFS on {adj.num_rows}-node social graph: "
          f"{reached} nodes reached from source 0 in "
          f"{int(bfs['levels'][0].max())} hops")
    print(f"  {bfs['iterations']} boolean spMspM rounds, "
          f"{bfs['total_cycles']:,.0f} cycles, "
          f"{bfs['total_traffic'] / 1024:.0f} KB traffic  [verified]")

    # --- APSP over the tropical (min, +) semiring ----------------------
    rng = np.random.default_rng(22)
    n = 40
    dense = rng.uniform(1.0, 9.0, (n, n)) * (rng.random((n, n)) < 0.15)
    np.fill_diagonal(dense, 0.0)
    weights = CsrMatrix.from_dense(dense)
    apsp = all_pairs_shortest_paths(weights, config)
    reference = apsp_reference(weights)
    assert np.allclose(apsp["distances"], reference)
    finite = np.isfinite(apsp["distances"]).mean()
    print(f"\nAPSP on a {n}-node weighted graph: "
          f"{finite:.0%} of pairs connected")
    print(f"  {apsp['iterations']} min-plus squarings, "
          f"{apsp['total_cycles']:,.0f} cycles  [verified vs "
          "Floyd-Warshall]")


if __name__ == "__main__":
    main()
