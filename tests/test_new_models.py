"""Registry/sweep parity for the new execution models.

``gamma-spmv`` (GUST-style SpMV on the Gamma core) and the CPU
matrix-extension baselines (``sparsezipper``, ``rvv``) enter the engine
through the same registry ``run()`` interface as the original designs.
This suite proves the plumbing: direct-call parity, record-field
population, disk-cache round-trips, serial == parallel determinism, the
new sweep axes (mask, operand) in planning and cache keying, and the
lockstep argument — ``gamma-spmv`` on a 1-column operand is
bit-identical to ``gamma``.
"""

import pytest

from repro.baselines import (
    run_gamma_spmv,
    run_rvv_model,
    run_sparsezipper_model,
    vector_operand,
)
from repro.engine import (
    RunRecord,
    SweepPoint,
    available_models,
    diskcache,
    execute_point,
    get_model,
    plan_sweep,
    record_key,
    run_sweep,
    scaled_cpu_config,
    scaled_gamma_config,
)
from repro.matrices import suite

SMALL_MATRICES = ("wiki-Vote", "poisson3Da")

#: The models this PR adds, with the variant their sweep points carry.
NEW_MODELS = (("gamma-spmv", "none"), ("sparsezipper", ""), ("rvv", ""))


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets its own disk cache directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    yield


class TestRegistryParity:
    def test_new_models_registered(self):
        assert set(available_models()) >= {
            "gamma-spmv", "sparsezipper", "rvv"}

    @pytest.mark.parametrize("name", SMALL_MATRICES)
    @pytest.mark.parametrize("model,run_fn", [
        ("sparsezipper", run_sparsezipper_model),
        ("rvv", run_rvv_model),
    ])
    def test_cpu_extension_parity(self, model, run_fn, name):
        a, b = suite.operands(name)
        config = scaled_cpu_config()
        direct = run_fn(a, b, config, c_nnz=1234)
        record = get_model(model).run(a, b, config, matrix=name,
                                      c_nnz=1234)
        assert record.cycles == direct.cycles
        assert record.traffic_bytes == direct.traffic_bytes
        assert record.flops == direct.flops
        assert record.c_nnz == 1234

    @pytest.mark.parametrize("name", SMALL_MATRICES)
    def test_gamma_spmv_parity(self, name):
        a, b = suite.operands(name)
        config = scaled_gamma_config()
        direct = run_gamma_spmv(a, b, config)
        record = get_model("gamma-spmv").run(a, b, config, matrix=name)
        assert record.cycles == direct.cycles
        assert record.traffic_bytes == direct.traffic_bytes
        assert record.compulsory_bytes == direct.compulsory_bytes
        assert record.c_nnz == direct.c_nnz

    def test_gamma_spmv_rejects_variants(self):
        a, b = suite.operands("wiki-Vote")
        with pytest.raises(ValueError, match="variant"):
            get_model("gamma-spmv").run(a, b, variant="full")

    def test_masked_gamma_rejects_variants(self):
        a, b = suite.operands("wiki-Vote")
        with pytest.raises(ValueError, match="variant"):
            get_model("gamma").run(a, b, mask="structural",
                                   variant="full")


class TestSpmvLockstep:
    """On a 1-column operand gamma-spmv *is* gamma, record for record."""

    def test_one_column_operand_matches_gamma(self):
        a, b = suite.operands("wiki-Vote")
        x = vector_operand(b, "sparse-vector")
        assert x.num_cols == 1
        config = scaled_gamma_config()
        spmv = get_model("gamma-spmv").run(a, x, config,
                                           matrix="wiki-Vote")
        gamma = get_model("gamma").run(a, x, config, matrix="wiki-Vote")
        assert spmv.cycles == gamma.cycles
        assert spmv.traffic_bytes == gamma.traffic_bytes
        assert spmv.compulsory_bytes == gamma.compulsory_bytes
        assert spmv.c_nnz == gamma.c_nnz

    def test_dense_vector_materializes_every_coordinate(self):
        _, b = suite.operands("wiki-Vote")
        dense = vector_operand(b, "dense-vector")
        sparse = vector_operand(b, "sparse-vector")
        assert dense.num_cols == sparse.num_cols == 1
        assert dense.nnz == b.num_rows
        assert sparse.nnz <= dense.nnz

    def test_unknown_operand_shape_rejected(self):
        _, b = suite.operands("wiki-Vote")
        with pytest.raises(ValueError, match="operand"):
            vector_operand(b, "tensor")


class TestNewAxisKeys:
    """mask/operand participate in cache keys only where they apply."""

    def test_mask_changes_gamma_key(self):
        base = SweepPoint("gamma", "wiki-Vote")
        masked = SweepPoint("gamma", "wiki-Vote", mask="structural")
        assert record_key(base) != record_key(masked)
        assert record_key(masked) != record_key(
            SweepPoint("gamma", "wiki-Vote", mask="complement"))

    def test_operand_changes_spmv_key(self):
        base = SweepPoint("gamma-spmv", "wiki-Vote")
        dense = SweepPoint("gamma-spmv", "wiki-Vote",
                           operand="dense-vector")
        assert record_key(base) != record_key(dense)

    def test_new_axes_ignored_by_other_models(self):
        # Pre-existing cache entries stay addressable: models the new
        # axes do not apply to key exactly as before.
        assert record_key(SweepPoint("mkl", "wiki-Vote", "")) == \
            record_key(SweepPoint("mkl", "wiki-Vote", "",
                                  mask="structural",
                                  operand="dense-vector"))
        assert record_key(SweepPoint("gamma", "wiki-Vote")) == \
            record_key(SweepPoint("gamma", "wiki-Vote",
                                  operand="dense-vector"))


class TestSweepIntegration:
    @pytest.mark.parametrize("model,variant", NEW_MODELS)
    def test_execute_point_populates_and_caches(self, model, variant):
        point = SweepPoint(model, "wiki-Vote", variant)
        record = execute_point(point)
        assert record.model == model
        assert record.matrix == "wiki-Vote"
        assert record.cycles > 0
        assert sum(record.traffic_bytes.values()) > 0
        assert record.c_nnz > 0
        # Cached round-trip: the stored payload revives to the record.
        stored = diskcache.load(record_key(point))
        assert RunRecord.from_payload(stored) == record
        assert execute_point(point) == record

    def test_masked_point_executes_and_caches(self):
        masked = execute_point(
            SweepPoint("gamma", "wiki-Vote", mask="structural"))
        plain = execute_point(SweepPoint("gamma", "wiki-Vote"))
        # The default mask (A's own pattern) can only shrink the output
        # and the B fetch set.
        assert masked.c_nnz <= plain.c_nnz
        assert masked.traffic_bytes["B"] <= plain.traffic_bytes["B"]
        assert masked != plain
        assert execute_point(
            SweepPoint("gamma", "wiki-Vote", mask="structural")) == masked

    def test_plan_expands_new_axes(self):
        points = plan_sweep(["wiki-Vote"],
                            models=("gamma", "gamma-spmv"),
                            variants=("none",),
                            masks=("none", "structural"))
        assert SweepPoint("gamma", "wiki-Vote", "none") in points
        assert SweepPoint("gamma", "wiki-Vote", "none",
                          mask="structural") in points
        assert SweepPoint("gamma-spmv", "wiki-Vote", "none") in points

    def test_masked_points_do_not_expand_variants(self):
        points = plan_sweep(["wiki-Vote"], models=("gamma",),
                            variants=("none", "full"),
                            masks=("structural",))
        assert len(points) == 1
        assert points[0].variant == "none"
        assert points[0].mask == "structural"

    def test_plan_rejects_unknown_axes(self):
        with pytest.raises(ValueError, match="mask"):
            plan_sweep(["wiki-Vote"], masks=("sometimes",))
        with pytest.raises(ValueError, match="operand"):
            plan_sweep(["wiki-Vote"], operand="tensor")

    def test_parallel_equals_serial(self, tmp_path, monkeypatch):
        """Determinism holds for the new models, payload-for-payload."""
        points = plan_sweep(
            ["wiki-Vote"],
            models=("gamma", "gamma-spmv", "sparsezipper", "rvv"),
            variants=("none",))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "par"))
        parallel = run_sweep(points, workers=2)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ser"))
        serial = run_sweep(points, serial=True)
        assert set(parallel) == set(serial)
        for point in points:
            assert (parallel[point].to_payload()
                    == serial[point].to_payload()), point
