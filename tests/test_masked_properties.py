"""Property-based tests (Hypothesis) for masked SpGEMM invariants.

Four laws, each over randomized operands, masks, and semirings:

* **containment** — the pattern of ``C<M>`` is a subset of M's pattern
  (disjoint from it under a complemented mask);
* **filter identity** — masked == unmasked-then-filtered, the defining
  GraphBLAS identity, bit-exact on the oracle and (tree-order
  tolerance for arithmetic) on the simulator;
* **triangle law** — ``sum((L x L)<L>)`` equals the brute-force
  O(n^3) triangle count;
* **degeneracy** — an empty mask yields an empty structural product and
  the full product under complement; a full mask the reverse.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import random_graph
from repro.apps import apply_mask, masked_spgemm, triangle_count
from repro.apps.triangles import triangle_count_reference
from repro.baselines.spgemm_ref import spgemm_semiring
from repro.config import GammaConfig
from repro.matrices.csr import CsrMatrix
from repro.semiring import ARITHMETIC, BOOLEAN, TROPICAL_MIN

SMALL_CONFIG = GammaConfig(
    num_pes=4, radix=4, fibercache_bytes=4 * 1024,
    fibercache_ways=4, fibercache_banks=4,
)

SEMIRINGS = {"arithmetic": ARITHMETIC, "boolean": BOOLEAN,
             "tropical": TROPICAL_MIN}

SETTINGS = settings(max_examples=20, deadline=None)


def build_pair(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(2, 18))
    k = int(rng.integers(2, 18))
    n = int(rng.integers(2, 18))
    density = float(rng.choice([0.1, 0.25, 0.5]))
    a = (rng.random((m, k)) < density) * rng.uniform(0.1, 5.0, (m, k))
    b = (rng.random((k, n)) < density) * rng.uniform(0.1, 5.0, (k, n))
    return CsrMatrix.from_dense(a), CsrMatrix.from_dense(b)


def build_mask(seed, shape):
    rng = np.random.default_rng(seed + 104729)
    density = float(rng.choice([0.05, 0.2, 0.5, 0.9]))
    return CsrMatrix.from_dense(
        (rng.random(shape) < density).astype(float))


def pattern(matrix):
    return {(row, int(col)) for row in range(matrix.num_rows)
            for col in matrix.row(row).coords}


seeds = st.integers(min_value=0, max_value=10_000)
semiring_names = st.sampled_from(sorted(SEMIRINGS))
complements = st.booleans()


class TestContainment:
    @SETTINGS
    @given(seed=seeds, name=semiring_names)
    def test_structural_output_within_mask(self, seed, name):
        a, b = build_pair(seed)
        mask = build_mask(seed, (a.num_rows, b.num_cols))
        result = masked_spgemm(a, b, mask, semiring=SEMIRINGS[name],
                               config=SMALL_CONFIG)
        assert pattern(result.output) <= pattern(mask)

    @SETTINGS
    @given(seed=seeds, name=semiring_names)
    def test_complement_output_disjoint_from_mask(self, seed, name):
        a, b = build_pair(seed)
        mask = build_mask(seed, (a.num_rows, b.num_cols))
        result = masked_spgemm(a, b, mask, complement=True,
                               semiring=SEMIRINGS[name],
                               config=SMALL_CONFIG)
        assert not (pattern(result.output) & pattern(mask))


class TestFilterIdentity:
    """masked == unmasked-then-filtered, under every semiring."""

    @SETTINGS
    @given(seed=seeds, name=semiring_names, complement=complements)
    def test_oracle_identity_bit_exact(self, seed, name, complement):
        a, b = build_pair(seed)
        semiring = SEMIRINGS[name]
        mask = build_mask(seed, (a.num_rows, b.num_cols))
        masked = spgemm_semiring(a, b, semiring, mask=mask,
                                 complement=complement)
        filtered = apply_mask(spgemm_semiring(a, b, semiring), mask,
                              complement=complement)
        assert masked.coords.tolist() == filtered.coords.tolist()
        assert masked.values.tolist() == filtered.values.tolist()

    @SETTINGS
    @given(seed=seeds, name=semiring_names, complement=complements)
    def test_simulator_matches_oracle(self, seed, name, complement):
        a, b = build_pair(seed)
        semiring = SEMIRINGS[name]
        mask = build_mask(seed, (a.num_rows, b.num_cols))
        expected = spgemm_semiring(a, b, semiring, mask=mask,
                                   complement=complement)
        result = masked_spgemm(a, b, mask, complement=complement,
                               semiring=semiring, config=SMALL_CONFIG)
        assert result.output.coords.tolist() == expected.coords.tolist()
        if name == "arithmetic":
            # Tree-order float summation: tolerance, not bit-equality.
            np.testing.assert_allclose(
                result.output.values, expected.values, rtol=1e-9)
        else:
            assert (result.output.values.tolist()
                    == expected.values.tolist())


class TestTriangleLaw:
    @SETTINGS
    @given(seed=seeds)
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 16))
        adjacency = random_graph(n, 2.5, seed=seed, symmetric=True)
        result = triangle_count(adjacency, config=SMALL_CONFIG)
        assert result["triangles"] == triangle_count_reference(adjacency)


class TestDegeneracy:
    @SETTINGS
    @given(seed=seeds, name=semiring_names)
    def test_empty_mask(self, seed, name):
        a, b = build_pair(seed)
        semiring = SEMIRINGS[name]
        empty = CsrMatrix.from_dense(
            np.zeros((a.num_rows, b.num_cols)))
        structural = masked_spgemm(a, b, empty, semiring=semiring,
                                   config=SMALL_CONFIG)
        assert structural.output.nnz == 0
        assert structural.c_nnz == 0
        complement = masked_spgemm(a, b, empty, complement=True,
                                   semiring=semiring, config=SMALL_CONFIG)
        full = spgemm_semiring(a, b, semiring)
        assert pattern(complement.output) == pattern(full)

    @SETTINGS
    @given(seed=seeds, name=semiring_names)
    def test_full_mask(self, seed, name):
        a, b = build_pair(seed)
        semiring = SEMIRINGS[name]
        ones = CsrMatrix.from_dense(
            np.ones((a.num_rows, b.num_cols)))
        structural = masked_spgemm(a, b, ones, semiring=semiring,
                                   config=SMALL_CONFIG)
        full = spgemm_semiring(a, b, semiring)
        assert pattern(structural.output) == pattern(full)
        complement = masked_spgemm(a, b, ones, complement=True,
                                   semiring=semiring, config=SMALL_CONFIG)
        assert complement.output.nnz == 0
