"""Traffic accounting shared across the simulator and baseline models."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import ELEMENT_BYTES, OFFSET_BYTES
from repro.matrices.csr import CsrMatrix


def compulsory_traffic(a: CsrMatrix, b: CsrMatrix,
                       c_nnz: int) -> Dict[str, int]:
    """The minimum traffic any design incurs (paper Sec. 6.1).

    With unbounded on-chip storage, a run still reads A once, reads the
    rows of B that A references once, and writes C once.
    """
    if len(a.coords):
        touched = np.unique(a.coords)
        b_lengths = b.row_lengths()
        b_bytes = (int(b_lengths[touched].sum()) * ELEMENT_BYTES
                   + len(touched) * OFFSET_BYTES)
    else:
        b_bytes = 0
    return {
        "A": a.nnz * ELEMENT_BYTES + a.num_rows * OFFSET_BYTES,
        "B": b_bytes,
        "C": c_nnz * ELEMENT_BYTES + a.num_rows * OFFSET_BYTES,
    }


def normalize_breakdown(traffic: Dict[str, int],
                        compulsory: Dict[str, int]) -> Dict[str, float]:
    """Per-category traffic over total compulsory bytes (figure y-axes)."""
    total = max(1, sum(compulsory.values()))
    return {category: count / total for category, count in traffic.items()}


def noncompulsory_bytes(traffic: Dict[str, int],
                        compulsory: Dict[str, int]) -> int:
    """Traffic in excess of the compulsory floor."""
    return max(0, sum(traffic.values()) - sum(compulsory.values()))
