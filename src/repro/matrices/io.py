"""Matrix Market (.mtx) reader/writer, implemented from scratch.

Supports the coordinate format with real/integer/pattern fields and
general/symmetric symmetry — enough to round-trip every matrix this repo
produces and to ingest real SuiteSparse files when available offline.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.matrices.builder import CooBuilder
from repro.matrices.csr import CsrMatrix

_HEADER_PREFIX = "%%MatrixMarket"
_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric"}


class MatrixMarketError(ValueError):
    """Raised for malformed or unsupported Matrix Market content."""


def read_matrix_market(source: Union[str, Path, TextIO]) -> CsrMatrix:
    """Parse a Matrix Market file into a CsrMatrix.

    Args:
        source: Path to a .mtx file, or an open text stream.

    Raises:
        MatrixMarketError: On malformed input or unsupported variants
            (only sparse coordinate real/integer/pattern matrices with
            general or symmetric symmetry are supported).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as stream:
            return read_matrix_market(stream)
    return _parse(source)


def _parse(stream: TextIO) -> CsrMatrix:
    header = stream.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise MatrixMarketError(f"missing {_HEADER_PREFIX} header")
    tokens = header.strip().split()
    if len(tokens) != 5:
        raise MatrixMarketError(f"malformed header: {header!r}")
    _, obj, fmt, field, symmetry = (t.lower() for t in tokens)
    if obj != "matrix" or fmt != "coordinate":
        raise MatrixMarketError(
            f"only coordinate matrices supported, got {obj}/{fmt}"
        )
    if field not in _SUPPORTED_FIELDS:
        raise MatrixMarketError(f"unsupported field type {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

    size_line = _next_data_line(stream)
    if size_line is None:
        raise MatrixMarketError("missing size line")
    parts = size_line.split()
    if len(parts) != 3:
        raise MatrixMarketError(f"malformed size line: {size_line!r}")
    num_rows, num_cols, nnz = (int(p) for p in parts)

    builder = CooBuilder(num_rows, num_cols)
    entries_read = 0
    while entries_read < nnz:
        line = _next_data_line(stream)
        if line is None:
            raise MatrixMarketError(
                f"expected {nnz} entries, found {entries_read}"
            )
        fields = line.split()
        if field == "pattern":
            if len(fields) != 2:
                raise MatrixMarketError(f"malformed pattern entry: {line!r}")
            row, col = int(fields[0]) - 1, int(fields[1]) - 1
            value = 1.0
        else:
            if len(fields) != 3:
                raise MatrixMarketError(f"malformed entry: {line!r}")
            row, col = int(fields[0]) - 1, int(fields[1]) - 1
            value = float(fields[2])
        builder.add(row, col, value)
        if symmetry == "symmetric" and row != col:
            builder.add(col, row, value)
        entries_read += 1
    return builder.build(drop_zeros=False)


def _next_data_line(stream: TextIO):
    """Next non-comment, non-blank line, or None at EOF."""
    for line in stream:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            return stripped
    return None


def write_matrix_market(
    matrix: CsrMatrix, destination: Union[str, Path, TextIO],
    comment: str = "",
) -> None:
    """Write a CsrMatrix in coordinate/real/general Matrix Market format."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as stream:
            write_matrix_market(matrix, stream, comment=comment)
        return
    stream = destination
    stream.write(f"{_HEADER_PREFIX} matrix coordinate real general\n")
    for line in comment.splitlines():
        stream.write(f"% {line}\n")
    stream.write(f"{matrix.num_rows} {matrix.num_cols} {matrix.nnz}\n")
    for row in range(matrix.num_rows):
        start, end = matrix.offsets[row], matrix.offsets[row + 1]
        for idx in range(start, end):
            stream.write(
                f"{row + 1} {matrix.coords[idx] + 1} "
                f"{matrix.values[idx]:.17g}\n"
            )


def matrix_market_string(matrix: CsrMatrix, comment: str = "") -> str:
    """Serialize to an in-memory Matrix Market string."""
    buffer = io.StringIO()
    write_matrix_market(matrix, buffer, comment=comment)
    return buffer.getvalue()


def roundtrip_equal(a: CsrMatrix, b: CsrMatrix, tol: float = 1e-12) -> bool:
    """Structural + numeric equality up to a tolerance (IO test helper)."""
    return bool(
        a.shape == b.shape
        and np.array_equal(a.offsets, b.offsets)
        and np.array_equal(a.coords, b.coords)
        and np.allclose(a.values, b.values, atol=tol, rtol=0)
    )
