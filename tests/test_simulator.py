"""Integration tests: the Gamma simulator end to end."""

import numpy as np
import pytest

from repro.config import GammaConfig, PreprocessConfig
from repro.core import GammaSimulator, WorkProgram, multiply
from repro.core.dram import MemoryInterface, TrafficCounter
from repro.matrices import generators
from repro.matrices.csr import CsrMatrix
from repro.preprocessing import preprocess


def scipy_product(a, b):
    return (a.to_scipy() @ b.to_scipy()).toarray()


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_square(self, seed):
        a = generators.uniform_random(60, 60, 4.0, seed=seed)
        b = generators.uniform_random(60, 60, 5.0, seed=seed + 100)
        res = multiply(a, b)
        np.testing.assert_allclose(
            res.output.to_dense(), scipy_product(a, b), atol=1e-9)

    def test_rectangular(self):
        a = generators.uniform_random(40, 70, 3.0, seed=1)
        b = generators.uniform_random(70, 25, 4.0, seed=2)
        res = multiply(a, b)
        assert res.output.shape == (40, 25)
        np.testing.assert_allclose(
            res.output.to_dense(), scipy_product(a, b), atol=1e-9)

    def test_long_rows_use_task_trees(self):
        a = generators.mixed_density(
            120, 120, 5.0, dense_row_fraction=0.1, dense_row_nnz=100,
            seed=3)
        config = GammaConfig(radix=8)
        res = GammaSimulator(config).run(a, a)
        assert res.num_partial_fibers > 0
        np.testing.assert_allclose(
            res.output.to_dense(), scipy_product(a, a), atol=1e-9)

    def test_empty_rows(self):
        a = CsrMatrix.from_dense(np.array([
            [0.0, 0.0], [1.0, 2.0],
        ]))
        res = multiply(a, a)
        np.testing.assert_allclose(
            res.output.to_dense(), scipy_product(a, a))

    def test_empty_matrix(self):
        a = CsrMatrix.from_rows([], 10)
        b = generators.uniform_random(10, 10, 2.0, seed=4)
        res = multiply(a, b)
        assert res.output.nnz == 0
        assert res.cycles >= 0

    def test_identity(self):
        eye = CsrMatrix.from_dense(np.eye(30))
        b = generators.uniform_random(30, 30, 3.0, seed=5)
        res = multiply(eye, b)
        np.testing.assert_allclose(res.output.to_dense(), b.to_dense())

    def test_detailed_pe_model_agrees(self):
        a = generators.uniform_random(30, 30, 3.0, seed=6)
        fast = GammaSimulator(GammaConfig()).run(a, a)
        detailed = GammaSimulator(
            GammaConfig(detailed_pe_model=True)).run(a, a)
        np.testing.assert_allclose(
            fast.output.to_dense(), detailed.output.to_dense(), atol=1e-12)
        assert fast.cycles == detailed.cycles
        assert fast.flops == detailed.flops

    def test_preprocessed_program_same_result(self):
        a = generators.mixed_density(
            100, 100, 8.0, dense_row_fraction=0.05, dense_row_nnz=80,
            seed=7)
        config = GammaConfig(radix=8, fibercache_bytes=16 * 1024)
        program = preprocess(a, a, config, PreprocessConfig.full())
        res = GammaSimulator(config).run(a, a, program=program)
        np.testing.assert_allclose(
            res.output.to_dense(), scipy_product(a, a), atol=1e-9)

    def test_dimension_mismatch(self):
        a = generators.uniform_random(5, 6, 2.0, seed=8)
        b = generators.uniform_random(7, 5, 2.0, seed=9)
        with pytest.raises(ValueError, match="inner dimensions"):
            multiply(a, b)


class TestTrafficAccounting:
    def test_small_matrix_is_compulsory(self):
        """Everything fits on chip: traffic must equal the compulsory floor
        (up to line-granularity rounding on B)."""
        a = generators.uniform_random(100, 100, 5.0, seed=10)
        res = multiply(a, a)
        assert res.normalized_traffic == pytest.approx(1.0, abs=0.1)
        assert res.traffic_bytes["partial_read"] == 0
        assert res.traffic_bytes["partial_write"] == 0

    def test_a_traffic_matches_footprint(self):
        a = generators.uniform_random(80, 80, 4.0, seed=11)
        res = multiply(a, a)
        assert res.traffic_bytes["A"] >= a.nnz * 12
        assert res.traffic_bytes["A"] <= a.nnz * 12 + 4 * a.num_rows + 64

    def test_c_traffic_matches_output(self):
        a = generators.uniform_random(80, 80, 4.0, seed=12)
        res = multiply(a, a)
        assert res.traffic_bytes["C"] >= res.output.nnz * 12

    def test_small_cache_increases_b_traffic(self):
        a = generators.uniform_random(400, 400, 8.0, seed=13)
        big = GammaSimulator(
            GammaConfig(fibercache_bytes=1024 * 1024),
            keep_output=False).run(a, a)
        small = GammaSimulator(
            GammaConfig(fibercache_bytes=16 * 1024),
            keep_output=False).run(a, a)
        assert small.traffic_bytes["B"] > big.traffic_bytes["B"]
        # Compulsory floors are identical.
        assert small.compulsory_bytes == big.compulsory_bytes

    def test_compulsory_counts_touched_b_only(self):
        # A only references B rows 0 and 1.
        a = CsrMatrix.from_dense(
            np.array([[1.0, 2.0, 0.0, 0.0]] * 4))
        b = generators.uniform_random(4, 10, 3.0, seed=14)
        res = multiply(a, b)
        touched_bytes = sum(b.row_nnz(k) for k in (0, 1)) * 12
        assert res.compulsory_bytes["B"] == touched_bytes + 2 * 4

    def test_traffic_conservation(self):
        """Partial writes and reads must balance (spilled = read back)."""
        a = generators.mixed_density(
            200, 200, 6.0, dense_row_fraction=0.1, dense_row_nnz=150,
            seed=15)
        res = GammaSimulator(
            GammaConfig(radix=8, fibercache_bytes=8 * 1024),
            keep_output=False).run(a, a)
        assert (res.traffic_bytes["partial_read"]
                <= res.traffic_bytes["partial_write"] * 1.5 + 4096)


class TestTiming:
    def test_cycles_at_least_bandwidth_bound(self):
        a = generators.uniform_random(300, 300, 6.0, seed=16)
        res = GammaSimulator(GammaConfig(), keep_output=False).run(a, a)
        floor = res.total_traffic / res.config.bytes_per_cycle
        assert res.cycles >= floor * 0.999

    def test_cycles_at_least_compute_bound(self):
        a = generators.uniform_random(300, 300, 6.0, seed=17)
        config = GammaConfig(num_pes=2)
        res = GammaSimulator(config, keep_output=False).run(a, a)
        assert res.cycles >= res.flops / config.num_pes

    def test_more_pes_never_slower(self):
        a = generators.uniform_random(400, 400, 10.0, seed=18)
        cycles = []
        for pes in (2, 8, 32):
            res = GammaSimulator(
                GammaConfig(num_pes=pes), keep_output=False).run(a, a)
            cycles.append(res.cycles)
        assert cycles[0] >= cycles[1] >= cycles[2] * 0.95

    def test_bandwidth_utilization_bounded(self):
        a = generators.uniform_random(200, 200, 5.0, seed=19)
        res = GammaSimulator(GammaConfig(), keep_output=False).run(a, a)
        assert 0.0 < res.bandwidth_utilization <= 1.0
        assert 0.0 < res.pe_utilization <= 1.0

    def test_flops_match_analytic(self):
        from repro.matrices.stats import flops

        a = generators.uniform_random(150, 150, 4.0, seed=20)
        res = multiply(a, a)
        assert res.flops == flops(a, a)

    def test_result_derived_metrics(self):
        a = generators.uniform_random(100, 100, 4.0, seed=21)
        res = multiply(a, a)
        assert res.gflops > 0
        assert res.operational_intensity > 0
        assert res.runtime_seconds == pytest.approx(
            res.cycles / res.config.frequency_hz)
        assert res.noncompulsory_bytes >= 0


class TestSchedulingModes:
    def test_single_pe_mode_correct(self):
        a = generators.mixed_density(
            150, 150, 6.0, dense_row_fraction=0.08, dense_row_nnz=100,
            seed=22)
        config = GammaConfig(radix=8)
        multi = GammaSimulator(config, multi_pe_scheduling=True).run(a, a)
        single = GammaSimulator(config, multi_pe_scheduling=False).run(a, a)
        np.testing.assert_allclose(
            multi.output.to_dense(), single.output.to_dense(), atol=1e-9)

    def test_multi_pe_not_slower_with_long_rows(self):
        a = generators.mixed_density(
            150, 150, 6.0, dense_row_fraction=0.2, dense_row_nnz=120,
            seed=23)
        config = GammaConfig(radix=8, num_pes=8,
                             fibercache_bytes=16 * 1024)
        multi = GammaSimulator(config, multi_pe_scheduling=True,
                               keep_output=False).run(a, a)
        single = GammaSimulator(config, multi_pe_scheduling=False,
                                keep_output=False).run(a, a)
        assert multi.cycles <= single.cycles * 1.05


class TestMemoryInterface:
    def test_traffic_counter(self):
        counter = TrafficCounter()
        counter.add("A", 100)
        counter.add("B", 50)
        assert counter.total_bytes == 150
        assert counter.normalized(300) == pytest.approx(
            {"A": 1 / 3, "B": 1 / 6, "C": 0, "partial_read": 0,
             "partial_write": 0})

    def test_traffic_counter_validation(self):
        counter = TrafficCounter()
        with pytest.raises(ValueError, match="category"):
            counter.add("bogus", 1)
        with pytest.raises(ValueError, match="negative"):
            counter.add("A", -1)
        with pytest.raises(ValueError, match="positive"):
            counter.normalized(0)

    def test_serial_server_saturates_at_bandwidth(self):
        mem = MemoryInterface(bytes_per_cycle=64, latency_cycles=0)
        finish = 0.0
        for _ in range(10):
            finish = mem.request("B", 640, now=0.0)
        assert mem.busy_until == pytest.approx(100.0)
        assert mem.bandwidth_utilization(100.0) == pytest.approx(1.0)

    def test_latency_hidden_by_decoupling(self):
        """Decoupled fetch hides access latency; only bandwidth gates."""
        mem = MemoryInterface(bytes_per_cycle=64, latency_cycles=80)
        finish = mem.request("B", 64, now=0.0)
        assert finish == pytest.approx(1.0)

    def test_zero_byte_request(self):
        mem = MemoryInterface(bytes_per_cycle=64)
        assert mem.request("B", 0, now=5.0) == 5.0
        assert mem.traffic.total_bytes == 0

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError, match="bandwidth"):
            MemoryInterface(bytes_per_cycle=0)
