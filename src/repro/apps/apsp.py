"""All-pairs shortest paths by tropical matrix squaring (paper Sec. 2, [7]).

Over the (min, +) semiring, the k-th power of the weighted adjacency
matrix holds shortest path lengths using at most k hops; repeated squaring
converges in ceil(log2(n)) spMspM operations, each run on the simulated
Gamma.

Note: absent entries mean "no path" (the semiring zero, +inf); the
diagonal is forced to 0 (the semiring one) before iterating.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.config import GammaConfig
from repro.core import GammaSimulator
from repro.matrices.csr import CsrMatrix
from repro.matrices.fiber import Fiber
from repro.semiring import TROPICAL_MIN


def _with_zero_diagonal(matrix: CsrMatrix) -> CsrMatrix:
    rows = []
    for row in range(matrix.num_rows):
        fiber = matrix.row(row)
        if row in fiber.coords:
            position = int(np.searchsorted(fiber.coords, row))
            values = fiber.values.copy()
            values[position] = 0.0
            rows.append(Fiber(fiber.coords, values, check=False))
        else:
            coords = np.sort(np.append(fiber.coords, row))
            position = int(np.searchsorted(coords, row))
            values = np.insert(fiber.values, position, 0.0)
            rows.append(Fiber(coords, values, check=False))
    return CsrMatrix.from_rows(rows, matrix.num_cols)


def all_pairs_shortest_paths(
    weights: CsrMatrix,
    config: Optional[GammaConfig] = None,
) -> Dict:
    """APSP by min-plus repeated squaring on Gamma.

    Args:
        weights: Square matrix of non-negative edge weights (absent = no
            edge).

    Returns:
        dict with:
        * ``distances`` — dense (n, n) array, inf = unreachable;
        * ``iterations`` — squarings performed;
        * ``total_cycles`` / ``total_traffic`` — accelerator cost.
    """
    if weights.num_rows != weights.num_cols:
        raise ValueError("weight matrix must be square")
    if weights.nnz and weights.values.min() < 0:
        raise ValueError("negative edge weights are not supported")

    simulator = GammaSimulator(config or GammaConfig(),
                               semiring=TROPICAL_MIN)
    current = _with_zero_diagonal(weights)
    iterations = 0
    total_cycles = 0.0
    total_traffic = 0
    hops = 1
    while hops < weights.num_rows:
        result = simulator.run(current, current)
        iterations += 1
        total_cycles += result.cycles
        total_traffic += result.total_traffic
        squared = result.output
        if squared == current:
            current = squared
            break
        current = squared
        hops *= 2

    distances = np.full(weights.shape, np.inf)
    for row in range(current.num_rows):
        fiber = current.row(row)
        distances[row, fiber.coords] = fiber.values
    return {
        "distances": distances,
        "iterations": iterations,
        "total_cycles": total_cycles,
        "total_traffic": total_traffic,
    }


def apsp_reference(weights: CsrMatrix) -> np.ndarray:
    """Floyd-Warshall cross-check."""
    n = weights.num_rows
    dist = np.full((n, n), np.inf)
    np.fill_diagonal(dist, 0.0)
    for row in range(n):
        fiber = weights.row(row)
        for coord, value in fiber:
            dist[row, coord] = min(dist[row, coord], value)
    for k in range(n):
        dist = np.minimum(dist, dist[:, k:k + 1] + dist[k:k + 1, :])
    return dist
