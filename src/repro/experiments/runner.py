"""Experiment runner: a thin facade over the engine's registry + sweeps.

Experiments run on a 1/64-scale Gamma (see DESIGN.md and
:mod:`repro.engine.defaults`). The runner translates the figures' calls
(``gamma(name, variant, config)``, ``baseline(model, name)``) into
:class:`~repro.engine.sweep.SweepPoint` evaluations, memoizes the
resulting :class:`~repro.engine.record.RunRecord` per point in process,
and shares results across processes through the engine's disk cache —
so a parallel ``python -m repro sweep`` pre-warm makes every subsequent
serial figure run a pure cache read.

Model dispatch, configuration defaults, preprocessing-program caching,
and (de)serialization all live in :mod:`repro.engine`; keep this module
free of per-model logic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.traffic import compulsory_traffic
from repro.config import GammaConfig
from repro.engine import (
    MODEL_SCALE,
    PREPROCESS_VARIANTS,
    SCALED_FIBERCACHE_BYTES,
    TILE_THRESHOLD_BYTES,
    RunRecord,
    SweepPoint,
    available_models,
    execute_point,
    preprocess_options,
    run_sweep,
    scaled_cpu_config,
    scaled_gamma_config,
)
from repro.matrices import suite

__all__ = [
    "MODEL_SCALE",
    "PREPROCESS_VARIANTS",
    "RUNNER",
    "SCALED_FIBERCACHE_BYTES",
    "TILE_THRESHOLD_BYTES",
    "ExperimentRunner",
    "preprocess_options",
    "scaled_cpu_config",
    "scaled_gamma_config",
]


class ExperimentRunner:
    """Runs and memoizes every model the figures need."""

    def __init__(self) -> None:
        self._records: Dict[SweepPoint, RunRecord] = {}

    # -- engine plumbing ------------------------------------------------
    def records(self) -> Dict[SweepPoint, RunRecord]:
        """Snapshot of every point this runner has evaluated.

        The figure pipeline fingerprints its inputs from exactly this
        mapping (point label x record fingerprint), which is why it
        runs on a fresh runner instead of the shared module one.
        """
        return dict(self._records)

    def run_point(self, point: SweepPoint) -> RunRecord:
        """Evaluate one sweep point (in-memory memo, then disk cache)."""
        if point not in self._records:
            self._records[point] = execute_point(point)
        return self._records[point]

    def sweep(self, points: Iterable[SweepPoint],
              workers: Optional[int] = None,
              serial: bool = False,
              collect_metrics: bool = False) -> List[RunRecord]:
        """Evaluate many points, parallelizing disk-cache misses.

        The figures need every record, so a sweep that quarantined any
        point (see :class:`~repro.engine.sweep.SweepPolicy`) raises here
        with the failure list instead of handing back partial data.
        ``collect_metrics`` asks gamma points for their cycle-level
        MetricsRegistry blob (see :func:`repro.engine.sweep.run_sweep`).
        """
        points = list(points)
        results = run_sweep(points, workers=workers, serial=serial,
                            collect_metrics=collect_metrics)
        if results.quarantined:
            detail = "; ".join(
                f"{f.point.label()}: {f.reason} after {f.attempts} "
                f"attempts ({f.error})"
                for f in results.quarantined.values())
            raise RuntimeError(
                f"{len(results.quarantined)} sweep point(s) failed "
                f"permanently — figures need complete data: {detail}")
        self._records.update(results)
        return [results[point] for point in dict.fromkeys(points)]

    # -- Gamma ----------------------------------------------------------
    def gamma(
        self,
        name: str,
        preprocess_variant: str = "none",
        config: Optional[GammaConfig] = None,
        multi_pe: bool = True,
    ) -> RunRecord:
        """Simulate Gamma on a suite matrix (cached in memory and on disk)."""
        return self.run_point(SweepPoint(
            "gamma", name, preprocess_variant, config, multi_pe))

    def spmv(self, name: str, operand: str = "sparse-vector",
             config: Optional[GammaConfig] = None) -> RunRecord:
        """Run the GUST-style ``gamma-spmv`` model on a suite matrix.

        ``operand`` picks the vector shape (see
        :data:`repro.baselines.spmv.OPERAND_SHAPES`); SpMV points take
        no preprocessing variant.
        """
        return self.run_point(SweepPoint(
            "gamma-spmv", name, "none", config, operand=operand))

    # -- output size (needed by the traffic models) ---------------------
    def c_nnz(self, name: str) -> int:
        return self.gamma(name).c_nnz

    def compulsory(self, name: str) -> Dict[str, int]:
        a, b = suite.operands(name)
        return compulsory_traffic(a, b, self.c_nnz(name))

    def compulsory_total(self, name: str) -> int:
        return sum(self.compulsory(name).values())

    # -- baselines ------------------------------------------------------
    def baseline(self, model: str, name: str) -> RunRecord:
        """Run a named baseline model on a suite matrix (cached)."""
        from repro.engine.registry import GAMMA_MODELS
        if model in GAMMA_MODELS or model not in available_models():
            raise ValueError(
                f"unknown baseline model {model!r}; known: "
                f"{[m for m in available_models() if m not in GAMMA_MODELS]}")
        return self.run_point(SweepPoint(model, name, ""))

    def speedup_over_mkl(self, name: str, runtime_seconds: float) -> float:
        mkl = self.baseline("mkl", name)
        return mkl.runtime_seconds / runtime_seconds


#: Shared module-level runner so every figure reuses the same sweeps.
RUNNER = ExperimentRunner()
