"""Indexed max-priority queue with incKey/decKey, for Algorithm 1.

The affinity-based reordering algorithm (paper Sec. 4.1) needs a priority
queue over candidate rows supporting increment, decrement, removal, and
pop-max — a classic addressable binary heap, implemented here from scratch.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple


class BucketQueue:
    """Max-priority queue over small non-negative integer keys.

    incKey/decKey move items between adjacent buckets in O(1); pop-max
    scans down from the current maximum. This is the right structure for
    Algorithm 1, whose keys are affinity *counts* updated by +-1 — it
    replaces O(log n) heap sifts with dict operations.

    Iteration order within a bucket is insertion order, so results are
    deterministic.
    """

    def __init__(self) -> None:
        self._buckets: List[Dict[Hashable, None]] = [dict()]
        self._keys: Dict[Hashable, int] = {}
        self._max_key = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._keys

    def insert(self, item: Hashable, key: int = 0) -> None:
        if item in self._keys:
            raise KeyError(f"{item!r} already in queue")
        if key < 0:
            raise ValueError("keys must be non-negative")
        self._ensure_bucket(key)
        self._buckets[key][item] = None
        self._keys[item] = key
        if key > self._max_key:
            self._max_key = key

    def key_of(self, item: Hashable) -> int:
        return self._keys[item]

    def _ensure_bucket(self, key: int) -> None:
        while len(self._buckets) <= key:
            self._buckets.append(dict())

    def inc_key(self, item: Hashable, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("inc_key requires a non-negative delta")
        key = self._keys[item]
        new_key = key + delta
        del self._buckets[key][item]
        self._ensure_bucket(new_key)
        self._buckets[new_key][item] = None
        self._keys[item] = new_key
        if new_key > self._max_key:
            self._max_key = new_key

    def dec_key(self, item: Hashable, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("dec_key requires a non-negative delta")
        key = self._keys[item]
        new_key = key - delta
        if new_key < 0:
            raise ValueError(f"key of {item!r} would become negative")
        del self._buckets[key][item]
        self._buckets[new_key][item] = None
        self._keys[item] = new_key

    def remove(self, item: Hashable) -> None:
        key = self._keys.pop(item)
        del self._buckets[key][item]

    def pop(self) -> Hashable:
        """Remove and return the earliest-inserted item of maximum key."""
        if not self._keys:
            raise IndexError("pop from an empty queue")
        while not self._buckets[self._max_key]:
            self._max_key -= 1
        bucket = self._buckets[self._max_key]
        item = next(iter(bucket))
        del bucket[item]
        del self._keys[item]
        return item

    def peek(self) -> Tuple[Hashable, int]:
        if not self._keys:
            raise IndexError("peek into an empty queue")
        max_key = self._max_key
        while not self._buckets[max_key]:
            max_key -= 1
        return next(iter(self._buckets[max_key])), max_key


class IndexedMaxHeap:
    """Max-heap keyed by arbitrary hashable items with addressable updates.

    Ties break toward the item inserted earliest, making the reordering
    deterministic.
    """

    def __init__(self) -> None:
        self._keys: List[float] = []
        self._items: List[Hashable] = []
        self._ages: List[int] = []
        self._pos: Dict[Hashable, int] = {}
        self._age_counter = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._pos

    def insert(self, item: Hashable, key: float = 0.0) -> None:
        """Add an item; raises if already present."""
        if item in self._pos:
            raise KeyError(f"{item!r} already in heap")
        self._keys.append(key)
        self._items.append(item)
        self._ages.append(self._age_counter)
        self._age_counter += 1
        index = len(self._items) - 1
        self._pos[item] = index
        self._sift_up(index)

    def key_of(self, item: Hashable) -> float:
        return self._keys[self._pos[item]]

    def inc_key(self, item: Hashable, delta: float = 1.0) -> None:
        """Increase an item's key (Algorithm 1's incKey)."""
        if delta < 0:
            raise ValueError("inc_key requires a non-negative delta")
        index = self._pos[item]
        self._keys[index] += delta
        self._sift_up(index)

    def dec_key(self, item: Hashable, delta: float = 1.0) -> None:
        """Decrease an item's key (Algorithm 1's decKey)."""
        if delta < 0:
            raise ValueError("dec_key requires a non-negative delta")
        index = self._pos[item]
        self._keys[index] -= delta
        self._sift_down(index)

    def remove(self, item: Hashable) -> None:
        """Delete an item from the heap."""
        index = self._pos[item]
        self._swap(index, len(self._items) - 1)
        self._drop_last()
        if index < len(self._items):
            self._sift_down(index)
            self._sift_up(index)

    def peek(self) -> Tuple[Hashable, float]:
        """The max item and its key, without removing it."""
        if not self._items:
            raise IndexError("peek into an empty heap")
        return self._items[0], self._keys[0]

    def pop(self) -> Hashable:
        """Remove and return the item with the maximum key."""
        if not self._items:
            raise IndexError("pop from an empty heap")
        item = self._items[0]
        self._swap(0, len(self._items) - 1)
        self._drop_last()
        if self._items:
            self._sift_down(0)
        return item

    # ------------------------------------------------------------------
    def _drop_last(self) -> None:
        item = self._items.pop()
        self._keys.pop()
        self._ages.pop()
        del self._pos[item]

    def _precedes(self, i: int, j: int) -> bool:
        """True when slot i should sit above slot j."""
        if self._keys[i] != self._keys[j]:
            return self._keys[i] > self._keys[j]
        return self._ages[i] < self._ages[j]

    def _swap(self, i: int, j: int) -> None:
        self._keys[i], self._keys[j] = self._keys[j], self._keys[i]
        self._items[i], self._items[j] = self._items[j], self._items[i]
        self._ages[i], self._ages[j] = self._ages[j], self._ages[i]
        self._pos[self._items[i]] = i
        self._pos[self._items[j]] = j

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) // 2
            if self._precedes(index, parent):
                self._swap(index, parent)
                index = parent
            else:
                return

    def _sift_down(self, index: int) -> None:
        size = len(self._items)
        while True:
            left = 2 * index + 1
            right = left + 1
            best = index
            if left < size and self._precedes(left, best):
                best = left
            if right < size and self._precedes(right, best):
                best = right
            if best == index:
                return
            self._swap(index, best)
            index = best

    def validate(self) -> None:
        """Check heap invariants (test helper)."""
        for index in range(1, len(self._items)):
            parent = (index - 1) // 2
            if self._precedes(index, parent):
                raise AssertionError(
                    f"heap property violated at {index} vs parent {parent}"
                )
        for item, index in self._pos.items():
            if self._items[index] != item:
                raise AssertionError(f"position map stale for {item!r}")
