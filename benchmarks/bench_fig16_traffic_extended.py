"""Fig. 16: normalized traffic on the extended set.

Paper: OuterSPACE ~14x Gamma's traffic and SpArch ~3x; outer product
collapses on denser matrices (up to 54x over compulsory).
"""

from conftest import by_matrix


def test_fig16(run_figure):
    result = run_figure("fig16")
    rows = by_matrix(result["rows"])
    g = rows["gmean"]

    assert g["GP"] <= g["G"] * 1.02
    assert g["OuterSPACE"] / g["GP"] > 4     # paper: ~14x
    assert g["SpArch"] / g["GP"] > 1.5       # paper: ~3x
    # The gap is much larger than on the common set: outer product
    # explodes with density.
    worst_os = max(r["OuterSPACE"] for n, r in rows.items()
                   if n != "gmean")
    assert worst_os > 10                     # paper: up to 54x
