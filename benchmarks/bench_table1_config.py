"""Table 1: the evaluated system configuration."""


def test_table1(run_figure):
    result = run_figure("table1")
    rows = {r[0]: (r[1], r[2]) for r in result["rows"]}
    assert rows["PEs"] == (32, 32)
    assert rows["PE radix"] == (64, 64)
    assert rows["FiberCache (KB)"][0] == 3 * 1024      # paper: 3 MB
    assert rows["Memory BW (GB/s)"][0] == 128.0
    assert rows["FiberCache ways"] == (16, 16)
