"""Unit tests for the addressable priority queues."""

import random

import pytest

from repro.preprocessing.pqueue import BucketQueue, IndexedMaxHeap


@pytest.fixture(params=[IndexedMaxHeap, BucketQueue])
def queue(request):
    return request.param()


class TestCommonBehaviour:
    def test_insert_pop_max(self, queue):
        queue.insert("a", 3)
        queue.insert("b", 7)
        queue.insert("c", 5)
        assert queue.pop() == "b"
        assert queue.pop() == "c"
        assert queue.pop() == "a"

    def test_len_and_contains(self, queue):
        queue.insert("x", 1)
        assert len(queue) == 1
        assert "x" in queue
        assert "y" not in queue
        queue.remove("x")
        assert len(queue) == 0
        assert "x" not in queue

    def test_duplicate_insert_rejected(self, queue):
        queue.insert("a", 0)
        with pytest.raises(KeyError):
            queue.insert("a", 1)

    def test_inc_key_promotes(self, queue):
        queue.insert("a", 0)
        queue.insert("b", 2)
        queue.inc_key("a", 5)
        assert queue.pop() == "a"

    def test_dec_key_demotes(self, queue):
        queue.insert("a", 5)
        queue.insert("b", 3)
        queue.dec_key("a", 4)
        assert queue.pop() == "b"

    def test_key_of(self, queue):
        queue.insert("a", 4)
        queue.inc_key("a", 2)
        assert queue.key_of("a") == 6

    def test_peek_does_not_remove(self, queue):
        queue.insert("a", 9)
        item, key = queue.peek()
        assert (item, key) == ("a", 9)
        assert len(queue) == 1

    def test_pop_empty_raises(self, queue):
        with pytest.raises(IndexError):
            queue.pop()
        with pytest.raises(IndexError):
            queue.peek()

    def test_negative_delta_rejected(self, queue):
        queue.insert("a", 5)
        with pytest.raises(ValueError):
            queue.inc_key("a", -1)
        with pytest.raises(ValueError):
            queue.dec_key("a", -1)

    def test_tie_break_insertion_order(self, queue):
        queue.insert("first", 5)
        queue.insert("second", 5)
        assert queue.pop() == "first"

    def test_randomized_against_reference(self, queue):
        rng = random.Random(42)
        reference = {}
        for i in range(200):
            reference[i] = rng.randint(0, 20)
            queue.insert(i, reference[i])
        for _ in range(300):
            item = rng.choice(list(reference))
            if rng.random() < 0.5:
                queue.inc_key(item, 1)
                reference[item] += 1
            elif reference[item] > 0:
                queue.dec_key(item, 1)
                reference[item] -= 1
        while reference:
            popped = queue.pop()
            assert reference[popped] == max(reference.values())
            del reference[popped]


class TestHeapSpecific:
    def test_validate(self):
        heap = IndexedMaxHeap()
        for i in range(50):
            heap.insert(i, i % 7)
        heap.validate()
        heap.inc_key(3, 100)
        heap.validate()
        heap.remove(10)
        heap.validate()

    def test_float_keys(self):
        heap = IndexedMaxHeap()
        heap.insert("a", 1.5)
        heap.insert("b", 1.6)
        assert heap.pop() == "b"


class TestBucketSpecific:
    def test_rejects_negative_keys(self):
        queue = BucketQueue()
        with pytest.raises(ValueError):
            queue.insert("a", -1)
        queue.insert("b", 0)
        with pytest.raises(ValueError, match="negative"):
            queue.dec_key("b", 1)

    def test_max_tracks_after_removal(self):
        queue = BucketQueue()
        queue.insert("hi", 10)
        queue.insert("lo", 1)
        queue.remove("hi")
        assert queue.pop() == "lo"
