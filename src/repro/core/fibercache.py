"""FiberCache: Gamma's hybrid cache / explicitly-orchestrated buffer (Sec. 3.2).

A set-associative cache over 64 B lines with four primitives:

* ``fetch`` — decoupled, non-speculative prefetch: brings a line in from
  memory ahead of use and *increments its priority counter*, soft-locking it.
* ``read``  — the PE's actual consumption: decrements priority.
* ``write`` — allocate-without-fetch for partial output fibers; sets dirty.
* ``consume`` — read-and-invalidate for partial fibers: no writeback even
  though dirty.

Replacement selects the victim with the lowest priority counter, breaking
ties with 2-bit SRRIP (insert at RRPV 2, promote to 0 on touch, age when no
candidate is at 3).

The model operates on abstract line addresses: callers map fibers to
address ranges (matrix layout or the scheduler's dynamic partial-fiber
allocator) and the cache indexes sets by address modulo set count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import GammaConfig, LINE_BYTES

#: SRRIP re-reference prediction values (2-bit).
_RRPV_MAX = 3
_RRPV_INSERT = 2
_PRIORITY_MAX = 31  # 5-bit counter for 32 PEs (Sec. 3.2)


class _Line:
    """One resident cache line."""

    __slots__ = ("addr", "category", "priority", "rrpv", "dirty")

    def __init__(self, addr: int, category: str) -> None:
        self.addr = addr
        self.category = category
        self.priority = 0
        self.rrpv = _RRPV_INSERT
        self.dirty = False


@dataclass
class CacheStats:
    """Access and traffic counters, by request type."""

    fetch_hits: int = 0
    fetch_misses: int = 0
    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0
    consume_hits: int = 0
    consume_misses: int = 0
    dirty_evictions: int = 0
    clean_evictions: int = 0

    @property
    def reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def read_hit_rate(self) -> float:
        return self.read_hits / self.reads if self.reads else 1.0


class FiberCache:
    """Banked, set-associative cache with explicit data orchestration.

    Args:
        config: Gamma system parameters (capacity / ways).

    The model tracks occupancy per category ('B' lines vs 'partial' lines)
    so experiments can reproduce the paper's cache-utilization figures
    (Figs. 14 and 18).
    """

    def __init__(self, config: GammaConfig) -> None:
        self.config = config
        self.num_sets = config.fibercache_sets
        self.num_ways = config.fibercache_ways
        self._sets: List[Dict[int, _Line]] = [
            {} for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()
        #: DRAM read lines caused by misses, by data category.
        self.miss_lines = {"B": 0, "partial": 0}
        self.occupancy = {"B": 0, "partial": 0}
        self._utilization_weighted = {"B": 0.0, "partial": 0.0}
        self._utilization_weight = 0.0
        #: Accesses per bank (addr % banks): load balance across the
        #: banked structure that the 48x crossbars serve (Table 1).
        self.bank_accesses = [0] * config.fibercache_banks
        #: Hit/miss split per bank (fetch/read/consume outcomes), the
        #: per-bank hit-rate view the observability layer reports.
        self.bank_hits = [0] * config.fibercache_banks
        self.bank_misses = [0] * config.fibercache_banks

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def fetch(self, addr: int, category: str = "B") -> bool:
        """Decoupled prefetch of one line. Returns True on miss (DRAM read).

        Whether hit or miss, the line's priority counter is incremented so
        replacement will not victimize it before the matching ``read``.
        """
        bank = addr % len(self.bank_accesses)
        self.bank_accesses[bank] += 1
        line_set = self._sets[addr % self.num_sets]
        line = line_set.get(addr)
        if line is not None:
            self.stats.fetch_hits += 1
            self.bank_hits[bank] += 1
            if line.priority < _PRIORITY_MAX:
                line.priority += 1
            line.rrpv = 0
            return False
        if category not in self.miss_lines:
            raise ValueError(f"unknown line category {category!r}")
        self.stats.fetch_misses += 1
        self.bank_misses[bank] += 1
        self.miss_lines[category] += 1
        line = self._install(addr, category)
        line.priority = 1
        return True

    def read(self, addr: int, category: str = "B") -> bool:
        """PE consumption of a fetched line. Returns True on miss.

        A miss means the line was evicted between fetch and read (or was
        never fetched) and costs a DRAM access.
        """
        bank = addr % len(self.bank_accesses)
        self.bank_accesses[bank] += 1
        line_set = self._sets[addr % self.num_sets]
        line = line_set.get(addr)
        if line is not None:
            self.stats.read_hits += 1
            self.bank_hits[bank] += 1
            if line.priority > 0:
                line.priority -= 1
            line.rrpv = 0
            return False
        if category not in self.miss_lines:
            raise ValueError(f"unknown line category {category!r}")
        self.stats.read_misses += 1
        self.bank_misses[bank] += 1
        self.miss_lines[category] += 1
        line = self._install(addr, category)
        line.priority = 0
        return True

    def write(self, addr: int, category: str = "partial") -> None:
        """Allocate a line without fetching and mark it dirty (Sec. 3.2).

        Used for partial output fibers, which need not be backed by memory.
        """
        self.bank_accesses[addr % len(self.bank_accesses)] += 1
        self.stats.writes += 1
        line_set = self._sets[addr % self.num_sets]
        line = line_set.get(addr)
        if line is None:
            line = self._install(addr, category)
        line.dirty = True
        line.rrpv = 0
        # No priority bump: only fetch raises priority (Sec. 3.2), so idle
        # partial fibers spill to their reserved memory under pressure
        # instead of pinning capacity that B rows could use.

    def consume(self, addr: int) -> bool:
        """Read-and-invalidate a partial line. Returns True on miss.

        On hit the line is dropped without writeback even though dirty; a
        miss means the partial fiber was spilled and must be re-read from
        DRAM.
        """
        bank = addr % len(self.bank_accesses)
        self.bank_accesses[bank] += 1
        line_set = self._sets[addr % self.num_sets]
        line = line_set.pop(addr, None)
        if line is not None:
            self.stats.consume_hits += 1
            self.bank_hits[bank] += 1
            self.occupancy[line.category] -= 1
            return False
        self.stats.consume_misses += 1
        self.bank_misses[bank] += 1
        self.miss_lines["partial"] += 1
        return True

    def invalidate(self, addr: int) -> None:
        """Drop a line if resident, without writeback (deallocation)."""
        line_set = self._sets[addr % self.num_sets]
        line = line_set.pop(addr, None)
        if line is not None:
            self.occupancy[line.category] -= 1

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------
    def _install(self, addr: int, category: str) -> _Line:
        if category not in self.occupancy:
            raise ValueError(f"unknown line category {category!r}")
        line_set = self._sets[addr % self.num_sets]
        if len(line_set) >= self.num_ways:
            self._evict(line_set)
        line = _Line(addr=addr, category=category)
        line_set[addr] = line
        self.occupancy[category] += 1
        return line

    def _evict(self, line_set: Dict[int, _Line]) -> None:
        """Evict the lowest-priority line, SRRIP-aged among ties."""
        victim = None
        min_priority = _PRIORITY_MAX + 1
        max_rrpv = -1
        for line in line_set.values():
            priority = line.priority
            if priority < min_priority:
                min_priority = priority
                max_rrpv = line.rrpv
                victim = line
            elif priority == min_priority and line.rrpv > max_rrpv:
                max_rrpv = line.rrpv
                victim = line
        if victim.rrpv < _RRPV_MAX:
            # Age all tied candidates so the victim reaches RRPV max,
            # as SRRIP would by repeated aging sweeps.
            aging = _RRPV_MAX - victim.rrpv
            for line in line_set.values():
                if line.priority == min_priority:
                    new_rrpv = line.rrpv + aging
                    line.rrpv = new_rrpv if new_rrpv < _RRPV_MAX else _RRPV_MAX
        if victim.dirty:
            self.stats.dirty_evictions += 1
        else:
            self.stats.clean_evictions += 1
        self.occupancy[victim.category] -= 1
        del line_set[victim.addr]
        self._last_victim = victim

    @property
    def last_victim_category(self) -> Optional[str]:
        victim = getattr(self, "_last_victim", None)
        return victim.category if victim is not None else None

    @property
    def last_victim_was_dirty(self) -> bool:
        victim = getattr(self, "_last_victim", None)
        return bool(victim is not None and victim.dirty)

    @property
    def last_victim_addr(self) -> Optional[int]:
        victim = getattr(self, "_last_victim", None)
        return victim.addr if victim is not None else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        return addr in self._sets[addr % self.num_sets]

    def line_state(self, addr: int) -> Optional[_Line]:
        return self._sets[addr % self.num_sets].get(addr)

    @property
    def resident_lines(self) -> int:
        return self.occupancy["B"] + self.occupancy["partial"]

    @property
    def total_lines(self) -> int:
        return self.num_sets * self.num_ways

    def bank_load_imbalance(self) -> float:
        """max/mean accesses across banks (1.0 = perfectly balanced).

        A low value justifies the highly banked design: line-interleaved
        fiber accesses spread nearly uniformly over the 48 banks.
        """
        total = sum(self.bank_accesses)
        if total == 0:
            return 1.0
        mean = total / len(self.bank_accesses)
        return max(self.bank_accesses) / mean

    def bank_hit_rates(self) -> List[float]:
        """Hit fraction per bank over fetch/read/consume outcomes.

        Banks with no classified accesses report 1.0 (nothing missed).
        """
        rates = []
        for hits, misses in zip(self.bank_hits, self.bank_misses):
            total = hits + misses
            rates.append(hits / total if total else 1.0)
        return rates

    def publish_metrics(self, metrics) -> None:
        """Dump counters and per-bank tables into a MetricsRegistry."""
        for name in ("fetch_hits", "fetch_misses", "read_hits",
                     "read_misses", "writes", "consume_hits",
                     "consume_misses", "dirty_evictions",
                     "clean_evictions"):
            metrics.counter(f"cache/{name}").inc(getattr(self.stats, name))
        for category, lines in self.miss_lines.items():
            metrics.counter(f"cache/miss_lines/{category}").inc(lines)
        metrics.set_info("cache/bank_accesses", list(self.bank_accesses))
        metrics.set_info("cache/bank_hits", list(self.bank_hits))
        metrics.set_info("cache/bank_misses", list(self.bank_misses))
        metrics.set_info("cache/bank_hit_rates", self.bank_hit_rates())
        metrics.gauge("cache/bank_load_imbalance").set(
            self.bank_load_imbalance())
        average = self.average_utilization()
        for category, fraction in average.items():
            metrics.gauge(f"cache/utilization/{category}").set(fraction)

    def utilization(self) -> Dict[str, float]:
        """Instantaneous occupancy fractions by category."""
        total = self.total_lines
        used_b = self.occupancy["B"] / total
        used_p = self.occupancy["partial"] / total
        return {"B": used_b, "partial": used_p,
                "unused": max(0.0, 1.0 - used_b - used_p)}

    def sample_utilization(self, weight: float = 1.0) -> None:
        """Record a utilization sample (time-weighted, Figs. 14/18)."""
        if weight <= 0:
            return
        snapshot = self.utilization()
        self._utilization_weighted["B"] += snapshot["B"] * weight
        self._utilization_weighted["partial"] += snapshot["partial"] * weight
        self._utilization_weight += weight

    def average_utilization(self) -> Dict[str, float]:
        """Time-averaged occupancy fractions recorded by sampling."""
        if self._utilization_weight == 0:
            return self.utilization()
        used_b = self._utilization_weighted["B"] / self._utilization_weight
        used_p = (
            self._utilization_weighted["partial"] / self._utilization_weight
        )
        return {"B": used_b, "partial": used_p,
                "unused": max(0.0, 1.0 - used_b - used_p)}


def lines_for_bytes(num_bytes: int) -> int:
    """Lines occupied by a byte range starting at a line boundary."""
    return max(0, -(-num_bytes // LINE_BYTES))
