"""MatRaptor traffic/timing model [Srivastava et al., MICRO'20] (Sec. 7).

MatRaptor is the concurrent Gustavson-dataflow accelerator the paper
discusses in related work. The crucial difference from Gamma: **it does not
exploit reuse of B fibers** — every B row a nonzero of A references is
streamed from DRAM and used once. Since B-row reuse is exactly how
Gustavson's dataflow minimizes traffic, MatRaptor's improvement over
OuterSPACE (1.8x) falls well short of Gamma's (6.6x without preprocessing).

Model: A and C move once; B bytes equal the *sum over A's nonzeros* of the
referenced row's size (no cache); row-wise parallel PEs give it ample
compute throughput, so it is bandwidth-bound like Gamma.
"""

from __future__ import annotations

from typing import Optional

from repro.config import ELEMENT_BYTES, GammaConfig, OFFSET_BYTES
from repro.baselines.common import BaselineResult
from repro.baselines.spgemm_ref import output_nnz_upper_bound
from repro.matrices.csr import CsrMatrix
from repro.matrices.stats import flops as count_flops


def run_matraptor_model(
    a: CsrMatrix,
    b: CsrMatrix,
    config: Optional[GammaConfig] = None,
    c_nnz: Optional[int] = None,
) -> BaselineResult:
    """Estimate MatRaptor's traffic and runtime for C = A x B."""
    config = config or GammaConfig()
    flops = count_flops(a, b)
    if c_nnz is None:
        c_nnz = output_nnz_upper_bound(a, b)

    a_bytes = a.nnz * ELEMENT_BYTES + a.num_rows * OFFSET_BYTES
    # Every referenced B row is fetched on every use: B traffic equals the
    # total merged input volume (= flops elements).
    b_bytes = flops * ELEMENT_BYTES + a.nnz * OFFSET_BYTES
    c_bytes = c_nnz * ELEMENT_BYTES + a.num_rows * OFFSET_BYTES
    traffic = {
        "A": a_bytes,
        "B": int(b_bytes),
        "C": c_bytes,
        "partial_read": 0,
        "partial_write": 0,
    }
    memory_cycles = sum(traffic.values()) / config.bytes_per_cycle
    compute_cycles = flops / config.num_pes
    return BaselineResult(
        name="MatRaptor",
        cycles=max(memory_cycles, compute_cycles),
        frequency_hz=config.frequency_hz,
        traffic_bytes=traffic,
        flops=flops,
        c_nnz=c_nnz,
    )
