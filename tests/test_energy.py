"""Tests for the parametric energy model."""

import pytest

from repro.analysis.energy import (
    EnergyBreakdown,
    EnergyModel,
    energy_per_flop_pj,
    estimate_energy,
)
from repro.config import GammaConfig
from repro.core import GammaSimulator
from repro.matrices import generators


@pytest.fixture(scope="module")
def result():
    a = generators.uniform_random(300, 300, 6.0, seed=1)
    return GammaSimulator(GammaConfig(fibercache_bytes=32 * 1024),
                          keep_output=False).run(a, a)


class TestEnergyModel:
    def test_breakdown_positive(self, result):
        breakdown = estimate_energy(result)
        assert breakdown.dram_pj > 0
        assert breakdown.sram_pj > 0
        assert breakdown.compute_pj > 0
        assert breakdown.static_pj > 0
        assert breakdown.total_pj == pytest.approx(
            breakdown.dram_pj + breakdown.sram_pj
            + breakdown.compute_pj + breakdown.static_pj)

    def test_fractions_sum_to_one(self, result):
        fractions = estimate_energy(result).fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_data_movement_dominates(self, result):
        """spMspM is memory-bound: DRAM energy above compute energy for a
        bandwidth-saturating run."""
        breakdown = estimate_energy(result)
        assert breakdown.dram_pj > breakdown.compute_pj

    def test_traffic_reduction_is_energy_reduction(self):
        """The paper's qualitative claim: less traffic -> less energy."""
        a = generators.uniform_random(400, 400, 8.0, seed=2)
        big = GammaSimulator(
            GammaConfig(fibercache_bytes=1024 * 1024),
            keep_output=False).run(a, a)
        small = GammaSimulator(
            GammaConfig(fibercache_bytes=8 * 1024),
            keep_output=False).run(a, a)
        assert (estimate_energy(small).total_pj
                > estimate_energy(big).total_pj)

    def test_custom_constants(self, result):
        expensive_dram = EnergyModel(dram_pj_per_byte=200.0)
        assert (estimate_energy(result, expensive_dram).dram_pj
                == pytest.approx(
                    10 * estimate_energy(result).dram_pj))

    def test_energy_per_flop(self, result):
        per_flop = energy_per_flop_pj(result)
        assert per_flop > 0
        # Sanity: tens-to-hundreds of pJ per MAC for a memory-bound run.
        assert 1.0 < per_flop < 10_000.0

    def test_units(self):
        breakdown = EnergyBreakdown(1e6, 0, 0, 0)
        assert breakdown.total_uj == pytest.approx(1.0)
