"""Unit tests for the preprocessing pipeline's ordering estimator."""

import numpy as np
import pytest

from repro.matrices import generators
from repro.preprocessing.pipeline import estimate_b_traffic
from repro.preprocessing.tiling import RowFragment


def fragments_of(matrix):
    return [
        RowFragment(row,
                    matrix.coords[matrix.offsets[row]:
                                  matrix.offsets[row + 1]],
                    matrix.values[matrix.offsets[row]:
                                  matrix.offsets[row + 1]])
        for row in range(matrix.num_rows)
        if matrix.row_nnz(row)
    ]


class TestEstimateBTraffic:
    def test_infinite_capacity_touches_each_row_once(self):
        m = generators.uniform_random(80, 80, 4.0, seed=1)
        frags = fragments_of(m)
        order = list(range(len(frags)))
        traffic = estimate_b_traffic(frags, order, m, 1 << 40)
        touched = np.unique(m.coords)
        expected = sum(m.row_nnz(int(k)) for k in touched) * 12
        assert traffic == expected

    def test_zero_capacity_touches_every_reference(self):
        m = generators.uniform_random(50, 50, 3.0, seed=2)
        frags = fragments_of(m)
        order = list(range(len(frags)))
        traffic = estimate_b_traffic(frags, order, m, 0)
        expected = sum(m.row_nnz(int(k)) for k in m.coords) * 12
        assert traffic == expected

    def test_good_order_beats_bad_order(self):
        mesh = generators.mesh(300, 10.0, seed=3)
        scrambled = generators.symmetric_permute(mesh, seed=4)
        frags = fragments_of(scrambled)
        natural = list(range(len(frags)))
        # Order fragments by their first coordinate ~ recovers the band.
        by_anchor = sorted(
            natural, key=lambda i: int(frags[i].coords[0]))
        capacity = 8 * 1024
        assert (estimate_b_traffic(frags, by_anchor, scrambled, capacity)
                < estimate_b_traffic(frags, natural, scrambled, capacity))

    def test_empty_fragments(self):
        m = generators.uniform_random(10, 10, 2.0, seed=5)
        assert estimate_b_traffic([], [], m, 1024) == 0

    def test_monotone_in_capacity(self):
        m = generators.power_law(200, 200, 5.0, seed=6, max_degree=30)
        frags = fragments_of(m)
        order = list(range(len(frags)))
        traffics = [
            estimate_b_traffic(frags, order, m, cap)
            for cap in (0, 512, 8 * 1024, 1 << 30)
        ]
        assert traffics == sorted(traffics, reverse=True)


class TestSpecDispatch:
    def test_unknown_family_rejected(self):
        from repro.matrices.suite import MatrixSpec

        spec = MatrixSpec(
            name="x", family="hologram", paper_rows=10, paper_cols=10,
            paper_npr=1.0, rows=10, cols=10, npr=1.0)
        with pytest.raises(ValueError, match="unknown matrix family"):
            spec.generate()
