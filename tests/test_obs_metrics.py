"""Unit tests for the MetricsRegistry primitives and serialization."""

import math

import pytest

from repro.analysis.roofline import phase_windows
from repro.obs import (
    METRICS_SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    as_registry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.counter("x").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3.0)
        registry.gauge("g").set(7.5)
        assert registry.gauge("g").value == 7.5

    def test_counters_with_prefix_strips_keys(self):
        registry = MetricsRegistry()
        registry.counter("dram/bytes/A").inc(10)
        registry.counter("dram/bytes/B").inc(20)
        registry.counter("other").inc(99)
        assert registry.counters_with_prefix("dram/bytes/") == {
            "A": 10, "B": 20}


class TestHistogram:
    def test_power_of_two_buckets(self):
        hist = Histogram()
        for value in (-3, 0, 1, 1.5, 2, 3, 1000):
            hist.observe(value)
        assert hist.buckets == {"neg": 1, "zero": 1, "0": 2, "1": 2,
                                "9": 1}
        assert hist.count == 7
        assert hist.min == -3 and hist.max == 1000
        assert hist.mean == pytest.approx(1004.5 / 7)

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.buckets == {}


class TestTimeSeries:
    def test_decimation_keeps_memory_bounded(self):
        series = TimeSeries(max_samples=8)
        for i in range(1000):
            series.sample(float(i), 1.0)
        assert len(series) <= 8
        assert series.stride > 1
        # Retained samples stay in order and inside the sampled range.
        assert series.xs == sorted(series.xs)
        assert series.xs[0] >= 0 and series.xs[-1] < 1000

    def test_stride_corrected_totals_approximate_true_sum(self):
        series = TimeSeries(max_samples=64)
        for i in range(10_000):
            series.sample(float(i), 2.0)
        estimate = sum(series.ys) * series.stride
        assert estimate == pytest.approx(20_000, rel=0.15)

    def test_small_series_exact(self):
        series = TimeSeries()
        series.sample(0, 5.0)
        series.sample(1, 7.0)
        assert series.points() == [(0, 5.0), (1, 7.0)]
        assert series.stride == 1


class TestSerialization:
    def build_registry(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(42)
        registry.gauge("g").set(3.25)
        registry.histogram("h").observe(5)
        registry.series("s").sample(1.0, 2.0)
        registry.set_info("label", {"nested": [1, 2]})
        return registry

    def test_blob_roundtrip(self):
        original = self.build_registry()
        blob = original.to_blob()
        assert blob["schema"] == METRICS_SCHEMA_VERSION
        revived = MetricsRegistry.from_blob(blob)
        assert revived.to_blob() == blob

    def test_empty_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        revived = MetricsRegistry.from_blob(registry.to_blob())
        assert revived.histogram("h").count == 0
        assert revived.histogram("h").min == math.inf

    def test_from_blob_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            MetricsRegistry.from_blob({"schema": 0})

    def test_as_registry_accepts_all_forms(self):
        registry = self.build_registry()
        assert as_registry(None) is None
        assert as_registry(registry) is registry
        revived = as_registry(registry.to_blob())
        assert revived.counter("c").value == 42


class TestPhaseWindows:
    def build_metrics(self):
        registry = MetricsRegistry()
        registry.gauge("run/cycles").set(1000.0)
        # Busy concentrated early, misses concentrated late.
        for t in range(0, 500, 10):
            registry.series("timeline/busy").sample(float(t), 10.0)
        for t in range(500, 1000, 10):
            registry.series("timeline/miss_bytes").sample(float(t), 640.0)
        registry.set_info("system", {"num_pes": 4, "frequency_hz": 1e9,
                                     "bytes_per_cycle": 128.0})
        return registry

    def test_windows_partition_the_run(self):
        windows = phase_windows(self.build_metrics(), num_windows=4)
        assert len(windows) == 4
        assert windows[0]["start"] == 0
        assert windows[-1]["end"] == pytest.approx(1000.0)
        # Activity lands where it was sampled.
        assert windows[0]["busy_cycles"] > 0
        assert windows[0]["miss_bytes"] == 0
        assert windows[-1]["miss_bytes"] > 0
        assert windows[-1]["busy_cycles"] == 0
        for window in windows:
            assert window["bound"] in ("memory", "compute")
            # Zero intensity (no compute in the window) pins the sloped
            # roof to zero; otherwise the roof is positive.
            assert window["roof_gflops"] >= 0
            if window["intensity"] > 0:
                assert window["roof_gflops"] > 0

    def test_requires_metrics(self):
        with pytest.raises(ValueError, match="no metrics"):
            phase_windows(None)

    def test_empty_run_yields_no_windows(self):
        assert phase_windows(MetricsRegistry()) == []
