"""Unit tests for the Matrix Market reader/writer."""

import io

import numpy as np
import pytest

from repro.matrices.csr import CsrMatrix
from repro.matrices.io import (
    MatrixMarketError,
    matrix_market_string,
    read_matrix_market,
    roundtrip_equal,
    write_matrix_market,
)


def _read(text: str) -> CsrMatrix:
    return read_matrix_market(io.StringIO(text))


class TestReader:
    def test_basic_real_general(self):
        m = _read(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "2 3 2\n"
            "1 1 1.5\n"
            "2 3 -2.0\n"
        )
        assert m.shape == (2, 3)
        assert list(m.row(0)) == [(0, 1.5)]
        assert list(m.row(1)) == [(2, -2.0)]

    def test_pattern(self):
        m = _read(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 2\n2 1\n"
        )
        assert list(m.row(0)) == [(1, 1.0)]

    def test_symmetric_mirrors(self):
        m = _read(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n2 1 5.0\n3 3 1.0\n"
        )
        assert list(m.row(0)) == [(1, 5.0)]
        assert list(m.row(1)) == [(0, 5.0)]
        assert m.nnz == 3

    def test_integer_field(self):
        m = _read(
            "%%MatrixMarket matrix coordinate integer general\n"
            "1 1 1\n1 1 7\n"
        )
        assert list(m.row(0)) == [(0, 7.0)]

    def test_missing_header(self):
        with pytest.raises(MatrixMarketError, match="header"):
            _read("1 1 1\n1 1 1.0\n")

    def test_unsupported_format(self):
        with pytest.raises(MatrixMarketError, match="coordinate"):
            _read("%%MatrixMarket matrix array real general\n")

    def test_unsupported_field(self):
        with pytest.raises(MatrixMarketError, match="field"):
            _read("%%MatrixMarket matrix coordinate complex general\n")

    def test_truncated_entries(self):
        with pytest.raises(MatrixMarketError, match="expected 2 entries"):
            _read(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 2\n1 1 1.0\n"
            )

    def test_malformed_entry(self):
        with pytest.raises(MatrixMarketError, match="malformed"):
            _read(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n1 1\n"
            )


class TestWriterRoundTrip:
    def test_round_trip(self):
        rng = np.random.default_rng(5)
        dense = rng.random((12, 9)) * (rng.random((12, 9)) < 0.3)
        m = CsrMatrix.from_dense(dense)
        text = matrix_market_string(m, comment="test matrix")
        back = _read(text)
        assert roundtrip_equal(m, back)

    def test_file_round_trip(self, tmp_path):
        m = CsrMatrix.from_dense(np.array([[0.0, 2.5], [1.0, 0.0]]))
        path = tmp_path / "m.mtx"
        write_matrix_market(m, path)
        assert roundtrip_equal(m, read_matrix_market(path))

    def test_empty_matrix(self):
        m = CsrMatrix.from_rows([], 5)
        back = _read(matrix_market_string(m))
        assert back.shape == (0, 5)
        assert back.nnz == 0

    def test_comment_written(self):
        m = CsrMatrix.from_dense(np.eye(2))
        text = matrix_market_string(m, comment="hello\nworld")
        assert "% hello" in text
        assert "% world" in text
