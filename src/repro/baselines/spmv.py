"""GUST-style SpMV execution model: Gustavson degenerated to a vector.

GUST (PAPERS.md) observes that Gustavson's dataflow serves SpMV
unchanged: ``y = A x`` is row-wise gathering where every referenced "B
row" is a single scalar ``x_k``. The ``gamma-spmv`` registry model
reuses the epoch-batched Gamma core verbatim — same PE timing law, same
FiberCache touch accounting — on a ``k x 1`` operand, so SpMV results
drop into sweeps, reports, and the job service exactly like SpGEMM
records.

Two operand shapes, the sweep/serve ``operand`` axis:

* ``sparse-vector`` — x is the sparse column 0 of the point's B operand
  (spMspV; absent entries are the semiring zero and cost nothing);
* ``dense-vector`` — every coordinate of x is materialized (classic
  SpMV; absent entries become explicit semiring zeros, so they are
  fetched, merged, and accounted like any element).

``operand="matrix"`` (the axis default shared with the SpGEMM models)
resolves to ``sparse-vector``, the model's natural shape. When B is
already a single column the sparse operand is B itself — which is what
makes ``gamma-spmv`` on a 1-column pair bit-identical to ``gamma`` (the
lockstep check in the parity suite).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import GammaConfig
from repro.core import GammaSimulator, SimulationResult
from repro.matrices.csr import CsrMatrix
from repro.matrices.fiber import Fiber

#: Vector operand shapes ``gamma-spmv`` accepts; ``matrix`` is the
#: cross-model axis default and resolves to ``sparse-vector`` here.
OPERAND_SHAPES = ("matrix", "sparse-vector", "dense-vector")

DEFAULT_OPERAND = "matrix"


def vector_operand(b: CsrMatrix, operand: str = DEFAULT_OPERAND,
                   semiring=None) -> CsrMatrix:
    """Collapse an operand matrix to the ``k x 1`` vector x.

    Column 0 of ``b`` supplies the vector's entries (for a 1-column B
    the sparse shape is B itself, unchanged). ``dense-vector``
    materializes every coordinate, filling gaps with the semiring zero
    (0.0 for arithmetic).
    """
    if operand not in OPERAND_SHAPES:
        raise ValueError(
            f"unknown operand shape {operand!r}; known: {OPERAND_SHAPES}")
    if operand in ("matrix", "sparse-vector") and b.num_cols == 1:
        return b
    zero = 0.0 if semiring is None else semiring.zero
    rows = []
    for k in range(b.num_rows):
        fiber = b.row(k)
        present = len(fiber.coords) and fiber.coords[0] == 0
        if present:
            rows.append(Fiber(np.array([0]), fiber.values[:1], check=False))
        elif operand == "dense-vector":
            rows.append(Fiber(np.array([0]), np.array([zero]), check=False))
        else:
            rows.append(Fiber.empty())
    return CsrMatrix.from_rows(rows, 1)


def run_gamma_spmv(
    a: CsrMatrix,
    b: CsrMatrix,
    config: Optional[GammaConfig] = None,
    operand: str = DEFAULT_OPERAND,
    semiring=None,
    multi_pe: bool = True,
    keep_output: bool = False,
    trace=None,
    metrics=None,
    simulator_cls=None,
) -> SimulationResult:
    """Simulate ``y = A x`` on the epoch-batched Gamma core."""
    simulator_cls = simulator_cls or GammaSimulator
    config = config or GammaConfig()
    x = vector_operand(b, operand, semiring)
    simulator = simulator_cls(
        config, multi_pe_scheduling=multi_pe, keep_output=keep_output,
        semiring=semiring, trace=trace, metrics=metrics)
    return simulator.run(a, x)
