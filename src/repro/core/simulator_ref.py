"""The event-ordered reference simulator: the batched core's oracle.

This is the per-task, event-ordered execution engine — one
``_execute_task`` call, completion-heap push/pop, and dict update per
task. It was the production core before the struct-of-arrays rewrite and
is preserved verbatim (plus a heap-based single-PE picker) as the
bit-exactness oracle: ``tests/test_simulator_lockstep.py`` replays the
batched :class:`repro.core.simulator.GammaSimulator` against this class
and asserts identical output matrices, cycle counts, and traffic
breakdowns, the same way the FiberCache lockstep suite replays the
batched cache against ``ReferenceFiberCache``.

Runs Gustavson spMspM exactly as the hardware would organize it: the
scheduler streams fragments of A in processing order, expands them into
balanced top-full task trees, and dispatches tasks across PEs; every input
fiber touch goes through the FiberCache at 64 B line granularity; DRAM
requests flow through a bandwidth-limited memory interface. Timing follows
the paper's PE law (one merged input element per cycle) with list
scheduling over PEs, so execution time reflects whichever of compute or
memory binds — the basis of the paper's roofline analysis (Sec. 6.5).

Select it at the CLI with ``--engine ref`` (model name ``gamma-ref``).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.config import ELEMENT_BYTES, GammaConfig, LINE_BYTES, OFFSET_BYTES
from repro.core.dram import MemoryInterface
from repro.core.fibercache import FiberCache
from repro.core.pe import ProcessingElement
from repro.core.result import SimulationResult
from repro.core.scheduler import Scheduler, WorkProgram
from repro.core.tasks import Task
from repro.matrices.csr import CsrMatrix
from repro.matrices.fiber import Fiber

#: Partial-fiber address space starts far above any B matrix layout.
_PARTIAL_BASE_LINE = 1 << 40


class ReferenceGammaSimulator:
    """Simulates one spMspM on a Gamma system.

    Args:
        config: Hardware parameters.
        multi_pe_scheduling: Scheduler mode (Fig. 20 ablation); the default
            True lets tasks of one row run on any PE.
        keep_output: Retain the computed C matrix in the result (disable to
            save memory on large sweeps).
        semiring: Scalar algebra for the PEs' multiply/accumulate units;
            None selects ordinary (+, x). Graph analytics use e.g. the
            boolean or tropical semirings (see :mod:`repro.semiring`).
        trace: Optional :class:`~repro.core.trace.ExecutionTrace` that
            records one event per executed task.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; when set,
            the simulator, FiberCache, scheduler, and memory interface
            publish cycle-level measurements into it (phase accounting,
            per-bank hit rates, PE busy/idle, DRAM stream time series).
            ``None`` (the default) collects nothing and costs nothing.
    """

    def __init__(
        self,
        config: Optional[GammaConfig] = None,
        multi_pe_scheduling: bool = True,
        keep_output: bool = True,
        semiring=None,
        trace=None,
        metrics=None,
    ) -> None:
        self.config = config or GammaConfig()
        self.multi_pe_scheduling = multi_pe_scheduling
        self.keep_output = keep_output
        self.semiring = semiring
        self.trace = trace
        self.metrics = metrics

    # ------------------------------------------------------------------
    def run(
        self,
        a: CsrMatrix,
        b: CsrMatrix,
        program: Optional[WorkProgram] = None,
    ) -> SimulationResult:
        """Execute C = A x B.

        Args:
            a: Left operand (CSR).
            b: Right operand (CSR) — Gustavson consumes B by rows.
            program: Optional preprocessed work program; defaults to plain
                row order.

        Returns:
            A :class:`SimulationResult` with the output matrix, cycle count,
            and the full traffic breakdown.
        """
        if a.num_cols != b.num_rows:
            raise ValueError(
                f"inner dimensions differ: {a.shape} x {b.shape}"
            )
        if program is None:
            program = WorkProgram.from_matrix(a)
        state = _ReferenceRunState(self.config, a, b, program,
                          self.multi_pe_scheduling, self.semiring,
                          self.trace, self.metrics)
        state.execute()
        return state.result(self.keep_output)


class _ReferenceRunState:
    """All mutable state of one simulation run."""

    def __init__(
        self,
        config: GammaConfig,
        a: CsrMatrix,
        b: CsrMatrix,
        program: WorkProgram,
        multi_pe: bool,
        semiring=None,
        trace=None,
        metrics=None,
    ) -> None:
        self.config = config
        self.semiring = semiring
        self.trace = trace
        self.metrics = metrics
        self.a = a
        self.b = b
        self.program = program
        self.multi_pe = multi_pe
        self.cache = FiberCache(config)
        self.memory = MemoryInterface(
            config.bytes_per_cycle, config.memory_latency_cycles,
            metrics=metrics,
        )
        self.scheduler = Scheduler(
            program,
            radix=config.radix,
            multi_pe=multi_pe,
            max_outstanding_partials=2 * config.num_pes,
            metrics=metrics,
        )
        self.pe_model = ProcessingElement(config.radix)
        # PE availability: heap of (free_time, pe_id).
        self.pe_free: List[Tuple[float, int]] = [
            (0.0, pe) for pe in range(config.num_pes)
        ]
        heapq.heapify(self.pe_free)
        self.row_pe: Dict[int, int] = {}
        self.pe_free_times: List[float] = [0.0] * config.num_pes
        self.pe_busy_cycles: List[float] = [0.0] * config.num_pes
        self.finish_time: Dict[int, float] = {}
        self.partial_fibers: Dict[int, Fiber] = {}
        self.partial_lines: Dict[int, Tuple[int, int]] = {}
        self._partial_cursor = _PARTIAL_BASE_LINE
        #: B rows are re-touched by many tasks; memoize the Fiber view and
        #: line range per row for the run instead of re-slicing per touch.
        self._b_rows: Dict[int, Tuple[Fiber, int, int]] = {}
        self.output_rows: Dict[int, Fiber] = {}
        self.pe_busy = 0.0
        self.flops = 0
        self.num_tasks = 0
        self.num_partials = 0
        self.now = 0.0
        #: Dispatch-path split: tasks executed one-at-a-time on the
        #: scalar path vs inside a batched epoch. The reference engine
        #: is scalar by construction; the batched core counts how much
        #: of the run its epoch machinery actually covered.
        self.dispatch_scalar = 0
        self.dispatch_epoch = 0

    # -- address mapping -------------------------------------------------
    def _b_row_lines(self, row: int) -> Tuple[int, int]:
        """Line address range [lo, hi) of one B row in the matrix layout."""
        start = int(self.b.offsets[row]) * ELEMENT_BYTES
        end = int(self.b.offsets[row + 1]) * ELEMENT_BYTES
        return (start // LINE_BYTES, -(-end // LINE_BYTES))

    def _allocate_partial_lines(self, nnz: int) -> Tuple[int, int]:
        """Reserve line-aligned space for a partial fiber (Sec. 3.4)."""
        lines = max(1, -(-nnz * ELEMENT_BYTES // LINE_BYTES))
        lo = self._partial_cursor
        self._partial_cursor += lines
        return (lo, lo + lines)

    # -- main loop --------------------------------------------------------
    def execute(self) -> None:
        """Event-ordered list scheduling.

        Ready tasks dispatch eagerly to the earliest-free PE; tasks whose
        dependencies are still in flight become ready only when the
        completion event fires, keeping dispatch (and therefore memory
        requests) in near-monotonic time order.
        """
        target_pending = 2 * self.config.num_pes
        completions: List[Tuple[float, int, Task]] = []
        sequence = 0
        while True:
            self.scheduler.refill(
                target_pending, allow_force=not completions
            )
            # A PE picks its task the moment it frees: release every
            # dependency that completes by then, so the highest-priority
            # task available *at that time* wins (dynamic scheduling,
            # Sec. 3.3) instead of committing PEs to far-future work.
            next_pe_time = self._next_pe_time()
            while completions and completions[0][0] <= next_pe_time:
                _, _, done = heapq.heappop(completions)
                self.scheduler.task_completed(done)
                self.scheduler.refill(
                    target_pending, allow_force=not completions
                )
            task = self.scheduler.next_task()
            if task is not None:
                finish = self._execute_task(task)
                heapq.heappush(completions, (finish, sequence, task))
                sequence += 1
                continue
            if completions:
                _, _, done = heapq.heappop(completions)
                self.scheduler.task_completed(done)
                continue
            if self.scheduler.exhausted:
                break
            raise RuntimeError(
                "scheduler stalled with blocked tasks outstanding"
            )
        self._account_a_traffic()
        # A is streamed in alongside everything else; the run can never be
        # shorter than total traffic at full bandwidth.
        bandwidth_floor = (
            self.memory.traffic.total_bytes / self.config.bytes_per_cycle
        )
        self.now = max(
            max(self.pe_free_times, default=0.0),
            self.memory.busy_until,
            bandwidth_floor,
        )
        if self.metrics is not None:
            self._publish_run_metrics(bandwidth_floor)

    def _clean_pe_heap(self) -> None:
        """Drop stale single-PE heap entries (lazy deletion).

        In single-PE mode the heap is advisory: every free-time update
        pushes a fresh ``(time, pe)`` entry and old ones go stale. A PE's
        free time grows strictly (every task runs >= 1 cycle), so an
        entry is current iff it matches ``pe_free_times``; after cleanup
        the top is the earliest-free PE with the lowest id breaking ties
        — the same PE the old ``min(range(num_pes))`` scan returned,
        without the O(num_pes) walk per dispatch that made Fig. 20
        ablations quadratic at high PE counts.
        """
        heap = self.pe_free
        free_times = self.pe_free_times
        while heap[0][0] != free_times[heap[0][1]]:
            heapq.heappop(heap)

    def _next_pe_time(self) -> float:
        if self.multi_pe:
            return self.pe_free[0][0]
        self._clean_pe_heap()
        return self.pe_free[0][0]

    def _pick_pe(self, task: Task) -> int:
        if self.multi_pe:
            _, pe = heapq.heappop(self.pe_free)
            return pe
        pe = self.row_pe.get(task.row)
        if pe is None:
            self._clean_pe_heap()
            pe = self.pe_free[0][1]
            self.row_pe[task.row] = pe
        return pe

    def _execute_task(self, task: Task) -> float:
        self.num_tasks += 1
        self.dispatch_scalar += 1
        pe = self._pick_pe(task)

        # --- gather input fibers and stream them through the FiberCache ---
        # One pass over the inputs: dependency readiness, fiber views, and
        # one batched cache call per input (see docs/architecture.md §10 —
        # no per-line Python calls here).
        fibers: List[Fiber] = []
        scales: List[float] = []
        cache = self.cache
        b_rows = self._b_rows
        deps_ready = 0.0
        b_miss_lines = 0
        partial_miss_lines = 0
        dirty_evictions = 0
        for inp in task.inputs:
            if inp.kind == "B":
                row = inp.index
                cached = b_rows.get(row)
                if cached is None:
                    lo, hi = self._b_row_lines(row)
                    cached = (self.b.row(row), lo, hi)
                    b_rows[row] = cached
                fiber, lo, hi = cached
                misses, dirty = cache.fetch_read_range(lo, hi, "B")
                b_miss_lines += misses
                dirty_evictions += dirty
                scales.append(inp.scale)
            else:
                finish = self.finish_time[inp.index]
                if finish > deps_ready:
                    deps_ready = finish
                fiber = self.partial_fibers.pop(inp.index)
                lo, hi = self.partial_lines.pop(inp.index)
                misses, _ = cache.consume_range(lo, hi)
                partial_miss_lines += misses
                self.scheduler.partial_consumed()
                if self.semiring is not None:
                    # Partial fibers pass through unscaled: the semiring's
                    # multiplicative identity, not necessarily 1.0.
                    scales.append(self.semiring.one)
                else:
                    scales.append(inp.scale)
            fibers.append(fiber)
        start = max(self.pe_free_times[pe], deps_ready)
        data_ready = start
        if b_miss_lines:
            data_ready = max(data_ready, self.memory.request(
                "B", b_miss_lines * LINE_BYTES, start))
        if partial_miss_lines:
            data_ready = max(data_ready, self.memory.request(
                "partial_read", partial_miss_lines * LINE_BYTES, start))

        # --- compute ------------------------------------------------------
        if self.config.detailed_pe_model:
            pe_result = self.pe_model.combine_detailed(
                fibers, scales, semiring=self.semiring)
        else:
            pe_result = self.pe_model.combine(
                fibers, scales, semiring=self.semiring)
        self.flops += pe_result.multiplies
        compute_finish = start + pe_result.cycles
        finish = max(compute_finish, data_ready)
        self.pe_busy += pe_result.cycles
        self.pe_busy_cycles[pe] += pe_result.cycles

        # --- emit output ----------------------------------------------------
        output = pe_result.output
        if task.is_final:
            self.output_rows[task.row] = output
            out_bytes = len(output) * ELEMENT_BYTES + OFFSET_BYTES
            self.memory.request("C", out_bytes, finish)
        else:
            self.num_partials += 1
            lines = self._allocate_partial_lines(len(output))
            self.partial_fibers[task.task_id] = output
            self.partial_lines[task.task_id] = lines
            _, dirty = self.cache.write_range(lines[0], lines[1], "partial")
            dirty_evictions += dirty
        if dirty_evictions:
            self.memory.request(
                "partial_write", dirty_evictions * LINE_BYTES, finish)

        self.pe_free_times[pe] = finish
        heapq.heappush(self.pe_free, (finish, pe))
        self.finish_time[task.task_id] = finish
        self.cache.sample_utilization(weight=pe_result.cycles)
        if self.metrics is not None:
            self._publish_task_metrics(
                task, pe_result, finish, compute_finish, data_ready,
                b_miss_lines, partial_miss_lines)
        if self.trace is not None:
            from repro.core.trace import TaskEvent

            self.trace.record(TaskEvent(
                task_id=task.task_id,
                row=task.row,
                level=task.level,
                is_final=task.is_final,
                pe=pe,
                start=start,
                finish=finish,
                busy_cycles=pe_result.cycles,
                b_miss_lines=b_miss_lines,
                partial_miss_lines=partial_miss_lines,
            ))
        return finish

    # -- observability ----------------------------------------------------
    def _publish_task_metrics(
        self, task: Task, pe_result, finish: float,
        compute_finish: float, data_ready: float,
        b_miss_lines: int, partial_miss_lines: int,
    ) -> None:
        """Per-task publishing: phase cycles, distributions, timelines."""
        metrics = self.metrics
        # Phase accounting: the task's PE occupancy splits into pure
        # compute and the memory-bound tail spent waiting for data.
        metrics.counter("cycles/compute").inc(pe_result.cycles)
        metrics.counter("cycles/memory_stall").inc(
            max(0.0, data_ready - compute_finish))
        metrics.counter("tasks/dispatched").inc()
        if task.is_final:
            metrics.counter("tasks/final").inc()
        else:
            metrics.counter("tasks/partial_outputs").inc()
        metrics.histogram("task/level").observe(task.level)
        metrics.histogram("task/inputs").observe(task.num_inputs)
        metrics.histogram("task/busy_cycles").observe(pe_result.cycles)
        miss_bytes = (b_miss_lines + partial_miss_lines) * LINE_BYTES
        metrics.series("timeline/busy").sample(finish, pe_result.cycles)
        metrics.series("timeline/miss_bytes").sample(finish, miss_bytes)
        occupancy = self.cache.utilization()
        metrics.series("timeline/occupancy_B").sample(
            finish, occupancy["B"])
        metrics.series("timeline/occupancy_partial").sample(
            finish, occupancy["partial"])

    def _publish_run_metrics(self, bandwidth_floor: float) -> None:
        """End-of-run publishing: PE busy/idle split, cache, bounds."""
        metrics = self.metrics
        metrics.gauge("run/cycles").set(self.now)
        metrics.gauge("run/pe_makespan_cycles").set(
            max(self.pe_free_times, default=0.0))
        metrics.gauge("run/memory_busy_cycles").set(self.memory.busy_until)
        metrics.gauge("run/bandwidth_floor_cycles").set(bandwidth_floor)
        metrics.gauge("run/flops").set(self.flops)
        metrics.set_info(
            "run/bound",
            "memory" if bandwidth_floor >= max(
                self.pe_free_times, default=0.0) else "compute",
        )
        metrics.set_info("system", {
            "num_pes": self.config.num_pes,
            "radix": self.config.radix,
            "frequency_hz": self.config.frequency_hz,
            "bytes_per_cycle": self.config.bytes_per_cycle,
            "fibercache_bytes": self.config.fibercache_bytes,
            "fibercache_banks": self.config.fibercache_banks,
        })
        for pe, busy in enumerate(self.pe_busy_cycles):
            idle = self.now - busy
            metrics.series("pe/busy").sample(pe, busy)
            metrics.series("pe/idle").sample(pe, idle)
            metrics.histogram("pe/busy_cycles").observe(busy)
            metrics.counter("cycles/pe_busy_total").inc(busy)
            metrics.counter("cycles/pe_idle_total").inc(idle)
        metrics.counter("sched/tasks_created").inc(
            self.scheduler.tasks_created)
        metrics.counter("sched/items_consumed").inc(
            self.scheduler.items_consumed)
        metrics.counter("dispatch/scalar").inc(self.dispatch_scalar)
        metrics.counter("dispatch/epoch").inc(self.dispatch_epoch)
        self.cache.publish_metrics(metrics)

    # -- A-side streaming traffic ----------------------------------------
    def _account_a_traffic(self) -> None:
        a_bytes = self.a.nnz * ELEMENT_BYTES
        a_bytes += len(self.program.items) * OFFSET_BYTES
        self.memory.account("A", a_bytes)

    # -- results ------------------------------------------------------------
    def c_nnz(self) -> int:
        """Nonzeros of the computed output."""
        return sum(len(f) for f in self.output_rows.values())

    def compulsory(self) -> Dict[str, int]:
        """Minimum traffic: read A, read touched B rows once, write C."""
        from repro.analysis.traffic import compulsory_traffic

        return compulsory_traffic(self.a, self.b, self.c_nnz())

    def result(self, keep_output: bool) -> SimulationResult:
        output = None
        if keep_output:
            rows = [
                self.output_rows.get(r, Fiber.empty())
                for r in range(self.a.num_rows)
            ]
            output = CsrMatrix.from_rows(rows, self.b.num_cols)
        return SimulationResult(
            output=output,
            cycles=self.now,
            traffic_bytes=self.memory.traffic.breakdown(),
            compulsory_bytes=self.compulsory(),
            flops=self.flops,
            pe_busy_cycles=self.pe_busy,
            num_tasks=self.num_tasks,
            num_partial_fibers=self.num_partials,
            cache_utilization=self.cache.average_utilization(),
            config=self.config,
            c_nnz=self.c_nnz(),
            metrics=(self.metrics.to_blob()
                     if self.metrics is not None else None),
            dispatch={"scalar": self.dispatch_scalar,
                      "epoch": self.dispatch_epoch},
        )


def multiply_reference(
    a: CsrMatrix,
    b: CsrMatrix,
    config: Optional[GammaConfig] = None,
    program: Optional[WorkProgram] = None,
) -> SimulationResult:
    """Convenience one-shot simulation of C = A x B on Gamma."""
    return ReferenceGammaSimulator(config).run(a, b, program=program)
