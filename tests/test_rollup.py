"""Fleet roll-up: aggregates are correct and execution-order-free."""

import json

import pytest

from repro.analysis.metrics import gmean
from repro.config import GammaConfig
from repro.engine.record import RunRecord
from repro.engine.sweep import SweepPoint
from repro.obs import MetricsRegistry
from repro.obs import rollup as rollup_mod


def make_record(model, matrix, variant="", cycles=1000.0,
                frequency_hz=1e9, traffic=100, compulsory=80,
                metrics=None):
    return RunRecord(
        model=model, matrix=matrix, variant=variant, cycles=cycles,
        frequency_hz=frequency_hz,
        traffic_bytes={"A": traffic}, compulsory_bytes={"A": compulsory},
        flops=10, c_nnz=5,
        config=GammaConfig() if model == "gamma" else None,
        metrics=metrics,
    )


def sample_records():
    return {
        SweepPoint("mkl", "m1"): make_record("mkl", "m1", cycles=4000.0),
        SweepPoint("mkl", "m2"): make_record("mkl", "m2", cycles=9000.0),
        SweepPoint("gamma", "m1", "none"):
            make_record("gamma", "m1", "none", cycles=1000.0),
        SweepPoint("gamma", "m2", "none"):
            make_record("gamma", "m2", "none", cycles=1000.0),
        SweepPoint("ip", "m1"):
            make_record("ip", "m1", cycles=2000.0, traffic=160),
    }


class TestTables:
    def test_speedup_is_gmean_over_shared_matrices(self):
        rows = rollup_mod.summary_rows(sample_records())
        table = {r["model"]: r for r in rollup_mod.speedup_table(rows)}
        # gamma[none]: 4x on m1, 9x on m2 -> gmean 6x.
        assert table["gamma[none]"]["gmean_speedup"] == \
            pytest.approx(gmean([4.0, 9.0]))
        assert table["gamma[none]"]["matrices"] == 2
        assert table["gamma[none]"]["min_speedup"] == pytest.approx(4.0)
        assert table["gamma[none]"]["max_speedup"] == pytest.approx(9.0)
        # ip only shares m1 with mkl.
        assert table["ip"]["matrices"] == 1
        assert table["ip"]["gmean_speedup"] == pytest.approx(2.0)
        assert "mkl" not in table  # the reference is not its own row

    def test_traffic_table_excludes_reference(self):
        rows = rollup_mod.summary_rows(sample_records())
        table = {r["model"]: r for r in rollup_mod.traffic_table(rows)}
        assert table["gamma[none]"]["gmean_normalized_traffic"] == \
            pytest.approx(100 / 80)
        assert table["ip"]["worst_normalized_traffic"] == \
            pytest.approx(2.0)
        assert "mkl" not in table

    def test_summary_rows_sorted_and_stable(self):
        records = sample_records()
        rows = rollup_mod.summary_rows(records)
        keys = [(r["model"], r["matrix"], r["variant"]) for r in rows]
        assert keys == sorted(keys)
        # Insertion order must not matter (parallel sweeps complete
        # points in nondeterministic order).
        reversed_records = dict(reversed(list(records.items())))
        assert rollup_mod.summary_rows(reversed_records) == rows


class TestMetricsRollup:
    def _blob(self, hits, misses, rates):
        registry = MetricsRegistry()
        registry.counter("cache/read_hits").inc(hits)
        registry.counter("cache/read_misses").inc(misses)
        registry.counter("dram/bytes/B").inc(512)
        registry.set_info("cache/bank_hit_rates", rates)
        registry.gauge("cache/bank_load_imbalance").set(1.25)
        return registry.to_blob()

    def test_counters_summed_and_banks_summarized(self):
        records = {
            SweepPoint("gamma", "m1", "none"): make_record(
                "gamma", "m1", "none",
                metrics=self._blob(90, 10, [0.8, 0.9, 1.0])),
            SweepPoint("gamma", "m2", "none"): make_record(
                "gamma", "m2", "none",
                metrics=self._blob(60, 40, [0.5, 0.7])),
            SweepPoint("mkl", "m1"): make_record("mkl", "m1"),
        }
        merged = rollup_mod.metrics_rollup(records)
        assert merged["instrumented_points"] == 2
        assert merged["counters"]["cache/read_hits"] == 150
        assert merged["counters"]["dram/bytes/B"] == 1024
        assert merged["fibercache_hit_rate"] == pytest.approx(0.75)
        banks = merged["bank_hit_rates"]
        assert [b["matrix"] for b in banks] == ["m1", "m2"]
        assert banks[0]["min_hit_rate"] == pytest.approx(0.8)
        assert banks[1]["mean_hit_rate"] == pytest.approx(0.6)
        assert banks[0]["load_imbalance"] == pytest.approx(1.25)

    def test_none_when_nothing_instrumented(self):
        assert rollup_mod.metrics_rollup(sample_records()) is None


class TestRollupDeterminism:
    def test_rollup_independent_of_insertion_order(self):
        records = sample_records()
        forward = rollup_mod.rollup(records)
        backward = rollup_mod.rollup(
            dict(reversed(list(records.items()))))
        assert json.dumps(forward, sort_keys=True) == \
            json.dumps(backward, sort_keys=True)
        assert forward["schema"] == rollup_mod.ROLLUP_SCHEMA_VERSION
        assert forward["num_records"] == 5
        assert forward["models"] == ["gamma", "ip", "mkl"]
        assert forward["matrices"] == ["m1", "m2"]
        assert forward["quarantined"] == []


class TestExecutionRollup:
    def test_slot_utilization_from_events(self):
        events = [
            {"type": "span", "name": "sweep/point", "ts": 0.0,
             "dur": 2.0, "attrs": {"slot": 0}},
            {"type": "span", "name": "sweep/point", "ts": 1.0,
             "dur": 3.0, "attrs": {"slot": 1}},
            {"type": "span", "name": "sweep/point", "ts": 3.0,
             "dur": 1.0, "attrs": {"slot": 0}},
            {"type": "instant", "name": "cache/hit", "ts": 0.5,
             "dur": 0.0, "attrs": {}},
        ]
        table = rollup_mod.slot_utilization(events)
        assert [row["slot"] for row in table] == [0, 1]
        # Window is 0.0 .. 4.0; slot 0 was busy 3s of it.
        assert table[0]["points"] == 2
        assert table[0]["busy_seconds"] == pytest.approx(3.0)
        assert table[0]["utilization"] == pytest.approx(0.75)
        assert table[1]["utilization"] == pytest.approx(0.75)
