"""Tests for the cross-engine validation harness."""

import numpy as np
import pytest

from repro.config import GammaConfig
from repro.matrices import generators
from repro.validation import cross_validate


class TestCrossValidate:
    def test_all_engines_agree_random(self):
        a = generators.uniform_random(40, 40, 4.0, seed=1)
        report = cross_validate(a, a)
        assert report.all_agree, report.summary()
        assert set(report.engines) == {
            "gamma", "gamma-detailed", "gamma-preprocessed",
            "spgemm-spa", "spgemm-hash",
        }

    def test_agreement_with_dense_rows(self):
        a = generators.mixed_density(
            50, 50, 4.0, dense_row_fraction=0.1, dense_row_nnz=40, seed=2)
        report = cross_validate(a, a, GammaConfig(radix=4))
        assert report.all_agree, report.summary()

    def test_rectangular(self):
        a = generators.uniform_random(30, 50, 3.0, seed=3)
        b = generators.uniform_random(50, 20, 4.0, seed=4)
        report = cross_validate(a, b)
        assert report.all_agree
        assert report.shape == (30, 20)

    def test_optional_engines_skippable(self):
        a = generators.uniform_random(20, 20, 2.0, seed=5)
        report = cross_validate(a, a, include_detailed=False,
                                include_preprocessed=False)
        assert "gamma-detailed" not in report.engines
        assert "gamma-preprocessed" not in report.engines
        assert report.all_agree

    def test_summary_format(self):
        a = generators.uniform_random(15, 15, 2.0, seed=6)
        report = cross_validate(a, a, include_detailed=False)
        text = report.summary()
        assert "cross-validation" in text
        assert "OK" in text
        assert "MISMATCH" not in text

    def test_mismatch_detected(self):
        a = generators.uniform_random(15, 15, 2.0, seed=7)
        report = cross_validate(a, a, include_detailed=False,
                                include_preprocessed=False)
        # Corrupt one engine's deviation to prove the gate works.
        report.engines["gamma"] = 1.0
        assert not report.all_agree
        assert "MISMATCH" in report.summary()
