"""Golden behavioral-fingerprint regression test (tier-1).

The differential suite (``tests/test_differential.py``) defines a
320-point behavioral space — 80 seeded random operand pairs x 4
execution modes (arithmetic, boolean, tropical, arithmetic with
single-PE-per-row scheduling) on the deliberately tiny ``SMALL_CONFIG``
system that exercises eviction, spills, and multi-level task trees. Each
point's *fingerprint* captures everything observable about the run:
cycles, per-stream traffic, flops, output nonzero count, and an exact
(bit-level, float-hex) digest of the output matrix.

The full space is slow, so tier-1 pins a seeded 16-point subset as a
golden file. Any behavioral drift — a scheduler tweak that reorders
float accumulation, a cache change that shifts traffic, an off-by-one in
the merger — fails this test immediately instead of waiting for someone
to run the manual differential tail.

If a change is *intentional*, regenerate with::

    PYTHONPATH=src python tests/test_golden_fingerprint.py --regenerate

and justify the new golden file in the commit message.
"""

import hashlib
import json
import pathlib
import random
import sys

import pytest

from repro.core import GammaSimulator
from repro.semiring import BOOLEAN, TROPICAL_MIN

try:
    from tests.test_differential import SMALL_CONFIG, random_pair
except ImportError:  # invoked as a script for --regenerate
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))
    from tests.test_differential import SMALL_CONFIG, random_pair

GOLDEN_PATH = (pathlib.Path(__file__).parent / "golden"
               / "behavioral_fingerprint.json")

#: The four execution modes of the fingerprint space.
MODES = (
    ("arithmetic", None, True),
    ("boolean", BOOLEAN, True),
    ("tropical", TROPICAL_MIN, True),
    ("arithmetic-singlepe", None, False),
)

#: 80 seeds x 4 modes = the 320-point space.
NUM_SEEDS = 80

#: Seeded subset pinned as golden (indices into the 320-point space).
SUBSET_SIZE = 16
SUBSET = sorted(random.Random(0x6A).sample(
    range(NUM_SEEDS * len(MODES)), SUBSET_SIZE))


def point_of(index):
    """Map a space index to (seed, mode name, semiring, multi_pe)."""
    seed, mode = divmod(index, len(MODES))
    name, semiring, multi_pe = MODES[mode]
    return seed, name, semiring, multi_pe


def output_digest(matrix):
    """Exact digest of a CSR output: float-hex values, so any bit-level
    change in accumulation order or arithmetic shows up."""
    lines = []
    for row in range(matrix.num_rows):
        start, end = matrix.offsets[row], matrix.offsets[row + 1]
        for idx in range(start, end):
            lines.append(
                f"{row},{int(matrix.coords[idx])},"
                f"{float(matrix.values[idx]).hex()}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def compute_fingerprint(index):
    seed, name, semiring, multi_pe = point_of(index)
    a, b = random_pair(seed)
    sim = GammaSimulator(SMALL_CONFIG, semiring=semiring,
                         multi_pe_scheduling=multi_pe)
    result = sim.run(a, b)
    return {
        "seed": seed,
        "mode": name,
        "cycles": result.cycles,
        "traffic_bytes": {k: int(v)
                          for k, v in sorted(result.traffic_bytes.items())},
        "flops": int(result.flops),
        "c_nnz": int(result.output.nnz),
        "output_sha256": output_digest(result.output),
    }


def load_golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenFingerprint:
    def test_subset_is_stable(self):
        """The pinned index subset itself must never drift."""
        golden = load_golden()
        assert golden["num_seeds"] == NUM_SEEDS
        assert golden["modes"] == [m[0] for m in MODES]
        assert [p["index"] for p in golden["points"]] == SUBSET

    @pytest.mark.parametrize("index", SUBSET)
    def test_behavior_matches_golden(self, index):
        golden = {p["index"]: p for p in load_golden()["points"]}
        expected = dict(golden[index])
        expected.pop("index")
        actual = compute_fingerprint(index)
        assert actual == expected, (
            f"behavioral drift at fingerprint point {index} "
            f"(seed={actual['seed']}, mode={actual['mode']}): if this "
            "change is intentional, regenerate with PYTHONPATH=src "
            "python tests/test_golden_fingerprint.py --regenerate")


def regenerate():
    points = []
    for index in SUBSET:
        fingerprint = compute_fingerprint(index)
        points.append({"index": index, **fingerprint})
    GOLDEN_PATH.write_text(json.dumps({
        "description": (
            "Seeded 16-point subset of the 320-point behavioral "
            "fingerprint (80 seeds x 4 modes on SMALL_CONFIG); see "
            "tests/test_golden_fingerprint.py"),
        "num_seeds": NUM_SEEDS,
        "modes": [m[0] for m in MODES],
        "points": points,
    }, indent=1) + "\n")
    print(f"wrote {len(points)} fingerprints to {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
