"""Load-generator suite: schedule determinism, the golden schedule,
and an end-to-end replay against an in-process server.

The schedule is the part of a load test that must be *exactly*
reproducible — ``tests/golden/loadgen_schedule.json`` pins one
representative schedule byte-for-byte, so any drift in the RNG
discipline (draw order, zipf weighting, rounding) fails here instead of
silently changing every chaos/bench run.

If a change is *intentional*, regenerate with::

    PYTHONPATH=src python tests/test_loadgen.py --regenerate

and justify the new golden file in the commit message.
"""

import asyncio
import json
import pathlib
import sys

import pytest

from repro.serve import (
    JobServer,
    ServerConfig,
    build_population,
    build_schedule,
    run_schedule,
    schedule_stats,
    summarize_results,
)

GOLDEN_PATH = (pathlib.Path(__file__).parent / "golden"
               / "loadgen_schedule.json")

#: The pinned schedule's parameters (small but fully featured: zipf
#: skew, multiple clients, gamma + baseline population).
GOLDEN_PARAMS = dict(
    seed=2024, requests=32, clients=6, zipf_s=1.2, mean_gap_ms=5.0,
    matrices=("wiki-Vote",), models=("gamma", "mkl"),
    variants=("none", "reorder"),
    semirings=("arithmetic", "boolean"))


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        assert build_schedule(seed=7) == build_schedule(seed=7)

    def test_different_seed_different_schedule(self):
        a = build_schedule(seed=7)["requests"]
        b = build_schedule(seed=8)["requests"]
        assert a != b

    def test_schedule_roundtrips_through_json(self):
        schedule = build_schedule(**GOLDEN_PARAMS)
        assert json.loads(json.dumps(schedule)) == schedule

    def test_population_shape(self):
        population = build_population(**{
            k: GOLDEN_PARAMS[k]
            for k in ("matrices", "models", "variants", "semirings")})
        # 1 matrix x (2 variants x 2 semirings) gamma + 1 mkl
        assert len(population) == 5
        assert population[0]["model"] == "gamma"  # hot rank is gamma

    def test_schedule_stats(self):
        schedule = build_schedule(**GOLDEN_PARAMS)
        stats = schedule_stats(schedule)
        assert stats["requests"] == 32
        assert 1 <= stats["distinct_specs"] <= 5
        assert stats["distinct_clients"] <= 6
        # zipf skew: the hottest spec dominates a uniform draw's share
        assert stats["top_spec_share"] > 1 / 5
        assert stats["duration_ms"] > 0


class TestGoldenSchedule:
    def test_matches_golden_file(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        current = build_schedule(**GOLDEN_PARAMS)
        assert current == golden, (
            "loadgen schedule drifted from tests/golden/"
            "loadgen_schedule.json — the RNG discipline changed. If the "
            "change is intentional, regenerate with PYTHONPATH=src "
            "python tests/test_loadgen.py --regenerate")


class TestSummarize:
    def test_summarize_results(self):
        results = [
            {"i": 0, "client": "a", "status": 200, "state": "done",
             "source": "l1", "latency_ms": 1.0, "resubmits": 0},
            {"i": 1, "client": "b", "status": 202, "state": "done",
             "source": "computed", "latency_ms": 9.0, "resubmits": 2},
            {"i": 2, "client": "c", "status": 400, "latency_ms": 0.5,
             "resubmits": 0},
        ]
        summary = summarize_results(results)
        assert summary["requests"] == 3
        assert summary["statuses"] == {"200": 1, "202": 1, "400": 1}
        assert summary["sources"] == {"computed": 1, "l1": 1}
        assert summary["resubmits"] == 2
        assert summary["latency_ms"]["p50"] == 1.0
        assert summary["latency_ms"]["max"] == 9.0

    def test_summarize_empty(self):
        summary = summarize_results([])
        assert summary["requests"] == 0
        assert summary["latency_ms"]["p50"] is None


class TestReplay:
    @pytest.mark.timeout(300)
    def test_golden_schedule_replays_deterministically(self, tmp_path,
                                                       monkeypatch):
        """Replaying the pinned schedule in-process: every request
        terminates 'done', the outcome mix is deterministic, and the
        zipf skew earns an aggregate hit rate above the acceptance
        bar."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
        schedule = json.loads(GOLDEN_PATH.read_text())

        async def scenario():
            server = JobServer(ServerConfig(
                workers=0, queue_depth=32, per_client_limit=32,
                retry_after_seconds=0.05))
            await server.start()
            results = await run_schedule(server, schedule,
                                         time_scale=0.0)
            stats = server.stats_payload()
            await server.shutdown()
            return results, stats

        results, stats = asyncio.run(scenario())
        summary = summarize_results(results)
        assert summary["requests"] == 32
        assert summary["states"] == {"done": 32}
        assert set(summary["statuses"]) <= {"200", "202"}
        # with 32 requests over <=5 distinct specs, reuse dominates:
        # everything after the first computation of a spec is a
        # coalesced join or a store hit
        distinct = schedule_stats(schedule)["distinct_specs"]
        assert stats["stats"]["computed"] == distinct
        reused = (stats["stats"]["coalesced"]
                  + stats["stats"]["hits_l1"] + stats["stats"]["hits_l2"])
        assert reused == 32 - distinct
        assert reused / 32 > 0.8  # the acceptance bar


def regenerate():
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    schedule = build_schedule(**GOLDEN_PARAMS)
    GOLDEN_PATH.write_text(json.dumps(schedule, indent=1,
                                      sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} "
          f"({len(schedule['requests'])} requests)")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        sys.path.insert(0, str(
            pathlib.Path(__file__).resolve().parents[1] / "src"))
        regenerate()
    else:
        print("usage: python tests/test_loadgen.py --regenerate",
              file=sys.stderr)
        sys.exit(2)
