"""Work programs and the dynamic scheduler (paper Sec. 3.3).

A :class:`WorkProgram` is the processing-order sequence of :class:`WorkItem`
fragments of A — one item per row in the default case; reordered and/or
split into subrows by the Sec. 4 preprocessing. The :class:`Scheduler`
expands items into task trees, tracks dependencies, bounds the partial-output
footprint, and hands dispatchable tasks to the simulator in priority order
(row order first, then higher tree levels).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tasks import Task, TaskInput, build_task_tree, _task_ids
from repro.matrices.csr import CsrMatrix


@dataclass(frozen=True)
class WorkItem:
    """One schedulable fragment of A: a full row or a coordinate-space subrow.

    Attributes:
        row: Output row of C this fragment contributes to.
        part: Subrow index within the row (0 when the row is untiled).
        num_parts: Total subrows of the row (1 when untiled).
        coords: Column coordinates of the fragment (B row ids).
        values: Matching values of A.
    """

    row: int
    part: int
    num_parts: int
    coords: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        return len(self.coords)


@dataclass
class WorkProgram:
    """The processing-order sequence of work items for one spMspM.

    Attributes:
        items: Fragments of A in the order the scheduler consumes them.
        num_rows: Rows of A (= rows of C).
        num_cols: Columns of A (= rows of B).
    """

    items: List[WorkItem]
    num_rows: int
    num_cols: int

    @staticmethod
    def from_matrix(a: CsrMatrix) -> "WorkProgram":
        """The identity program: one item per nonempty row, in row order."""
        items = []
        for row in range(a.num_rows):
            start, end = a.offsets[row], a.offsets[row + 1]
            if start == end:
                continue
            items.append(WorkItem(
                row=row, part=0, num_parts=1,
                coords=a.coords[start:end], values=a.values[start:end],
            ))
        return WorkProgram(items, a.num_rows, a.num_cols)

    def validate_against(self, a: CsrMatrix) -> None:
        """Check the program covers exactly A's nonzeros (test helper)."""
        seen: Dict[int, int] = {}
        for item in self.items:
            seen[item.row] = seen.get(item.row, 0) + item.nnz
        for row in range(a.num_rows):
            expected = a.row_nnz(row)
            if seen.get(row, 0) != expected:
                raise ValueError(
                    f"program covers {seen.get(row, 0)} nonzeros of row "
                    f"{row}, matrix has {expected}"
                )


class Scheduler:
    """Expands work items into tasks and dispatches them dynamically.

    Args:
        program: The work program (possibly preprocessed).
        radix: PE merger radix.
        multi_pe: When True (default), tasks from one row may run on any PE;
            when False, each row is bound to a single PE (the Fig. 20
            ablation).
        max_outstanding_partials: Bound on live partial output fibers
            (the paper limits this to twice the PE count, Sec. 3.4).
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; when set,
            every dispatch samples the ready-queue depth and the live
            partial-fiber count (``sched/*`` histograms).
    """

    def __init__(
        self,
        program: WorkProgram,
        radix: int,
        multi_pe: bool = True,
        max_outstanding_partials: int = 64,
        metrics=None,
    ) -> None:
        self.program = program
        self.radix = radix
        self.multi_pe = multi_pe
        self.max_outstanding_partials = max_outstanding_partials
        self.metrics = metrics
        self._item_cursor = 0
        self._order_counter = itertools.count()
        self._ready: List[Tuple[Tuple[int, int, int], Task]] = []
        self._waiting: Dict[int, Task] = {}
        self._dep_count: Dict[int, int] = {}
        self._dependents: Dict[int, List[int]] = {}
        self.outstanding_partials = 0
        self._completed: set = set()
        # Multi-part rows: row -> (root task ids seen, items seen).
        self._row_parts: Dict[int, List[int]] = {}
        self._row_parts_seen: Dict[int, int] = {}
        self.tasks_created = 0
        self.items_consumed = 0

    # ------------------------------------------------------------------
    # Item expansion
    # ------------------------------------------------------------------
    def _expand_next_item(self) -> bool:
        """Expand one more work item into tasks. Returns False when done."""
        if self._item_cursor >= len(self.program.items):
            return False
        item = self.program.items[self._item_cursor]
        self._item_cursor += 1
        self.items_consumed += 1
        order = next(self._order_counter)
        emit_final = item.num_parts == 1
        tree = build_task_tree(
            row=item.row,
            b_rows=item.coords,
            scales=item.values,
            radix=self.radix,
            row_order=order,
            emit_final=emit_final,
        )
        self._register_tasks(tree)
        if item.num_parts > 1:
            root = tree[-1]
            parts = self._row_parts.setdefault(item.row, [])
            parts.append(root.task_id)
            seen = self._row_parts_seen.get(item.row, 0) + 1
            self._row_parts_seen[item.row] = seen
            if seen == item.num_parts:
                self._emit_combine_tasks(item.row, parts, order)
        return True

    def _emit_combine_tasks(
        self, row: int, part_task_ids: List[int], order: int
    ) -> None:
        """Create the tree combining a tiled row's subrow partials."""
        ids = list(part_task_ids)
        level = 1
        while len(ids) > self.radix:
            next_ids: List[int] = []
            for lo in range(0, len(ids), self.radix):
                group = ids[lo:lo + self.radix]
                task = Task(
                    task_id=next(_task_ids),
                    row=row,
                    level=level,
                    inputs=[TaskInput("partial", i, 1.0) for i in group],
                    is_final=False,
                    row_order=order,
                )
                self._register_tasks([task])
                next_ids.append(task.task_id)
            ids = next_ids
            level += 1
        final = Task(
            task_id=next(_task_ids),
            row=row,
            level=level,
            inputs=[TaskInput("partial", i, 1.0) for i in ids],
            is_final=True,
            row_order=order,
        )
        self._register_tasks([final])
        del self._row_parts[row]
        del self._row_parts_seen[row]

    def _register_tasks(self, tree: Sequence[Task]) -> None:
        push = heapq.heappush
        ready = self._ready
        for task in tree:
            self.tasks_created += 1
            if task.level == 0:
                # Leaves consume only B rows (build_task_tree invariant),
                # so they are dispatchable immediately; skip the dep scan.
                push(ready, ((task.row_order, 0, task.task_id), task))
                continue
            deps = [
                inp.index for inp in task.inputs
                if inp.kind == "partial" and inp.index not in self._completed
            ]
            if deps:
                self._dep_count[task.task_id] = len(deps)
                self._waiting[task.task_id] = task
                for dep in deps:
                    self._dependents.setdefault(dep, []).append(task.task_id)
            else:
                heapq.heappush(self._ready, (task.priority_key(), task))

    # ------------------------------------------------------------------
    # Dispatch interface
    # ------------------------------------------------------------------
    def refill(self, pending_target: int, allow_force: bool = True) -> None:
        """Expand items until enough tasks are in flight or limits bind.

        The partial-output budget (Sec. 3.4) throttles expansion. With
        ``allow_force`` (no other way to make progress), one more item is
        always expanded so forward progress is guaranteed even when the
        budget is exhausted by blocked tree tasks.
        """
        while (
            len(self._ready) < pending_target
            and self.outstanding_partials < self.max_outstanding_partials
        ):
            if not self._expand_next_item():
                break
        while (allow_force and not self._ready
               and self._item_cursor < len(self.program.items)):
            self._expand_next_item()

    def next_task(self) -> Optional[Task]:
        """Pop the highest-priority dispatchable task, if any.

        Dispatching a non-final task brings one more partial output fiber
        into existence, which is what the Sec. 3.4 budget counts.
        """
        if self._ready:
            task = heapq.heappop(self._ready)[1]
            if not task.is_final:
                self.outstanding_partials += 1
            if self.metrics is not None:
                self.metrics.histogram("sched/ready_depth").observe(
                    len(self._ready))
                self.metrics.histogram(
                    "sched/outstanding_partials").observe(
                    self.outstanding_partials)
            return task
        return None

    def task_completed(self, task: Task) -> None:
        """Notify completion: unblocks dependents, frees partial budget."""
        self._completed.add(task.task_id)
        for dependent_id in self._dependents.pop(task.task_id, ()):
            remaining = self._dep_count[dependent_id] - 1
            if remaining:
                self._dep_count[dependent_id] = remaining
            else:
                del self._dep_count[dependent_id]
                dependent = self._waiting.pop(dependent_id)
                heapq.heappush(
                    self._ready, (dependent.priority_key(), dependent)
                )

    def partial_consumed(self, count: int = 1) -> None:
        """A partial output fiber was consumed; release its budget slot."""
        self.outstanding_partials -= count
        if self.outstanding_partials < 0:
            raise RuntimeError("partial-output accounting went negative")

    @property
    def exhausted(self) -> bool:
        """True when every item was expanded and every task dispatched."""
        return (
            self._item_cursor >= len(self.program.items)
            and not self._ready
            and not self._waiting
        )

    def has_blocked_tasks(self) -> bool:
        return bool(self._waiting)
