"""Fig. 21: roofline analysis.

Paper: almost all matrices sit at or very close to the roofline — the
system is driven to saturation; a few (gupta2, Ge87H76, Ge99H100) fall
below because they alternate memory- and compute-bound phases.
"""


def test_fig21(run_figure):
    result = run_figure("fig21")
    points = result["points"]
    efficiencies = [p.efficiency for p in points]
    on_roof = sum(1 for e in efficiencies if e > 0.8)
    # Almost all points hug the roof.
    assert on_roof / len(points) > 0.6
    # Both memory-bound and compute-bound regions are populated.
    from repro.analysis.roofline import ridge_intensity
    from repro.experiments import scaled_gamma_config

    ridge = ridge_intensity(scaled_gamma_config())
    assert any(p.intensity < ridge for p in points)
    assert any(p.intensity > ridge for p in points)
