#!/usr/bin/env python
"""Pinned hot-path benchmark: the perf trajectory of the simulator kernels.

Times the two rebuilt hot paths (batched FiberCache primitives, array
merge/combine kernels) plus end-to-end simulator runs on seeded suite
matrices, and writes a schema-versioned JSON so successive commits can
be compared number-for-number.

Every workload is pinned: matrices come from the seeded generator suite
(``repro.matrices.suite``), kernel traces from fixed-seed RNGs. The
script depends only on API that exists at the parent commit, so the
*same harness* can be pointed at an older tree to record a baseline::

    PYTHONPATH=old-tree/src python scripts/bench_hotpath.py \
        --label before --out /tmp/before.json
    PYTHONPATH=src python scripts/bench_hotpath.py \
        --label after --out /tmp/after.json
    python scripts/bench_hotpath.py --combine /tmp/before.json \
        /tmp/after.json --out BENCH_hotpath.json

On trees that predate the batched cache primitives, the cache-kernel
workload replays the identical address trace through the scalar
fetch/read/write/consume calls — exactly what ``_execute_task`` did
before the rewrite, which is the comparison the rewrite claims to win.

``--quick`` shrinks every workload for the CI smoke job (crash check
only; quick numbers are not comparable to full runs).
"""

import argparse
import json
import platform
import random
import subprocess
import sys
import time
from pathlib import Path

SCHEMA_VERSION = 3

REPO_ROOT = Path(__file__).resolve().parent.parent
try:  # PYTHONPATH wins so a baseline tree can be benchmarked; fall back
    import repro  # noqa: F401  # to this repo's src for plain invocations.
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))


# ----------------------------------------------------------------------
# Kernel workloads
# ----------------------------------------------------------------------
def bench_cache_ranges(quick: bool) -> dict:
    """Replay a seeded task-shaped address trace through the FiberCache.

    The trace mirrors ``_execute_task``: a few B-row fetch+read ranges
    and partial consume ranges per task, then one partial write range.
    Batched trees process each range in one call; older trees replay it
    line by line through the scalar primitives (bit-identical state, per
    the lockstep suite — only the wall clock differs).
    """
    from repro.config import GammaConfig
    from repro.core import FiberCache

    config = GammaConfig(num_pes=8, fibercache_bytes=48 * 1024,
                         fibercache_ways=16, fibercache_banks=48)
    cache = FiberCache(config)
    rng = random.Random(0xF1BE)
    num_tasks = 400 if quick else 20000
    # Slightly under cache capacity (768 lines): real task traces mostly
    # hit (B-row reuse is the point of the FiberCache), and on misses
    # both eras pay the same eviction scan, which would mask the
    # per-line-call overhead this workload exists to measure.
    addr_space = 640
    trace = []
    for _ in range(num_tasks):
        for _ in range(rng.randint(2, 4)):
            lo = rng.randrange(addr_space)
            trace.append(("fr", lo, lo + rng.randint(1, 40)))
        if rng.random() < 0.3:
            lo = rng.randrange(addr_space)
            trace.append(("c", lo, lo + rng.randint(1, 8)))
        lo = rng.randrange(addr_space)
        trace.append(("w", lo, lo + rng.randint(1, 12)))

    batched = hasattr(cache, "fetch_read_range")
    lines = sum(hi - lo for _, lo, hi in trace)
    start = time.perf_counter()
    if batched:
        for kind, lo, hi in trace:
            if kind == "fr":
                cache.fetch_read_range(lo, hi, "B")
            elif kind == "c":
                cache.consume_range(lo, hi)
            else:
                cache.write_range(lo, hi, "partial")
    else:
        for kind, lo, hi in trace:
            if kind == "fr":
                for addr in range(lo, hi):
                    cache.fetch(addr, "B")
                for addr in range(lo, hi):
                    cache.read(addr, "B")
            elif kind == "c":
                for addr in range(lo, hi):
                    cache.consume(addr)
            else:
                for addr in range(lo, hi):
                    cache.write(addr, "partial")
    wall = time.perf_counter() - start
    return {
        "name": "kernel/cache_task_ranges",
        "kind": "kernel",
        "wall_s": wall,
        "items": lines,
        "items_per_s": lines / wall if wall else None,
        "detail": {"tasks": num_tasks, "batched_api": batched,
                   "misses": cache.stats.fetch_misses
                   + cache.stats.read_misses},
    }


def bench_merger(quick: bool) -> dict:
    """Radix-64 merges over seeded strictly-increasing streams."""
    import numpy as np

    from repro.core import HighRadixMerger

    rng = np.random.RandomState(0x3E6E)
    merger = HighRadixMerger(64)
    ways = 64
    per_stream = 100 if quick else 1500
    reps = 2 if quick else 20
    streams = [
        np.cumsum(rng.randint(1, 6, size=per_stream)).astype(np.int64)
        for _ in range(ways)
    ]
    total = ways * per_stream * reps
    start = time.perf_counter()
    merged = None
    for _ in range(reps):
        merged = merger.merge(streams)
    wall = time.perf_counter() - start
    return {
        "name": "kernel/merge_radix64",
        "kind": "kernel",
        "wall_s": wall,
        "items": total,
        "items_per_s": total / wall if wall else None,
        "detail": {"ways": ways, "per_stream": per_stream, "reps": reps,
                   "merged_len": len(merged)},
    }


def bench_combine(quick: bool) -> dict:
    """linear_combine over seeded fiber batches, all three semirings."""
    import numpy as np

    from repro.matrices.fiber import Fiber, linear_combine
    from repro.semiring import BOOLEAN, TROPICAL_MIN

    rng = np.random.RandomState(0xC0B1)

    def make_fibers(count, length):
        fibers = []
        for _ in range(count):
            coords = np.cumsum(rng.randint(1, 8, size=length))
            values = rng.rand(length) + 0.5
            fibers.append(Fiber(coords.astype(np.int64), values,
                                check=False))
        return fibers

    reps = 2 if quick else 60
    batches = [
        ("arith_large", make_fibers(64, 200), None),
        ("arith_small", make_fibers(8, 12), None),
        ("tropical_large", make_fibers(64, 200), TROPICAL_MIN),
        ("boolean_large", make_fibers(64, 200), BOOLEAN),
    ]
    total = 0
    start = time.perf_counter()
    for _, fibers, semiring in batches:
        scales = [1.0 + 0.25 * i for i in range(len(fibers))]
        for _ in range(reps):
            linear_combine(fibers, scales, semiring=semiring)
            total += sum(len(f) for f in fibers)
    wall = time.perf_counter() - start
    return {
        "name": "kernel/linear_combine",
        "kind": "kernel",
        "wall_s": wall,
        "items": total,
        "items_per_s": total / wall if wall else None,
        "detail": {"batches": [b[0] for b in batches], "reps": reps},
    }


# ----------------------------------------------------------------------
# End-to-end model points
# ----------------------------------------------------------------------
#: (matrix, semiring name or None, detailed PE model). Matrices come
#: from the seeded generator suite, so every run sees identical operands.
MODEL_POINTS = [
    ("wiki-Vote", None, False),
    ("p2p-Gnutella31", None, False),
    ("m133-b3", None, False),
    ("webbase-1M", None, False),
    ("wiki-Vote", "boolean", False),
    ("roadNet-CA", "tropical_min", False),
    ("wiki-Vote", None, True),
    ("web-Google", None, True),
]

QUICK_MODEL_POINTS = [
    ("wiki-Vote", None, False),
    ("wiki-Vote", "tropical_min", False),
    ("wiki-Vote", None, True),
]


#: Subset re-run through the preserved event-ordered engine
#: (``model-ref/*`` rows) so a single report shows the in-tree engine
#: gap next to the cross-commit trajectory. Trees that predate
#: ``gamma-ref`` simply skip these rows (combine matches by name).
REF_MODEL_POINTS = [
    ("wiki-Vote", None, False),
    ("m133-b3", None, False),
    ("webbase-1M", None, False),
]

#: Deep-tree points: (matrix, num_pes, radix). A small PE radix forces
#: multi-level task trees on large suite matrices, so interior merge
#: tasks and root emits dominate the dispatch mix — the scalar tail the
#: interior-cohort epochs eliminate. Both engines run every point
#: (``model-deep/*`` and ``model-ref-deep/*`` rows); the batched rows
#: carry the engine's dispatch split in their detail blob.
DEEP_MODEL_POINTS = [
    ("webbase-1M", 8, 4),
    ("roadNet-CA", 8, 2),
]

QUICK_DEEP_MODEL_POINTS = [
    ("wiki-Vote", 4, 2),
]


def bench_models(quick: bool) -> list:
    import dataclasses

    from repro.core import GammaSimulator
    from repro.engine.defaults import scaled_gamma_config
    from repro.matrices import suite
    from repro.semiring import BOOLEAN, TROPICAL_MIN

    try:
        from repro.core import ReferenceGammaSimulator
    except ImportError:  # baseline tree: single-engine simulator only
        ReferenceGammaSimulator = None

    semirings = {"boolean": BOOLEAN, "tropical_min": TROPICAL_MIN}
    config = scaled_gamma_config()
    points = [("model/gamma", GammaSimulator, p)
              for p in (QUICK_MODEL_POINTS if quick else MODEL_POINTS)]
    if ReferenceGammaSimulator is not None and not quick:
        points += [("model-ref/gamma", ReferenceGammaSimulator, p)
                   for p in REF_MODEL_POINTS]
    results = []
    for prefix, simulator_class, (matrix, semiring_name, detailed) in points:
        a, b = suite.operands(matrix)
        point_config = (dataclasses.replace(config, detailed_pe_model=True)
                        if detailed else config)
        semiring = semirings.get(semiring_name)
        start = time.perf_counter()
        result = simulator_class(point_config, semiring=semiring,
                                 keep_output=False).run(a, b)
        wall = time.perf_counter() - start
        tag = semiring_name or "arith"
        if detailed:
            tag += "+detailed"
        detail = {"matrix": matrix, "semiring": semiring_name,
                  "detailed_pe": detailed,
                  "cycles": result.cycles,
                  "tasks": result.num_tasks}
        dispatch = getattr(result, "dispatch", None)
        if dispatch is not None:
            detail["dispatch"] = dict(dispatch)
            detail["scalar_dispatch_fraction"] = getattr(
                result, "scalar_dispatch_fraction", None)
        results.append({
            "name": f"{prefix}/{matrix}/{tag}",
            "kind": "model",
            "wall_s": wall,
            "items": result.num_tasks,
            "items_per_s": result.num_tasks / wall if wall else None,
            "detail": detail,
        })
    return results


def bench_deep_models(quick: bool) -> list:
    """Deep-task-tree points: small radix, interior-dominated dispatch."""
    import dataclasses

    from repro.core import GammaSimulator
    from repro.engine.defaults import scaled_gamma_config
    from repro.matrices import suite

    try:
        from repro.core import ReferenceGammaSimulator
    except ImportError:  # baseline tree: single-engine simulator only
        ReferenceGammaSimulator = None

    base = scaled_gamma_config()
    deep_points = QUICK_DEEP_MODEL_POINTS if quick else DEEP_MODEL_POINTS
    points = [("model-deep/gamma", GammaSimulator, p) for p in deep_points]
    if ReferenceGammaSimulator is not None:
        points += [("model-ref-deep/gamma", ReferenceGammaSimulator, p)
                   for p in deep_points]
    results = []
    for prefix, simulator_class, (matrix, num_pes, radix) in points:
        a, b = suite.operands(matrix)
        config = dataclasses.replace(base, num_pes=num_pes, radix=radix)
        start = time.perf_counter()
        result = simulator_class(config, keep_output=False).run(a, b)
        wall = time.perf_counter() - start
        detail = {"matrix": matrix, "num_pes": num_pes, "radix": radix,
                  "cycles": result.cycles, "tasks": result.num_tasks}
        dispatch = getattr(result, "dispatch", None)
        if dispatch is not None:
            detail["dispatch"] = dict(dispatch)
            detail["scalar_dispatch_fraction"] = getattr(
                result, "scalar_dispatch_fraction", None)
        results.append({
            "name": f"{prefix}/{matrix}/pes{num_pes}-radix{radix}",
            "kind": "model",
            "wall_s": wall,
            "items": result.num_tasks,
            "items_per_s": result.num_tasks / wall if wall else None,
            "detail": detail,
        })
    return results


#: SpMV points: (matrix, operand shape). The ``gamma-spmv`` model runs
#: the same epoch core on a 1-column operand, so these rows track the
#: degenerate-workload path (tiny fibers, scheduler-dominated).
SPMV_MODEL_POINTS = [
    ("wiki-Vote", "sparse-vector"),
    ("p2p-Gnutella31", "dense-vector"),
]

QUICK_SPMV_MODEL_POINTS = [
    ("wiki-Vote", "sparse-vector"),
]


def bench_spmv_models(quick: bool) -> list:
    """SpMV rows (``model-spmv/*``); older trees without the model skip
    them (combine matches by name)."""
    from repro.engine.defaults import scaled_gamma_config
    from repro.matrices import suite

    try:
        from repro.baselines.spmv import run_gamma_spmv
    except ImportError:  # baseline tree: SpGEMM-only
        return []

    config = scaled_gamma_config()
    results = []
    points = QUICK_SPMV_MODEL_POINTS if quick else SPMV_MODEL_POINTS
    for matrix, operand in points:
        a, b = suite.operands(matrix)
        start = time.perf_counter()
        result = run_gamma_spmv(a, b, config, operand=operand)
        wall = time.perf_counter() - start
        results.append({
            "name": f"model-spmv/gamma-spmv/{matrix}/{operand}",
            "kind": "model",
            "wall_s": wall,
            "items": result.num_tasks,
            "items_per_s": result.num_tasks / wall if wall else None,
            "detail": {"matrix": matrix, "operand": operand,
                       "cycles": result.cycles,
                       "tasks": result.num_tasks},
        })
    return results


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def run_bench(label: str, quick: bool) -> dict:
    points = []
    points.append(bench_cache_ranges(quick))
    points.append(bench_merger(quick))
    points.append(bench_combine(quick))
    points.extend(bench_models(quick))
    points.extend(bench_deep_models(quick))
    points.extend(bench_spmv_models(quick))
    total = sum(p["wall_s"] for p in points)
    return {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "quick": quick,
        "commit": git_commit(),
        "python": platform.python_version(),
        "points": points,
        "aggregate": {"wall_s_total": total},
    }


def combine(before_path: str, after_path: str,
            previous_path: str = None) -> dict:
    """Merge two reports into a trajectory; archive any prior trajectory.

    Matched points (by name) are compared one-for-one, with per-kind
    subtotals — ``by_prefix['model']`` is the headline number for an
    engine rewrite, since the kernel rows amplify isolated primitives.
    When ``previous_path`` holds an older trajectory (the normal case:
    ``--out BENCH_hotpath.json`` over the committed file), its summary
    is appended to ``history`` so the file accumulates one entry per
    optimization PR instead of overwriting the record.
    """
    with open(before_path) as handle:
        before = json.load(handle)
    with open(after_path) as handle:
        after = json.load(handle)
    after_by_name = {p["name"]: p for p in after["points"]}
    per_point = []
    by_prefix = {}
    for point in before["points"]:
        new = after_by_name.get(point["name"])
        if new is None:
            continue
        per_point.append({
            "name": point["name"],
            "kind": point["kind"],
            "before_wall_s": point["wall_s"],
            "after_wall_s": new["wall_s"],
            "speedup": (point["wall_s"] / new["wall_s"]
                        if new["wall_s"] else None),
        })
        prefix = point["name"].split("/", 1)[0]
        bucket = by_prefix.setdefault(
            prefix, {"before_wall_s": 0.0, "after_wall_s": 0.0})
        bucket["before_wall_s"] += point["wall_s"]
        bucket["after_wall_s"] += new["wall_s"]
    for bucket in by_prefix.values():
        bucket["speedup"] = (
            bucket["before_wall_s"] / bucket["after_wall_s"]
            if bucket["after_wall_s"] else None)
    before_total = before["aggregate"]["wall_s_total"]
    after_total = after["aggregate"]["wall_s_total"]
    history = []
    if previous_path:
        try:
            with open(previous_path) as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            previous = None
        if previous and previous.get("kind") == "hotpath-trajectory":
            history = list(previous.get("history", ()))
            old = previous.get("comparison", {})
            history.append({
                "before_label": previous.get("before", {}).get("label"),
                "after_label": previous.get("after", {}).get("label"),
                "before_commit": previous.get("before", {}).get("commit"),
                "after_commit": previous.get("after", {}).get("commit"),
                "before_wall_s_total": old.get("before_wall_s_total"),
                "after_wall_s_total": old.get("after_wall_s_total"),
                "aggregate_speedup": old.get("aggregate_speedup"),
            })
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "hotpath-trajectory",
        "before": before,
        "after": after,
        "history": history,
        "comparison": {
            "per_point": per_point,
            "by_prefix": by_prefix,
            "before_wall_s_total": before_total,
            "after_wall_s_total": after_total,
            "aggregate_speedup": (before_total / after_total
                                  if after_total else None),
        },
    }


def guard_deep(pinned_path: str, threshold: float = 0.9) -> int:
    """CI regression guard over the deep-tree model rows.

    Re-runs every ``DEEP_MODEL_POINTS`` entry through both engines on
    the current tree and compares each point's engine-speed ratio
    (reference wall / batched wall) against the same ratio in the
    pinned trajectory's ``after`` report. The ratio form makes the
    check machine-independent — CI runners and the pinning machine
    never share absolute wall clocks — while still failing when the
    batched engine's deep-tree rows regress more than ``1 - threshold``
    relative to the reference engine. Returns a process exit code.
    """
    with open(pinned_path) as handle:
        pinned = json.load(handle)
    if pinned.get("kind") == "hotpath-trajectory":
        pinned_points = pinned["after"]["points"]
    else:
        pinned_points = pinned["points"]
    pinned_by_name = {p["name"]: p for p in pinned_points}

    fresh = {p["name"]: p for p in bench_deep_models(quick=False)}
    failures = []
    checked = 0
    for matrix, num_pes, radix in DEEP_MODEL_POINTS:
        suffix = f"gamma/{matrix}/pes{num_pes}-radix{radix}"
        names = (f"model-deep/{suffix}", f"model-ref-deep/{suffix}")
        pinned_pair = [pinned_by_name.get(name) for name in names]
        fresh_pair = [fresh.get(name) for name in names]
        if None in pinned_pair:
            print(f"guard-deep: {suffix}: not in pinned entry, skipping",
                  file=sys.stderr)
            continue
        if None in fresh_pair:
            failures.append(f"{suffix}: missing from fresh run")
            continue
        pinned_ratio = (pinned_pair[1]["wall_s"]
                        / pinned_pair[0]["wall_s"])
        fresh_ratio = fresh_pair[1]["wall_s"] / fresh_pair[0]["wall_s"]
        checked += 1
        verdict = "ok"
        if fresh_ratio < threshold * pinned_ratio:
            verdict = "REGRESSION"
            failures.append(
                f"{suffix}: ref/batched ratio {fresh_ratio:.2f} < "
                f"{threshold:.2f} x pinned {pinned_ratio:.2f}")
        print(f"guard-deep: {suffix}: pinned ratio {pinned_ratio:.2f}, "
              f"fresh {fresh_ratio:.2f} ({verdict})", file=sys.stderr)
    if failures:
        print("guard-deep: FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    if not checked:
        print("guard-deep: FAIL: no deep-tree rows checked (pinned entry "
              "predates the deep points?)", file=sys.stderr)
        return 1
    print(f"guard-deep: OK ({checked} points)", file=sys.stderr)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="current",
                        help="label stored in the report (e.g. a commit)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny workloads for the CI smoke job")
    parser.add_argument("--combine", nargs=2,
                        metavar=("BEFORE", "AFTER"),
                        help="merge two reports into a trajectory file")
    parser.add_argument("--guard-deep", metavar="PINNED",
                        help="regression-check the deep-tree rows against "
                             "a pinned trajectory; exits 1 on regression")
    args = parser.parse_args()

    if args.guard_deep:
        return guard_deep(args.guard_deep)

    if args.combine:
        report = combine(*args.combine, previous_path=args.out)
        comparison = report["comparison"]
        summary = (
            f"aggregate: {comparison['before_wall_s_total']:.3f}s -> "
            f"{comparison['after_wall_s_total']:.3f}s "
            f"({comparison['aggregate_speedup']:.2f}x)"
        )
        for prefix, bucket in sorted(comparison["by_prefix"].items()):
            summary += (
                f"; {prefix}: {bucket['before_wall_s']:.3f}s -> "
                f"{bucket['after_wall_s']:.3f}s "
                f"({bucket['speedup']:.2f}x)")
    else:
        report = run_bench(args.label, args.quick)
        for point in report["points"]:
            print(f"{point['name']:44s} {point['wall_s']:8.3f}s",
                  file=sys.stderr)
        summary = (
            f"total {report['aggregate']['wall_s_total']:.3f}s "
            f"({len(report['points'])} points, label={args.label})"
        )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}: {summary}", file=sys.stderr)
    else:
        print(text)
        print(summary, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
