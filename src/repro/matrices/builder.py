"""Incremental COO builder that assembles CsrMatrix instances.

Generators and the Matrix Market reader accumulate (row, col, value) triples
here; ``build()`` sorts, deduplicates (summing), and emits CSR.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.matrices.csr import CsrMatrix


class CooBuilder:
    """Accumulates coordinate triples and builds a CsrMatrix.

    Args:
        num_rows: Matrix row count.
        num_cols: Matrix column count.
    """

    def __init__(self, num_rows: int, num_cols: int) -> None:
        if num_rows < 0 or num_cols < 0:
            raise ValueError(f"negative shape ({num_rows}, {num_cols})")
        self.num_rows = num_rows
        self.num_cols = num_cols
        self._rows: list = []
        self._cols: list = []
        self._vals: list = []

    def add(self, row: int, col: int, value: float) -> None:
        """Add one entry; duplicates are summed at build time."""
        if not (0 <= row < self.num_rows):
            raise IndexError(f"row {row} out of range [0, {self.num_rows})")
        if not (0 <= col < self.num_cols):
            raise IndexError(f"col {col} out of range [0, {self.num_cols})")
        self._rows.append(row)
        self._cols.append(col)
        self._vals.append(value)

    def add_many(
        self,
        rows: Iterable[int] | np.ndarray,
        cols: Iterable[int] | np.ndarray,
        values: Iterable[float] | np.ndarray,
    ) -> None:
        """Vectorized bulk insertion."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (len(rows) == len(cols) == len(values)):
            raise ValueError("rows/cols/values length mismatch")
        if len(rows):
            if rows.min() < 0 or rows.max() >= self.num_rows:
                raise IndexError("row index out of range")
            if cols.min() < 0 or cols.max() >= self.num_cols:
                raise IndexError("col index out of range")
        self._rows.extend(rows.tolist())
        self._cols.extend(cols.tolist())
        self._vals.extend(values.tolist())

    @property
    def num_entries(self) -> int:
        """Entries added so far (before deduplication)."""
        return len(self._rows)

    def build(self, drop_zeros: bool = True) -> CsrMatrix:
        """Sort, merge duplicates, and emit a CsrMatrix.

        Args:
            drop_zeros: Remove entries whose merged value is exactly zero.
        """
        rows = np.asarray(self._rows, dtype=np.int64)
        cols = np.asarray(self._cols, dtype=np.int64)
        vals = np.asarray(self._vals, dtype=np.float64)
        if len(rows) == 0:
            offsets = np.zeros(self.num_rows + 1, dtype=np.int64)
            return CsrMatrix((self.num_rows, self.num_cols), offsets,
                             rows, vals, check=False)
        keys = rows * self.num_cols + cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = vals[order]
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        merged = np.zeros(len(unique_keys), dtype=np.float64)
        np.add.at(merged, inverse, vals)
        out_rows = unique_keys // self.num_cols
        out_cols = unique_keys % self.num_cols
        if drop_zeros:
            keep = merged != 0.0
            out_rows, out_cols, merged = (
                out_rows[keep], out_cols[keep], merged[keep]
            )
        counts = np.bincount(out_rows, minlength=self.num_rows)
        offsets = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return CsrMatrix((self.num_rows, self.num_cols), offsets,
                         out_cols, merged, check=False)


def random_values(
    rng: np.random.Generator, count: int, low: float = 0.1, high: float = 1.0
) -> np.ndarray:
    """Uniform nonzero values in [low, high); avoids accidental zeros."""
    if low <= 0:
        raise ValueError("low must be positive to guarantee nonzeros")
    return rng.uniform(low, high, size=count)


def matrix_from_coo(
    num_rows: int,
    num_cols: int,
    triples: Iterable[Tuple[int, int, float]],
) -> CsrMatrix:
    """One-shot assembly from an iterable of (row, col, value)."""
    builder = CooBuilder(num_rows, num_cols)
    for row, col, value in triples:
        builder.add(row, col, value)
    return builder.build()
