"""Scalar reference model for the FiberCache (the lockstep oracle).

This is the original dict-of-sets, one-Python-call-per-line FiberCache
implementation, kept verbatim as the authoritative statement of the
replacement semantics (fetch++/read-- priority counters, SRRIP
tie-break aging, insertion-order victim selection). The production
:class:`repro.core.fibercache.FiberCache` re-represents the same state
as set-major slot arrays and processes whole address ranges per call;
the Hypothesis lockstep suite (tests/test_fibercache_lockstep.py)
replays random operation sequences against both and requires identical
stats, occupancy, miss lines, per-bank tables, residency, per-line
replacement state, and eviction victims at every step.

When changing cache semantics: change *this* model first (it is the
easiest to reason about), then make the batched implementation match.
See docs/architecture.md §10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import GammaConfig
from repro.core.fibercache import (
    _PRIORITY_MAX,
    _RRPV_INSERT,
    _RRPV_MAX,
    CacheStats,
)


class _Line:
    """One resident cache line."""

    __slots__ = ("addr", "category", "priority", "rrpv", "dirty")

    def __init__(self, addr: int, category: str) -> None:
        self.addr = addr
        self.category = category
        self.priority = 0
        self.rrpv = _RRPV_INSERT
        self.dirty = False


class ReferenceFiberCache:
    """Dict-of-sets scalar FiberCache: slow, obviously-correct oracle."""

    def __init__(self, config: GammaConfig) -> None:
        self.config = config
        self.num_sets = config.fibercache_sets
        self.num_ways = config.fibercache_ways
        self._sets: List[Dict[int, _Line]] = [
            {} for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()
        self.miss_lines = {"B": 0, "partial": 0}
        self.occupancy = {"B": 0, "partial": 0}
        self.bank_accesses = [0] * config.fibercache_banks
        self.bank_hits = [0] * config.fibercache_banks
        self.bank_misses = [0] * config.fibercache_banks
        self._last_victim: Optional[_Line] = None

    # ------------------------------------------------------------------
    # Scalar primitives (the semantic ground truth)
    # ------------------------------------------------------------------
    def fetch(self, addr: int, category: str = "B") -> bool:
        if category not in self.miss_lines:
            raise ValueError(f"unknown line category {category!r}")
        bank = addr % len(self.bank_accesses)
        self.bank_accesses[bank] += 1
        line_set = self._sets[addr % self.num_sets]
        line = line_set.get(addr)
        if line is not None:
            self.stats.fetch_hits += 1
            self.bank_hits[bank] += 1
            if line.priority < _PRIORITY_MAX:
                line.priority += 1
            line.rrpv = 0
            return False
        self.stats.fetch_misses += 1
        self.bank_misses[bank] += 1
        self.miss_lines[category] += 1
        line = self._install(addr, category)
        line.priority = 1
        return True

    def read(self, addr: int, category: str = "B") -> bool:
        if category not in self.miss_lines:
            raise ValueError(f"unknown line category {category!r}")
        bank = addr % len(self.bank_accesses)
        self.bank_accesses[bank] += 1
        line_set = self._sets[addr % self.num_sets]
        line = line_set.get(addr)
        if line is not None:
            self.stats.read_hits += 1
            self.bank_hits[bank] += 1
            if line.priority > 0:
                line.priority -= 1
            line.rrpv = 0
            return False
        self.stats.read_misses += 1
        self.bank_misses[bank] += 1
        self.miss_lines[category] += 1
        line = self._install(addr, category)
        line.priority = 0
        return True

    def write(self, addr: int, category: str = "partial") -> None:
        if category not in self.occupancy:
            raise ValueError(f"unknown line category {category!r}")
        self.bank_accesses[addr % len(self.bank_accesses)] += 1
        self.stats.writes += 1
        line_set = self._sets[addr % self.num_sets]
        line = line_set.get(addr)
        if line is None:
            line = self._install(addr, category)
        line.dirty = True
        line.rrpv = 0

    def consume(self, addr: int) -> bool:
        bank = addr % len(self.bank_accesses)
        self.bank_accesses[bank] += 1
        line_set = self._sets[addr % self.num_sets]
        line = line_set.pop(addr, None)
        if line is not None:
            self.stats.consume_hits += 1
            self.bank_hits[bank] += 1
            self.occupancy[line.category] -= 1
            return False
        self.stats.consume_misses += 1
        self.bank_misses[bank] += 1
        self.miss_lines["partial"] += 1
        return True

    def invalidate(self, addr: int) -> None:
        line_set = self._sets[addr % self.num_sets]
        line = line_set.pop(addr, None)
        if line is not None:
            self.occupancy[line.category] -= 1

    # ------------------------------------------------------------------
    # Range primitives: the batched calls, defined by per-line replay
    # ------------------------------------------------------------------
    def fetch_range(self, lo: int, hi: int,
                    category: str = "B") -> Tuple[int, int]:
        dirty_before = self.stats.dirty_evictions
        misses = 0
        for addr in range(lo, hi):
            if self.fetch(addr, category):
                misses += 1
        return misses, self.stats.dirty_evictions - dirty_before

    def read_range(self, lo: int, hi: int,
                   category: str = "B") -> Tuple[int, int]:
        dirty_before = self.stats.dirty_evictions
        misses = 0
        for addr in range(lo, hi):
            if self.read(addr, category):
                misses += 1
        return misses, self.stats.dirty_evictions - dirty_before

    def fetch_read_range(self, lo: int, hi: int,
                         category: str = "B") -> Tuple[int, int]:
        m1, d1 = self.fetch_range(lo, hi, category)
        m2, d2 = self.read_range(lo, hi, category)
        return m1 + m2, d1 + d2

    def write_range(self, lo: int, hi: int,
                    category: str = "partial") -> Tuple[int, int]:
        dirty_before = self.stats.dirty_evictions
        for addr in range(lo, hi):
            self.write(addr, category)
        return 0, self.stats.dirty_evictions - dirty_before

    def consume_range(self, lo: int, hi: int) -> Tuple[int, int]:
        misses = 0
        for addr in range(lo, hi):
            if self.consume(addr):
                misses += 1
        return misses, 0

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------
    def _install(self, addr: int, category: str) -> _Line:
        line_set = self._sets[addr % self.num_sets]
        if len(line_set) >= self.num_ways:
            self._evict(line_set)
        line = _Line(addr=addr, category=category)
        line_set[addr] = line
        self.occupancy[category] += 1
        return line

    def _evict(self, line_set: Dict[int, _Line]) -> None:
        """Evict the lowest-priority line, SRRIP-aged among ties.

        Ties on (priority, rrpv) resolve to the earliest-installed line:
        dict iteration follows insertion order, and only a strictly
        better candidate displaces the current victim.
        """
        victim = None
        min_priority = _PRIORITY_MAX + 1
        max_rrpv = -1
        for line in line_set.values():
            priority = line.priority
            if priority < min_priority:
                min_priority = priority
                max_rrpv = line.rrpv
                victim = line
            elif priority == min_priority and line.rrpv > max_rrpv:
                max_rrpv = line.rrpv
                victim = line
        if victim.rrpv < _RRPV_MAX:
            aging = _RRPV_MAX - victim.rrpv
            for line in line_set.values():
                if line.priority == min_priority:
                    new_rrpv = line.rrpv + aging
                    line.rrpv = new_rrpv if new_rrpv < _RRPV_MAX else _RRPV_MAX
        if victim.dirty:
            self.stats.dirty_evictions += 1
        else:
            self.stats.clean_evictions += 1
        self.occupancy[victim.category] -= 1
        del line_set[victim.addr]
        self._last_victim = victim

    @property
    def last_victim_category(self) -> Optional[str]:
        victim = self._last_victim
        return victim.category if victim is not None else None

    @property
    def last_victim_was_dirty(self) -> bool:
        victim = self._last_victim
        return bool(victim is not None and victim.dirty)

    @property
    def last_victim_addr(self) -> Optional[int]:
        victim = self._last_victim
        return victim.addr if victim is not None else None

    # ------------------------------------------------------------------
    # Introspection (the slice the lockstep tests compare)
    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        return addr in self._sets[addr % self.num_sets]

    def line_state(self, addr: int) -> Optional[_Line]:
        return self._sets[addr % self.num_sets].get(addr)

    @property
    def resident_lines(self) -> int:
        return self.occupancy["B"] + self.occupancy["partial"]

    @property
    def total_lines(self) -> int:
        return self.num_sets * self.num_ways
