"""Repr-stable number canonicalization for versioned artifacts.

Every figure CSV, Vega-Lite spec, manifest, and roll-up summary is a
*committed, diffable artifact*: two machines generating the same data
must produce the same bytes. Raw floats break that promise in two ways:

* **numpy scalar types** leak into rows (``np.float32``/``np.int64``
  from vectorized kernels). ``json`` refuses them outright, ``str()``
  of a ``float32`` renders differently from the equivalent Python
  float, and a float32 widened to float64 carries noise digits.
* **Low-bit drift**: different BLAS builds / numpy versions can differ
  in the last ulp of a reduction, which would churn every golden file
  for no behavioral reason.

:func:`canonical_number` fixes both: numpy scalars are converted to
built-ins, and floats are rounded to :data:`SIGNIFICANT_DIGITS`
significant digits through the ``repr``-stable shortest-round-trip
formatter (``%.12g`` then ``float()``), so the value that reaches
``json.dumps``/CSV is a plain Python number whose text form is
identical on every platform. 12 significant digits is far above any
quantity the models report meaningfully (cycle counts, byte totals,
gmeans) and far below where cross-library ulp noise lives.

Integral floats stay floats (``2.0`` does not silently become ``2``) so
a column never changes JSON type between rows.
"""

from __future__ import annotations

import math
from typing import Any

#: Significant digits every emitted float is rounded to.
SIGNIFICANT_DIGITS = 12


def canonical_number(value: Any) -> Any:
    """A platform-stable built-in number (or the value unchanged).

    numpy scalars become Python ``int``/``float``/``bool``; floats are
    rounded to :data:`SIGNIFICANT_DIGITS` significant digits. Non-finite
    floats pass through untouched (``json`` handles them consistently).
    Anything that is not a number is returned as-is.
    """
    # bool is an int subclass; keep it a bool (JSON true/false).
    if isinstance(value, bool):
        return value
    if hasattr(value, "item") and not isinstance(value, (int, float)):
        # numpy scalar (float32/float64/int64/bool_...); item() yields
        # the closest built-in.
        try:
            value = value.item()
        except (AttributeError, ValueError):
            return value
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            return value
        return float(f"{value:.{SIGNIFICANT_DIGITS}g}")
    return value


def canonical(obj: Any) -> Any:
    """Recursively canonicalize every number in a JSON-shaped object.

    Dict keys are left alone (artifact keys are strings); tuples come
    back as lists, matching what ``json`` would emit anyway.
    """
    if isinstance(obj, dict):
        return {key: canonical(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(value) for value in obj]
    return canonical_number(obj)


def format_cell(value: Any) -> str:
    """The CSV text of one cell — ``repr`` of the canonical number.

    ``repr`` of a Python float is the shortest string that round-trips,
    which is exact and platform-independent; combined with the
    significant-digit rounding above it is *the* byte representation of
    a measured value. ``None`` renders empty (CSV's natural null).
    """
    value = canonical_number(value)
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    return str(value)
