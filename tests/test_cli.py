"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "table2" in out
        assert "paper:" in out

    def test_run_table(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "radix" in out

    def test_run_without_ids(self, capsys):
        assert main(["run"]) == 2
        err = capsys.readouterr().err
        assert "no experiment ids" in err

    def test_run_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestExportCommand:
    def test_export_writes_files(self, tmp_path, capsys):
        assert main(["export", str(tmp_path), "table1"]) == 0
        out = capsys.readouterr().out
        assert "table1.txt" in out
        assert (tmp_path / "table1.json").exists()


class TestSweepCommand:
    def test_dry_run_plans_without_running(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--matrices", "wiki-Vote",
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "6 points planned" in out
        assert "gamma:wiki-Vote:none" in out
        assert not list(tmp_path.glob("*.json"))

    def test_serial_sweep_populates_cache(self, tmp_path, monkeypatch,
                                          capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--matrices", "wiki-Vote", "--models",
                     "gamma", "--variants", "none", "--serial"]) == 0
        out = capsys.readouterr().out
        assert "sweep complete" in out
        assert list(tmp_path.glob("*.json"))
