"""Job model for the SpGEMM service: specs, validation, lifecycle.

A *job spec* is the client-facing request body — matrix, model,
preprocessing variant, semiring, optional config overrides — and maps
1:1 onto a :class:`~repro.engine.sweep.SweepPoint`, which is what ties
the service to everything the engine already guarantees: the point's
:func:`~repro.engine.sweep.record_key` is simultaneously the L1/L2
store key, the coalescing key, and the disk-cache key sweeps use, so a
result computed by a sweep is served by the API and vice versa.

A :class:`Job` is one accepted request's lifecycle. Responses are
always built from a complete, atomically swapped payload — a client
polling ``GET /jobs/<id>`` can observe an old state or a new state,
never a torn mixture (the chaos suite pins this).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.config import CpuConfig, GammaConfig
from repro.engine.registry import (GAMMA_MODELS, SIMULATOR_MODELS,
                                   available_models)
from repro.engine.sweep import (DEFAULT_MASK, DEFAULT_OPERAND,
                                DEFAULT_SEMIRING, SweepPoint, record_key)

#: Job lifecycle states. ``queued`` covers admission through waiting for
#: a worker; ``running`` an execution in flight; ``done``/``error`` are
#: terminal. A coalesced follower mirrors its leader's execution.
JOB_STATES = ("queued", "running", "done", "error")


class JobValidationError(ValueError):
    """A request body that cannot become a runnable job (HTTP 400)."""


def _validate_config_overrides(model: str,
                               overrides: Dict[str, Any]):
    """Build the point config from client-supplied field overrides."""
    from repro.engine.registry import default_config_for

    if not isinstance(overrides, dict):
        raise JobValidationError("'config' must be an object")
    base = default_config_for(model)
    known = {f.name for f in dataclasses.fields(base)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise JobValidationError(
            f"unknown config field(s) {unknown}; "
            f"{type(base).__name__} has: {sorted(known)}")
    for name, value in overrides.items():
        if not isinstance(value, (int, float, bool)):
            raise JobValidationError(
                f"config field {name!r} must be numeric")
    try:
        return dataclasses.replace(base, **overrides)
    except (TypeError, ValueError) as exc:
        raise JobValidationError(f"invalid config: {exc}") from None


@dataclass(frozen=True)
class JobSpec:
    """Validated request parameters; converts to a sweep point."""

    matrix: str
    model: str = "gamma"
    variant: str = "none"
    semiring: str = DEFAULT_SEMIRING
    multi_pe: bool = True
    config: Any = None  # GammaConfig | CpuConfig | None
    mask: str = DEFAULT_MASK
    operand: str = DEFAULT_OPERAND

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        """Parse and validate a request body; raises
        :class:`JobValidationError` with a client-actionable message."""
        from repro.apps.masked import MASK_MODES
        from repro.baselines.spmv import OPERAND_SHAPES
        from repro.engine.defaults import PREPROCESS_VARIANTS
        from repro.matrices import suite
        from repro.semiring import STANDARD_SEMIRINGS

        if not isinstance(payload, dict):
            raise JobValidationError("request body must be a JSON object")
        allowed = {"matrix", "model", "variant", "semiring",
                   "multi_pe", "config", "mask", "operand"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise JobValidationError(
                f"unknown field(s) {unknown}; allowed: {sorted(allowed)}")
        matrix = payload.get("matrix")
        if not isinstance(matrix, str) or not matrix:
            raise JobValidationError("'matrix' (suite name) is required")
        try:
            suite.spec_by_name(matrix)
        except KeyError as exc:
            raise JobValidationError(str(exc.args[0])) from None
        model = payload.get("model", "gamma")
        if model not in available_models():
            raise JobValidationError(
                f"unknown model {model!r}; known: {available_models()}")
        variant = payload.get("variant", "none")
        semiring = payload.get("semiring", DEFAULT_SEMIRING)
        multi_pe = payload.get("multi_pe", True)
        mask = payload.get("mask", DEFAULT_MASK)
        operand = payload.get("operand", DEFAULT_OPERAND)
        if not isinstance(multi_pe, bool):
            raise JobValidationError("'multi_pe' must be a boolean")
        if model in SIMULATOR_MODELS:
            if semiring not in STANDARD_SEMIRINGS:
                raise JobValidationError(
                    f"unknown semiring {semiring!r}; "
                    f"known: {sorted(STANDARD_SEMIRINGS)}")
        elif semiring != DEFAULT_SEMIRING:
            raise JobValidationError(
                f"model {model!r} only serves the "
                f"{DEFAULT_SEMIRING!r} semiring")
        if model in GAMMA_MODELS:
            if variant not in PREPROCESS_VARIANTS:
                raise JobValidationError(
                    f"unknown preprocessing variant {variant!r}; "
                    f"known: {PREPROCESS_VARIANTS}")
            if mask not in MASK_MODES:
                raise JobValidationError(
                    f"unknown mask mode {mask!r}; known: {MASK_MODES}")
            if mask != DEFAULT_MASK and variant not in ("none", ""):
                raise JobValidationError(
                    "masked jobs do not compose with preprocessing "
                    "variants; use variant 'none'")
        else:
            if variant not in ("none", ""):
                raise JobValidationError(
                    f"model {model!r} takes no preprocessing variant")
            if mask != DEFAULT_MASK:
                raise JobValidationError(
                    f"model {model!r} does not take a mask")
            variant = "none" if model in SIMULATOR_MODELS else ""
        if model == "gamma-spmv":
            if operand not in OPERAND_SHAPES:
                raise JobValidationError(
                    f"unknown operand shape {operand!r}; "
                    f"known: {OPERAND_SHAPES}")
        elif operand != DEFAULT_OPERAND:
            raise JobValidationError(
                f"model {model!r} does not take an operand shape")
        config = None
        if payload.get("config") is not None:
            config = _validate_config_overrides(model, payload["config"])
        return cls(matrix=matrix, model=model, variant=variant,
                   semiring=semiring, multi_pe=multi_pe, config=config,
                   mask=mask, operand=operand)

    def to_point(self) -> SweepPoint:
        return SweepPoint(
            model=self.model, matrix=self.matrix,
            variant=self.variant if self.model in SIMULATOR_MODELS else "",
            config=self.config, multi_pe=self.multi_pe,
            semiring=self.semiring, mask=self.mask, operand=self.operand)

    def key(self) -> str:
        """The store/coalescing/disk-cache key of this spec's result."""
        return record_key(self.to_point())

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "matrix": self.matrix,
            "model": self.model,
            "variant": self.variant,
            "semiring": self.semiring,
            "multi_pe": self.multi_pe,
            "mask": self.mask,
            "operand": self.operand,
        }
        if self.config is not None:
            kind = ("cpu" if isinstance(self.config, CpuConfig)
                    else "gamma")
            payload["config"] = {"kind": kind,
                                 **dataclasses.asdict(self.config)}
        return payload

    @classmethod
    def from_checkpoint(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_payload` output (queue
        checkpoint restore); trusts the payload (it was validated once
        at submission)."""
        config = None
        if payload.get("config") is not None:
            params = dict(payload["config"])
            kind = params.pop("kind", "gamma")
            config = (CpuConfig if kind == "cpu" else GammaConfig)(**params)
        return cls(matrix=payload["matrix"], model=payload["model"],
                   variant=payload["variant"],
                   semiring=payload.get("semiring", DEFAULT_SEMIRING),
                   multi_pe=payload.get("multi_pe", True),
                   config=config,
                   mask=payload.get("mask", DEFAULT_MASK),
                   operand=payload.get("operand", DEFAULT_OPERAND))


@dataclass
class Job:
    """One accepted request and its (eventual) outcome."""

    id: str
    spec: JobSpec
    client: str
    state: str = "queued"
    source: Optional[str] = None  # 'l1' | 'l2' | 'computed' | 'coalesced'
    attempts: int = 0
    result: Optional[Dict[str, Any]] = None
    fingerprint: Optional[str] = None
    error: Optional[Dict[str, Any]] = None
    created_ts: float = field(default_factory=time.time)
    finished_ts: Optional[float] = None

    def finish_ok(self, result: Dict[str, Any], source: str,
                  attempts: int = 0) -> None:
        from repro.engine.record import RunRecord

        self.result = result
        self.fingerprint = RunRecord.from_payload(result).fingerprint()
        self.source = source
        self.attempts = attempts
        self.state = "done"
        self.finished_ts = time.time()

    def finish_error(self, reason: str, message: str,
                     attempts: int = 0) -> None:
        self.error = {"reason": reason, "message": message}
        self.attempts = attempts
        self.state = "error"
        self.finished_ts = time.time()

    def to_payload(self) -> Dict[str, Any]:
        """The complete, self-consistent response body for this job.

        Built fresh from the job's current fields in one pass — the
        HTTP layer serializes the returned dict immediately, so a
        response reflects exactly one state, never a torn mixture.
        """
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "client": self.client,
            "spec": self.spec.to_payload(),
            "key": self.spec.key(),
            "source": self.source,
            "attempts": self.attempts,
            "created_ts": self.created_ts,
            "finished_ts": self.finished_ts,
        }
        if self.state == "done":
            payload["result"] = self.result
            payload["fingerprint"] = self.fingerprint
        elif self.state == "error":
            payload["error"] = self.error
        return payload

    @property
    def finished(self) -> bool:
        return self.state in ("done", "error")
