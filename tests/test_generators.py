"""Unit tests for synthetic matrix generators and the named suite."""

import numpy as np
import pytest

from repro.matrices import generators, stats
from repro.matrices.suite import (
    COMMON_SET,
    EXTENDED_SET,
    common_set_names,
    extended_set_names,
    load,
    operands,
    spec_by_name,
)


class TestGeneratorFamilies:
    def test_uniform_mean_nnz(self):
        m = generators.uniform_random(2000, 2000, 6.0, seed=1)
        assert m.nnz / m.num_rows == pytest.approx(6.0, rel=0.15)

    def test_uniform_deterministic(self):
        a = generators.uniform_random(100, 100, 4.0, seed=9)
        b = generators.uniform_random(100, 100, 4.0, seed=9)
        assert a == b

    def test_uniform_different_seeds_differ(self):
        a = generators.uniform_random(100, 100, 4.0, seed=1)
        b = generators.uniform_random(100, 100, 4.0, seed=2)
        assert a != b

    def test_power_law_skewed_rows(self):
        m = generators.power_law(2000, 2000, 8.0, seed=2, max_degree=200)
        lengths = m.row_lengths()
        assert lengths.max() > 6 * lengths.mean()  # hubs exist
        assert m.nnz / m.num_rows == pytest.approx(8.0, rel=0.35)

    def test_power_law_hub_cap(self):
        m = generators.power_law(2000, 2000, 8.0, seed=2, max_degree=40)
        assert m.row_lengths().max() <= 40

    def test_power_law_hub_columns(self):
        m = generators.power_law(1500, 1500, 6.0, seed=3)
        col_counts = np.bincount(m.coords, minlength=m.num_cols)
        assert col_counts.max() > 10 * max(1.0, col_counts.mean())

    def test_mesh_band_locality(self):
        m = generators.mesh(1000, 12.0, seed=4)
        # Nonzeros concentrate near the diagonal.
        for row in (100, 500, 900):
            coords = m.row(row).coords
            assert np.all(np.abs(coords - row) < 200)

    def test_mesh_has_diagonal(self):
        m = generators.mesh(300, 10.0, seed=5)
        for row in range(0, 300, 37):
            assert row in m.row(row).coords

    def test_road_network_sparse_symmetric(self):
        m = generators.road_network(2500, seed=6)
        npr = m.nnz / m.num_rows
        assert 1.5 < npr < 4.0
        dense = m.to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_mixed_density_has_dense_rows(self):
        m = generators.mixed_density(
            500, 500, sparse_nnz_per_row=5.0, dense_row_fraction=0.02,
            dense_row_nnz=200, seed=7)
        lengths = m.row_lengths()
        assert lengths.max() > 150
        assert np.median(lengths) < 15

    def test_block_random_block_concentration(self):
        m = generators.block_random(800, 800, 8.0, seed=8, num_blocks=8)
        in_block = 0
        for row in range(m.num_rows):
            block = row // 100
            coords = m.row(row).coords
            in_block += int(((coords >= block * 100)
                             & (coords < (block + 1) * 100)).sum())
        assert in_block / m.nnz > 0.6

    def test_diagonal_band_respects_band(self):
        m = generators.diagonal_band(400, 400, 6.0, seed=9, bandwidth=20)
        for row in range(0, 400, 53):
            coords = m.row(row).coords
            assert np.all(np.abs(coords - row) <= 21)

    def test_shuffled_permutes(self):
        m = generators.mesh(200, 8.0, seed=10)
        s = generators.shuffled(m, seed=11)
        assert s.nnz == m.nnz
        assert sorted(s.row_lengths()) == sorted(m.row_lengths())


class TestSuite:
    def test_set_sizes_match_paper(self):
        assert len(COMMON_SET) == 19  # Table 3
        assert len(EXTENDED_SET) == 18  # Table 4

    def test_names_unique(self):
        names = common_set_names() + extended_set_names()
        assert len(names) == len(set(names))

    def test_lookup(self):
        spec = spec_by_name("web-Google")
        assert spec.paper_rows == 916_428
        with pytest.raises(KeyError, match="unknown suite matrix"):
            spec_by_name("no-such-matrix")

    def test_load_memoizes(self):
        assert load("wiki-Vote") is load("wiki-Vote")

    @pytest.mark.parametrize("name", ["wiki-Vote", "poisson3Da", "gupta2"])
    def test_square_operands(self, name):
        a, b = operands(name)
        assert a is b
        assert a.shape[0] == a.shape[1]

    @pytest.mark.parametrize("name", ["relat8", "nemsemm1"])
    def test_rect_operands_transposed(self, name):
        a, b = operands(name)
        assert a.shape[0] != a.shape[1]
        assert b.shape == (a.shape[1], a.shape[0])

    @pytest.mark.parametrize(
        "spec", COMMON_SET, ids=[s.name for s in COMMON_SET])
    def test_common_set_npr_tracks_paper(self, spec):
        m = load(spec.name)
        realized = m.nnz / m.num_rows
        assert realized == pytest.approx(spec.paper_npr, rel=0.45), (
            f"{spec.name}: realized {realized:.2f} vs paper {spec.paper_npr}"
        )

    @pytest.mark.parametrize(
        "spec", EXTENDED_SET, ids=[s.name for s in EXTENDED_SET])
    def test_extended_set_npr_tracks_spec(self, spec):
        m = load(spec.name)
        realized = m.nnz / m.num_rows
        assert realized == pytest.approx(spec.npr, rel=0.45)


class TestStats:
    def test_flops_matches_bruteforce(self):
        a = generators.uniform_random(50, 40, 3.0, seed=12)
        b = generators.uniform_random(40, 60, 4.0, seed=13)
        expected = sum(
            b.row_nnz(int(k)) for k in a.coords
        )
        assert stats.flops(a, b) == expected

    def test_flops_dimension_check(self):
        a = generators.uniform_random(5, 6, 2.0, seed=1)
        b = generators.uniform_random(7, 5, 2.0, seed=1)
        with pytest.raises(ValueError, match="inner dimensions"):
            stats.flops(a, b)

    def test_matrix_stats(self):
        m = generators.uniform_random(100, 100, 5.0, seed=14)
        s = stats.MatrixStats.of(m)
        assert s.rows == 100
        assert s.nnz == m.nnz
        assert s.footprint_bytes == m.nbytes

    def test_window_size(self):
        m = generators.uniform_random(100, 100, 8.0, seed=15)
        w = stats.window_size(m, fibercache_bytes=8 * 12 * 10)
        assert w == pytest.approx(10, rel=0.3)

    def test_row_affinity(self):
        m = generators.mesh(100, 10.0, seed=16)
        assert stats.row_affinity(m, 10, 11) > 0

    def test_matrix_affinity_mesh_beats_shuffled(self):
        m = generators.mesh(400, 10.0, seed=17)
        s = generators.shuffled(m, seed=18)
        assert (stats.matrix_affinity(m, window=16)
                > 2 * stats.matrix_affinity(s, window=16))

    def test_matrix_affinity_window_validation(self):
        m = generators.mesh(10, 3.0, seed=19)
        with pytest.raises(ValueError, match="window"):
            stats.matrix_affinity(m, window=0)

    def test_reuse_factor(self):
        a = generators.uniform_random(200, 50, 4.0, seed=20)
        r = stats.reuse_factor(a, a)
        assert r >= 1.0


class TestRmat:
    def test_dimensions(self):
        m = generators.rmat(8, edge_factor=4.0, seed=1)
        assert m.shape == (256, 256)
        # Duplicates merge, so nnz <= requested edges.
        assert 0 < m.nnz <= 4 * 256

    def test_power_law_degrees(self):
        m = generators.rmat(10, edge_factor=8.0, seed=2)
        lengths = m.row_lengths()
        assert lengths.max() > 8 * max(1.0, float(np.median(lengths)))

    def test_quadrant_concentration(self):
        """With Graph500 parameters most edges land in the top-left
        recursive quadrant (vertex ids skew low)."""
        m = generators.rmat(10, edge_factor=8.0, seed=3)
        n = m.num_rows
        top_left = sum(
            m.row_nnz(r) for r in range(n // 2)
        )
        assert top_left > 0.55 * m.nnz

    def test_deterministic(self):
        assert generators.rmat(6, seed=4) == generators.rmat(6, seed=4)

    def test_validation(self):
        with pytest.raises(ValueError, match="scale"):
            generators.rmat(0)
        with pytest.raises(ValueError, match="probabilities"):
            generators.rmat(4, a=0.6, b=0.3, c=0.3)

    def test_multiplies_on_gamma(self):
        from repro.core import multiply

        m = generators.rmat(7, edge_factor=4.0, seed=5)
        result = multiply(m, m)
        expected = (m.to_scipy() @ m.to_scipy()).toarray()
        np.testing.assert_allclose(result.output.to_dense(), expected,
                                   atol=1e-9)
