"""Unit tests for the high-radix merger (paper Sec. 3.1, Fig. 7)."""

import numpy as np
import pytest

from repro.core.merger import (
    HighRadixMerger,
    MergerRadixError,
    is_sorted_with_repeats,
    merge_cycles,
)


class TestMergerFunctional:
    def test_two_streams(self):
        merger = HighRadixMerger(2)
        out = merger.merge([[1, 4, 9], [2, 4, 7]])
        assert [c for c, _ in out] == [1, 2, 4, 4, 7, 9]
        assert is_sorted_with_repeats(c for c, _ in out)

    def test_way_indexes(self):
        merger = HighRadixMerger(4)
        out = merger.merge([[5], [1], [3]])
        assert out == [(1, 1), (3, 2), (5, 0)]

    def test_tie_breaks_to_lowest_way(self):
        merger = HighRadixMerger(4)
        out = merger.merge([[7], [7], [7]])
        assert out == [(7, 0), (7, 1), (7, 2)]

    def test_empty_streams(self):
        merger = HighRadixMerger(8)
        assert merger.merge([]) == []
        assert merger.merge([[], [], []]) == []

    def test_single_stream_passthrough(self):
        merger = HighRadixMerger(64)
        out = merger.merge([[0, 5, 6]])
        assert out == [(0, 0), (5, 0), (6, 0)]

    def test_radix_overflow_rejected(self):
        merger = HighRadixMerger(2)
        with pytest.raises(MergerRadixError, match="exceed radix"):
            merger.merge([[1], [2], [3]])

    def test_radix_validation(self):
        with pytest.raises(ValueError, match="radix"):
            HighRadixMerger(1)

    def test_full_radix_64(self):
        rng = np.random.default_rng(11)
        streams = [
            np.unique(rng.choice(1000, size=rng.integers(1, 30)))
            for _ in range(64)
        ]
        merger = HighRadixMerger(64)
        out = merger.merge(streams)
        assert len(out) == sum(len(s) for s in streams)
        coords = [c for c, _ in out]
        assert coords == sorted(coords)
        # Every stream's elements appear, in order, under its way index.
        for way, stream in enumerate(streams):
            emitted = [c for c, w in out if w == way]
            assert emitted == list(stream)

    def test_matches_numpy_mergesort(self):
        rng = np.random.default_rng(13)
        streams = [
            np.unique(rng.choice(200, size=20)) for _ in range(7)
        ]
        merger = HighRadixMerger(8)
        out = [c for c, _ in merger.merge(streams)]
        assert out == sorted(int(x) for s in streams for x in s)


class TestMergerTiming:
    def test_pipeline_depth(self):
        assert HighRadixMerger(64).pipeline_depth == 6
        assert HighRadixMerger(2).pipeline_depth == 1
        assert HighRadixMerger(16).pipeline_depth == 4

    def test_one_element_per_cycle(self):
        merger = HighRadixMerger(4)
        streams = [[1, 2], [3, 4], [5]]
        assert merger.cycles(streams) == 5 + merger.pipeline_depth

    def test_merge_cycles_closed_form(self):
        assert merge_cycles(100, 6) == 106
        assert merge_cycles(0, 6) == 6
        with pytest.raises(ValueError):
            merge_cycles(-1)
