"""The figure catalog: one generator per paper figure/table family.

Each :class:`FigureGenerator` wraps one of the parameterized builders in
:mod:`repro.experiments.figures` and binds it to a
:class:`~repro.figures.scopes.FigureScope` at generation time. The
``figure_id`` is the artifact basename (``speedup.vl.json`` +
``speedup.csv``); ``paper_ref`` records which paper figure(s) the
artifact reproduces.

Generators are *semantic*, not one-per-paper-figure-number: e.g. the
paper renders per-matrix speedup twice (Fig. 11 common set, Fig. 15
extended set) and the pipeline expresses that as the ``speedup``
generator run at two scopes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments import figures as fig
from repro.experiments.runner import ExperimentRunner
from repro.figures.scopes import FigureScope


@dataclass(frozen=True)
class FigureGenerator:
    """One versioned-artifact generator.

    Attributes:
        figure_id: Artifact basename and ``--only`` id.
        title: Human title (embedded in the Vega-Lite description).
        paper_ref: The paper figure/table the artifact reproduces.
        build: ``(scope, runner) -> figure dict`` with ``chart_data``.
    """

    figure_id: str
    title: str
    paper_ref: str
    build: Callable[[FigureScope, ExperimentRunner], Dict]


def _title(base: str, scope: FigureScope) -> str:
    return f"{base} [{scope.name} scope]"


FIGURE_GENERATORS: List[FigureGenerator] = [
    FigureGenerator(
        "speedup", "Per-matrix speedup over MKL, all designs",
        "Figs. 11/15",
        lambda s, r: fig.speedup_figure(
            s.matrices, _title("Speedup over MKL", s), r),
    ),
    FigureGenerator(
        "gmean_speedup", "Suite gmean speedup over MKL per design",
        "Fig. 10",
        lambda s, r: fig.gmean_speedup_figure(
            s.matrices, _title("Gmean speedup over MKL", s), r),
    ),
    FigureGenerator(
        "traffic", "Normalized DRAM traffic, all designs",
        "Figs. 12/16",
        lambda s, r: fig.traffic_figure(
            s.matrices, _title("Normalized traffic", s), r),
    ),
    FigureGenerator(
        "traffic_breakdown", "Traffic breakdown by stream and design",
        "Fig. 3",
        lambda s, r: fig.breakdown_figure(
            s.matrices, _title("Traffic breakdown", s), r),
    ),
    FigureGenerator(
        "bandwidth", "Memory bandwidth utilization, G and GP",
        "Figs. 13/17",
        lambda s, r: fig.bandwidth_figure(
            s.matrices, _title("Bandwidth utilization", s), r),
    ),
    FigureGenerator(
        "cache_util", "FiberCache utilization by fiber type",
        "Figs. 14/18",
        lambda s, r: fig.cache_util_figure(
            s.matrices, _title("FiberCache utilization", s), r),
    ),
    FigureGenerator(
        "preprocessing", "Preprocessing ablation traffic breakdown",
        "Fig. 19",
        lambda s, r: fig.preprocessing_figure(
            s.matrices, _title("Preprocessing ablation", s), r),
    ),
    FigureGenerator(
        "scheduling", "Multi-PE vs single-PE-per-row scheduling",
        "Fig. 20",
        lambda s, r: fig.scheduling_figure(
            s.scheduling_matrix, _title("Scheduling ablation", s), r),
    ),
    FigureGenerator(
        "roofline", "Roofline placement of every matrix, G and GP",
        "Fig. 21",
        lambda s, r: fig.roofline_figure(
            s.matrices, _title("Roofline", s), r),
    ),
    FigureGenerator(
        "pe_scaling", "PE-count scaling sweep",
        "Figs. 22/23",
        lambda s, r: fig.pe_sweep_figure(
            s.matrices, _title("PE scaling", s), r),
    ),
    FigureGenerator(
        "cache_scaling", "FiberCache-size scaling sweep",
        "Figs. 24/25",
        lambda s, r: fig.cache_sweep_figure(
            s.matrices, _title("FiberCache scaling", s), r),
    ),
    FigureGenerator(
        "spmv", "Gamma SpMV (GUST-style) by vector operand shape",
        "extension",
        lambda s, r: fig.spmv_figure(
            s.matrices, _title("Gamma SpMV", s), r),
    ),
    FigureGenerator(
        "energy", "Energy across designs (parametric model)",
        "extension",
        lambda s, r: fig.energy_figure(
            s.matrices, _title("Energy", s), r),
    ),
    FigureGenerator(
        "dataflows", "Dataflow work counts (IP/OP/Gustavson)",
        "Fig. 2 / Sec. 2.2",
        lambda s, r: fig.dataflows_figure(
            s.dataflow_matrices, _title("Dataflow work counts", s)),
    ),
    FigureGenerator(
        "matraptor", "MatRaptor vs Gamma (Gustavson without B reuse)",
        "Sec. 7",
        lambda s, r: fig.matraptor_figure(
            s.matrices, _title("MatRaptor vs Gamma", s), r),
    ),
    FigureGenerator(
        "suite", "Matrix-suite characteristics",
        "Tables 3/4",
        lambda s, r: fig.suite_figure(
            s.suite_specs(), _title("Matrix suite", s), r),
    ),
    FigureGenerator(
        "area", "Gamma area breakdown, model vs published",
        "Table 2",
        lambda s, r: fig.area_figure(_title("Area breakdown", s)),
    ),
]

_BY_ID: Dict[str, FigureGenerator] = {
    g.figure_id: g for g in FIGURE_GENERATORS}


def figure_ids() -> List[str]:
    return [g.figure_id for g in FIGURE_GENERATORS]


def get_generator(figure_id: str) -> FigureGenerator:
    try:
        return _BY_ID[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown figure id {figure_id!r}; known: {figure_ids()}"
        ) from None
