"""FiberCache: Gamma's hybrid cache / explicitly-orchestrated buffer (Sec. 3.2).

A set-associative cache over 64 B lines with four primitives:

* ``fetch`` — decoupled, non-speculative prefetch: brings a line in from
  memory ahead of use and *increments its priority counter*, soft-locking it.
* ``read``  — the PE's actual consumption: decrements priority.
* ``write`` — allocate-without-fetch for partial output fibers; sets dirty.
* ``consume`` — read-and-invalidate for partial fibers: no writeback even
  though dirty.

Replacement selects the victim with the lowest priority counter, breaking
ties with 2-bit SRRIP (insert at RRPV 2, promote to 0 on touch, age when no
candidate is at 3).

The model operates on abstract line addresses: callers map fibers to
address ranges (matrix layout or the scheduler's dynamic partial-fiber
allocator) and the cache indexes sets by address modulo set count.

Hot-path organization (see docs/architecture.md §10)
----------------------------------------------------
This implementation is the *batched* cache: callers stream whole address
ranges through ``fetch_range`` / ``read_range`` / ``write_range`` /
``consume_range`` (plus the fused ``fetch_read_range``), or whole
*epochs* of ranges through ``fetch_read_epoch``, instead of one Python
call per line. State lives in set-major slot arrays — parallel arrays of
length ``num_sets * num_ways`` indexed by ``set * ways + way`` (tags,
dirty, category, and one packed *replacement key* per slot) with an
address→slot index for O(1) lookup. The arrays are plain Python lists
internally: at the 1–3-line ranges that dominate real sweeps, per-element
list access (~40 ns) beats both dict-of-objects attribute chasing and
NumPy element access / small-batch ufunc dispatch (~0.9 µs per call),
which we measured to be slower until ranges exceed ~30 lines.

The replacement key packs ``(priority, RRPV_MAX - rrpv, seq)`` into one
integer so victim selection is a single ``min()`` over the set's slots
and the SRRIP aging sweep is one subtraction per tied candidate —
the eviction path dominated whole-model cache time when the fields
lived in separate lists. ``set_arrays()`` decodes the same state back
into per-set NumPy arrays for tests, lockstep checking, and
observability.

The scalar primitives (``fetch``/``read``/``write``/``consume``) remain
as single-line wrappers over the range kernels; the authoritative scalar
*model* of the semantics is :class:`repro.core.fibercache_ref.ReferenceFiberCache`,
which the Hypothesis lockstep suite replays against this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import GammaConfig, LINE_BYTES

#: SRRIP re-reference prediction values (2-bit).
_RRPV_MAX = 3
_RRPV_INSERT = 2
_PRIORITY_MAX = 31  # 5-bit counter for 32 PEs (Sec. 3.2)

#: Category codes in the slot arrays.
_CATEGORIES = ("B", "partial")
_CAT_CODE = {"B": 0, "partial": 1}

#: Packed replacement key: ``(priority << 52) | ((RRPV_MAX - rrpv) << 50)
#: | seq``. Victim selection is the lexicographic minimum of
#: (priority, -rrpv, insertion seq), so with rrpv stored inverted the
#: integer ``min()`` over a set's keys IS the victim. seq gets 50 bits:
#: installs are bounded by line touches, far below 2**50 per run.
_KEY_INV_SHIFT = 50
_KEY_PRIO_SHIFT = 52
_KEY_SEQ_MASK = (1 << _KEY_INV_SHIFT) - 1
#: Key fragment for rrpv = 0 (inverted rrpv at max); OR-ing it into a key
#: is exactly "promote to RRPV 0, keep priority and seq".
_KEY_RRPV0 = _RRPV_MAX << _KEY_INV_SHIFT
#: Key fragment for rrpv = insert.
_KEY_RRPV_INSERT = (_RRPV_MAX - _RRPV_INSERT) << _KEY_INV_SHIFT
#: One unit of priority.
_KEY_PRIO_ONE = 1 << _KEY_PRIO_SHIFT
#: Keys >= this have a saturated priority counter.
_KEY_PRIO_SAT = _PRIORITY_MAX << _KEY_PRIO_SHIFT


@dataclass
class CacheStats:
    """Access and traffic counters, by request type."""

    fetch_hits: int = 0
    fetch_misses: int = 0
    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0
    consume_hits: int = 0
    consume_misses: int = 0
    dirty_evictions: int = 0
    clean_evictions: int = 0

    @property
    def reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def read_hit_rate(self) -> float:
        return self.read_hits / self.reads if self.reads else 1.0


class LineView:
    """Read-only snapshot of one resident line's replacement state."""

    __slots__ = ("addr", "category", "priority", "rrpv", "dirty")

    def __init__(self, addr: int, category: str, priority: int,
                 rrpv: int, dirty: bool) -> None:
        self.addr = addr
        self.category = category
        self.priority = priority
        self.rrpv = rrpv
        self.dirty = dirty

    def __repr__(self) -> str:
        return (f"LineView(addr={self.addr}, category={self.category!r}, "
                f"priority={self.priority}, rrpv={self.rrpv}, "
                f"dirty={self.dirty})")


class FiberCache:
    """Banked, set-associative cache with explicit data orchestration.

    Args:
        config: Gamma system parameters (capacity / ways).

    The model tracks occupancy per category ('B' lines vs 'partial' lines)
    so experiments can reproduce the paper's cache-utilization figures
    (Figs. 14 and 18).
    """

    def __init__(self, config: GammaConfig) -> None:
        self.config = config
        self.num_sets = config.fibercache_sets
        self.num_ways = config.fibercache_ways
        num_slots = self.num_sets * self.num_ways
        # Set-major slot arrays: slot = set * num_ways + way.
        self._tags: List[int] = [-1] * num_slots
        self._key: List[int] = [0] * num_slots
        self._dirty: List[int] = [0] * num_slots
        self._cat: List[int] = [0] * num_slots
        #: addr -> slot for every resident line.
        self._slot_of: Dict[int, int] = {}
        #: valid lines per set (install scans for a free way only when < ways).
        self._fill: List[int] = [0] * self.num_sets
        self._seq_counter = 0
        self._last_victim: Optional[Tuple[int, str, bool]] = None
        self.stats = CacheStats()
        #: DRAM read lines caused by misses, by data category.
        self.miss_lines = {"B": 0, "partial": 0}
        self.occupancy = {"B": 0, "partial": 0}
        self._utilization_weighted = {"B": 0.0, "partial": 0.0}
        self._utilization_weight = 0.0
        #: Accesses per bank (addr % banks): load balance across the
        #: banked structure that the 48x crossbars serve (Table 1).
        self.bank_accesses = [0] * config.fibercache_banks
        #: Hit/miss split per bank (fetch/read/consume outcomes), the
        #: per-bank hit-rate view the observability layer reports.
        self.bank_hits = [0] * config.fibercache_banks
        self.bank_misses = [0] * config.fibercache_banks

    # ------------------------------------------------------------------
    # Internal: eviction + install on the slot arrays
    # ------------------------------------------------------------------
    def _evict_from_set(self, set_index: int) -> int:
        """Evict the lowest-priority line of a full set, SRRIP-aged among
        ties; returns the freed slot.

        Victim = lexicographic minimum of (priority, -rrpv, insertion
        sequence) over the set — exactly the line the reference model's
        first-match scan selects, and exactly ``min()`` of the packed
        keys (eviction only happens on a full set, so every key in the
        slice is a valid line's). The aging sweep subtracts the victim's
        inverted-rrpv field from every same-priority key: those
        candidates all have rrpv <= the victim's (the victim maximizes
        rrpv among ties), so the subtraction never borrows and never
        needs the RRPV_MAX cap.
        """
        tags = self._tags
        keys = self._key
        base = set_index * self.num_ways
        segment = keys[base:base + self.num_ways]
        victim_key = min(segment)
        best_slot = base + segment.index(victim_key)
        inverted = (victim_key >> _KEY_INV_SHIFT) & _RRPV_MAX
        if inverted:
            # Age all tied candidates so the victim reaches RRPV max,
            # as SRRIP would by repeated aging sweeps.
            delta = inverted << _KEY_INV_SHIFT
            victim_prio = victim_key >> _KEY_PRIO_SHIFT
            for slot in range(base, base + self.num_ways):
                k = keys[slot]
                if k >> _KEY_PRIO_SHIFT == victim_prio:
                    keys[slot] = k - delta
        dirty = self._dirty[best_slot]
        if dirty:
            self.stats.dirty_evictions += 1
        else:
            self.stats.clean_evictions += 1
        category = _CATEGORIES[self._cat[best_slot]]
        self.occupancy[category] -= 1
        addr = tags[best_slot]
        del self._slot_of[addr]
        tags[best_slot] = -1
        self._fill[set_index] -= 1
        self._last_victim = (addr, category, bool(dirty))
        return best_slot

    def _install(self, addr: int, cat_code: int, key_high: int) -> int:
        """Install a line (evicting if the set is full); returns its slot.

        ``key_high`` carries the new line's priority and inverted-rrpv
        fields so callers encode their post-install replacement state in
        one store instead of writing priority/rrpv after the fact.
        """
        set_index = addr % self.num_sets
        tags = self._tags
        if self._fill[set_index] >= self.num_ways:
            slot = self._evict_from_set(set_index)
        else:
            slot = set_index * self.num_ways
            while tags[slot] >= 0:
                slot += 1
        tags[slot] = addr
        self._key[slot] = key_high | self._seq_counter
        self._dirty[slot] = 0
        self._cat[slot] = cat_code
        self._seq_counter += 1
        self._slot_of[addr] = slot
        self._fill[set_index] += 1
        self.occupancy[_CATEGORIES[cat_code]] += 1
        return slot

    # ------------------------------------------------------------------
    # Batched range primitives
    # ------------------------------------------------------------------
    def fetch_range(self, lo: int, hi: int,
                    category: str = "B") -> Tuple[int, int]:
        """Fetch every line in [lo, hi) in address order.

        Semantically identical to calling :meth:`fetch` per line; one
        Python call and one stats flush per range.

        Returns:
            (miss_lines, dirty_evictions) caused by this range.
        """
        if category not in self.miss_lines:
            raise ValueError(f"unknown line category {category!r}")
        cat_code = _CAT_CODE[category]
        slot_of = self._slot_of
        keys = self._key
        num_banks = len(self.bank_accesses)
        bank_accesses = self.bank_accesses
        bank_hits = self.bank_hits
        bank_misses = self.bank_misses
        hits = 0
        misses = 0
        dirty_before = self.stats.dirty_evictions
        for addr in range(lo, hi):
            bank_accesses[addr % num_banks] += 1
            slot = slot_of.get(addr)
            if slot is not None:
                hits += 1
                bank_hits[addr % num_banks] += 1
                # priority++ (saturating), rrpv = 0.
                k = keys[slot]
                if k < _KEY_PRIO_SAT:
                    k += _KEY_PRIO_ONE
                keys[slot] = k | _KEY_RRPV0
            else:
                misses += 1
                bank_misses[addr % num_banks] += 1
                # fetch installs at priority 1, rrpv = insert.
                self._install(addr, cat_code,
                              _KEY_PRIO_ONE | _KEY_RRPV_INSERT)
        self.stats.fetch_hits += hits
        self.stats.fetch_misses += misses
        self.miss_lines[category] += misses
        return misses, self.stats.dirty_evictions - dirty_before

    def read_range(self, lo: int, hi: int,
                   category: str = "B") -> Tuple[int, int]:
        """Read every line in [lo, hi) in address order (PE consumption).

        Returns:
            (miss_lines, dirty_evictions) caused by this range.
        """
        if category not in self.miss_lines:
            raise ValueError(f"unknown line category {category!r}")
        cat_code = _CAT_CODE[category]
        slot_of = self._slot_of
        keys = self._key
        num_banks = len(self.bank_accesses)
        bank_accesses = self.bank_accesses
        bank_hits = self.bank_hits
        bank_misses = self.bank_misses
        hits = 0
        misses = 0
        dirty_before = self.stats.dirty_evictions
        for addr in range(lo, hi):
            bank_accesses[addr % num_banks] += 1
            slot = slot_of.get(addr)
            if slot is not None:
                hits += 1
                bank_hits[addr % num_banks] += 1
                # priority-- (floored at 0), rrpv = 0.
                k = keys[slot]
                if k >= _KEY_PRIO_ONE:
                    k -= _KEY_PRIO_ONE
                keys[slot] = k | _KEY_RRPV0
            else:
                misses += 1
                bank_misses[addr % num_banks] += 1
                self._install(addr, cat_code, _KEY_RRPV_INSERT)
        self.stats.read_hits += hits
        self.stats.read_misses += misses
        self.miss_lines[category] += misses
        return misses, self.stats.dirty_evictions - dirty_before

    def fetch_read_range(self, lo: int, hi: int,
                         category: str = "B") -> Tuple[int, int]:
        """Fused ``fetch_range(lo, hi)`` followed by ``read_range(lo, hi)``.

        This is the per-input touch pattern of ``_execute_task``: prefetch
        the whole range, then consume it. When the range spans distinct
        sets (``hi - lo <= num_sets``, true for every real fiber since
        ranges are contiguous), each line's set is touched by no other
        line of the range, so fetch+read per line in one pass is
        state-identical to the two full passes and the fused loop runs
        once. Longer ranges fall back to the two explicit passes.

        Returns:
            (miss_lines, dirty_evictions) caused by the fetch pass (the
            read pass can only miss when the range wraps the set space,
            which the fallback path handles and includes in the totals).
        """
        if hi - lo > self.num_sets:
            m1, d1 = self.fetch_range(lo, hi, category)
            m2, d2 = self.read_range(lo, hi, category)
            return m1 + m2, d1 + d2
        if category not in self.miss_lines:
            raise ValueError(f"unknown line category {category!r}")
        cat_code = _CAT_CODE[category]
        slot_of = self._slot_of
        keys = self._key
        num_banks = len(self.bank_accesses)
        bank_accesses = self.bank_accesses
        bank_hits = self.bank_hits
        bank_misses = self.bank_misses
        hits = 0
        misses = 0
        dirty_before = self.stats.dirty_evictions
        for addr in range(lo, hi):
            bank = addr % num_banks
            bank_accesses[bank] += 2
            bank_hits[bank] += 1  # the read always hits a just-fetched line
            slot = slot_of.get(addr)
            if slot is not None:
                hits += 1
                bank_hits[bank] += 1
                # fetch: priority++ (saturating); read: priority--; the
                # pair is a no-op unless already saturated.
                k = keys[slot]
                if k >= _KEY_PRIO_SAT:
                    k -= _KEY_PRIO_ONE
                keys[slot] = k | _KEY_RRPV0
            else:
                misses += 1
                bank_misses[bank] += 1
                # fetch installs at priority 1; the read drops it to 0.
                self._install(addr, cat_code, _KEY_RRPV0)
        n = hi - lo
        self.stats.fetch_hits += hits
        self.stats.fetch_misses += misses
        self.stats.read_hits += n
        self.miss_lines[category] += misses
        return misses, self.stats.dirty_evictions - dirty_before

    def fetch_read_epoch(self, lows, highs, counts,
                         category: str = "B"):
        """Epoch-batched :meth:`fetch_read_range` over grouped ranges.

        The batched simulator core calls this once per epoch with every
        dispatched task's input ranges: ``lows[i], highs[i]`` is the
        *i*-th range in touch order and ``counts[g]`` says how many
        consecutive ranges belong to group (task) *g*. State evolution
        is bit-identical to calling ``fetch_read_range`` per range in
        order; stats are flushed once per epoch instead of per range.

        The flat line-address stream and all bank counters are computed
        as numpy arrays; only the residency walk itself — a dict probe
        and key update per line, with the install/evict path inlined —
        stays a Python loop, since each touch's hit/miss outcome depends
        on the evictions of every touch before it. Ranges wrapping the
        set space (longer than ``num_sets`` lines) take the exact
        two-pass fallback of :meth:`_fetch_read_epoch_ranges`.

        Returns:
            Four lists with one entry per group: miss lines, dirty
            evictions, and the B / partial line occupancy observed after
            the group's touches (the utilization sampling point).
        """
        if category not in self.miss_lines:
            raise ValueError(f"unknown line category {category!r}")
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        lens = highs - lows
        if lens.size == 0 or int(lens.max()) > self.num_sets:
            return self._fetch_read_epoch_ranges(
                lows.tolist(), highs.tolist(), counts.tolist(), category)
        total = int(lens.sum())
        starts = np.cumsum(lens) - lens
        addrs = np.arange(total, dtype=np.int64) + np.repeat(
            lows - starts, lens)
        range_first = np.cumsum(counts) - counts
        group_lines = np.add.reduceat(lens, range_first)

        cat_code = _CAT_CODE[category]
        slot_of = self._slot_of
        keys = self._key
        tags = self._tags
        dirty_arr = self._dirty
        cat_arr = self._cat
        fill = self._fill
        num_sets = self.num_sets
        num_ways = self.num_ways
        occupancy = self.occupancy
        occ_b = occupancy["B"]
        occ_p = occupancy["partial"]
        seq = self._seq_counter
        dirty_ev = 0
        clean_ev = 0
        last_victim = None
        missed: List[int] = []
        miss_out: List[int] = []
        dirty_out: List[int] = []
        occ_b_out: List[int] = []
        occ_p_out: List[int] = []
        addr_list = addrs.tolist()
        start = 0
        for end in np.cumsum(group_lines).tolist():
            group_misses = 0
            group_dirty = 0
            for addr in addr_list[start:end]:
                slot = slot_of.get(addr)
                if slot is not None:
                    # fetch: priority++ (saturating); read: priority--;
                    # the pair is a no-op unless already saturated.
                    k = keys[slot]
                    if k >= _KEY_PRIO_SAT:
                        k -= _KEY_PRIO_ONE
                    keys[slot] = k | _KEY_RRPV0
                    continue
                group_misses += 1
                missed.append(addr)
                set_index = addr % num_sets
                if fill[set_index] >= num_ways:
                    # Inline _evict_from_set: min packed key is the
                    # victim; age every same-priority candidate.
                    base = set_index * num_ways
                    segment = keys[base:base + num_ways]
                    victim_key = min(segment)
                    slot = base + segment.index(victim_key)
                    inverted = (victim_key >> _KEY_INV_SHIFT) & _RRPV_MAX
                    if inverted:
                        delta = inverted << _KEY_INV_SHIFT
                        victim_prio = victim_key >> _KEY_PRIO_SHIFT
                        for s in range(base, base + num_ways):
                            k = keys[s]
                            if k >> _KEY_PRIO_SHIFT == victim_prio:
                                keys[s] = k - delta
                    victim_dirty = dirty_arr[slot]
                    if victim_dirty:
                        dirty_ev += 1
                        group_dirty += 1
                    else:
                        clean_ev += 1
                    victim_cat = cat_arr[slot]
                    if victim_cat:
                        occ_p -= 1
                    else:
                        occ_b -= 1
                    old_addr = tags[slot]
                    del slot_of[old_addr]
                    last_victim = (old_addr, _CATEGORIES[victim_cat],
                                   bool(victim_dirty))
                else:
                    slot = set_index * num_ways
                    while tags[slot] >= 0:
                        slot += 1
                    fill[set_index] += 1
                # Inline _install: fetch at priority 1, the fused read
                # drops it to 0 -> net key is rrpv-0 only.
                tags[slot] = addr
                keys[slot] = _KEY_RRPV0 | seq
                seq += 1
                dirty_arr[slot] = 0
                cat_arr[slot] = cat_code
                slot_of[addr] = slot
                if cat_code:
                    occ_p += 1
                else:
                    occ_b += 1
            start = end
            miss_out.append(group_misses)
            dirty_out.append(group_dirty)
            occ_b_out.append(occ_b)
            occ_p_out.append(occ_p)
        misses = len(missed)
        self._seq_counter = seq
        occupancy["B"] = occ_b
        occupancy["partial"] = occ_p
        if last_victim is not None:
            self._last_victim = last_victim
        stats = self.stats
        stats.fetch_hits += total - misses
        stats.fetch_misses += misses
        stats.read_hits += total
        stats.dirty_evictions += dirty_ev
        stats.clean_evictions += clean_ev
        self.miss_lines[category] += misses
        if total:
            num_banks = len(self.bank_accesses)
            acc = np.bincount(addrs % num_banks,
                              minlength=num_banks).tolist()
            if missed:
                mc = np.bincount(
                    np.asarray(missed, dtype=np.int64) % num_banks,
                    minlength=num_banks).tolist()
            else:
                mc = [0] * num_banks
            bank_accesses = self.bank_accesses
            bank_hits = self.bank_hits
            bank_misses = self.bank_misses
            for bank in range(num_banks):
                accesses = acc[bank]
                bank_misses_here = mc[bank]
                bank_accesses[bank] += 2 * accesses
                bank_hits[bank] += 2 * accesses - bank_misses_here
                bank_misses[bank] += bank_misses_here
        return miss_out, dirty_out, occ_b_out, occ_p_out

    def _fetch_read_epoch_ranges(self, lows, highs, counts,
                                 category: str = "B"):
        """Range-at-a-time :meth:`fetch_read_epoch` (set-space wraps)."""
        cat_code = _CAT_CODE[category]
        slot_of = self._slot_of
        keys = self._key
        install = self._install
        num_sets = self.num_sets
        num_banks = len(self.bank_accesses)
        bank_accesses = self.bank_accesses
        bank_hits = self.bank_hits
        bank_misses = self.bank_misses
        occupancy = self.occupancy
        stats = self.stats
        hits = 0
        misses = 0
        fused_lines = 0
        miss_out = []
        dirty_out = []
        occ_b_out = []
        occ_p_out = []
        pos = 0
        for count in counts:
            group_misses = 0
            dirty_before = stats.dirty_evictions
            for _ in range(count):
                lo = lows[pos]
                hi = highs[pos]
                pos += 1
                if hi - lo > num_sets:
                    # Rare set-space wrap: exact two-pass fallback
                    # (flushes its own fetch/read stats).
                    m1, _ = self.fetch_range(lo, hi, category)
                    m2, _ = self.read_range(lo, hi, category)
                    group_misses += m1 + m2
                    continue
                for addr in range(lo, hi):
                    bank = addr % num_banks
                    bank_accesses[bank] += 2
                    bank_hits[bank] += 1
                    slot = slot_of.get(addr)
                    if slot is not None:
                        hits += 1
                        bank_hits[bank] += 1
                        k = keys[slot]
                        if k >= _KEY_PRIO_SAT:
                            k -= _KEY_PRIO_ONE
                        keys[slot] = k | _KEY_RRPV0
                    else:
                        misses += 1
                        group_misses += 1
                        bank_misses[bank] += 1
                        install(addr, cat_code, _KEY_RRPV0)
                fused_lines += hi - lo
            miss_out.append(group_misses)
            dirty_out.append(stats.dirty_evictions - dirty_before)
            occ_b_out.append(occupancy["B"])
            occ_p_out.append(occupancy["partial"])
        stats.fetch_hits += hits
        stats.fetch_misses += misses
        stats.read_hits += fused_lines
        self.miss_lines[category] += misses
        return miss_out, dirty_out, occ_b_out, occ_p_out

    def write_range(self, lo: int, hi: int,
                    category: str = "partial") -> Tuple[int, int]:
        """Allocate-without-fetch every line in [lo, hi); marks them dirty.

        Returns:
            (0, dirty_evictions) — writes never read DRAM themselves.
        """
        if category not in self.occupancy:
            raise ValueError(f"unknown line category {category!r}")
        cat_code = _CAT_CODE[category]
        slot_of = self._slot_of
        keys = self._key
        dirty = self._dirty
        num_banks = len(self.bank_accesses)
        bank_accesses = self.bank_accesses
        dirty_before = self.stats.dirty_evictions
        for addr in range(lo, hi):
            bank_accesses[addr % num_banks] += 1
            slot = slot_of.get(addr)
            if slot is None:
                # install at priority 0 then promote to rrpv 0.
                slot = self._install(addr, cat_code, _KEY_RRPV0)
            else:
                keys[slot] |= _KEY_RRPV0
            dirty[slot] = 1
            # No priority bump: only fetch raises priority (Sec. 3.2), so
            # idle partial fibers spill to their reserved memory under
            # pressure instead of pinning capacity that B rows could use.
        self.stats.writes += hi - lo
        return 0, self.stats.dirty_evictions - dirty_before

    def consume_range(self, lo: int, hi: int) -> Tuple[int, int]:
        """Read-and-invalidate every partial line in [lo, hi).

        On hit the line is dropped without writeback even though dirty; a
        miss means the partial fiber was spilled and must be re-read from
        DRAM.

        Returns:
            (miss_lines, 0) — consumes free capacity, they never evict.
        """
        slot_of = self._slot_of
        tags = self._tags
        num_ways = self.num_ways
        num_banks = len(self.bank_accesses)
        bank_accesses = self.bank_accesses
        bank_hits = self.bank_hits
        bank_misses = self.bank_misses
        occupancy = self.occupancy
        fill = self._fill
        hits = 0
        misses = 0
        for addr in range(lo, hi):
            bank_accesses[addr % num_banks] += 1
            slot = slot_of.pop(addr, None)
            if slot is not None:
                hits += 1
                bank_hits[addr % num_banks] += 1
                occupancy[_CATEGORIES[self._cat[slot]]] -= 1
                tags[slot] = -1
                fill[slot // num_ways] -= 1
            else:
                misses += 1
                bank_misses[addr % num_banks] += 1
        self.stats.consume_hits += hits
        self.stats.consume_misses += misses
        self.miss_lines["partial"] += misses
        return misses, 0

    def consume_ranges(self, ranges) -> Tuple[int, int]:
        """Batched :meth:`consume_range` over several ``(lo, hi)`` ranges.

        One PE pass over an interior task consumes every partial input
        fiber back to back; this folds those consumes into one call with
        the exact per-address touch order of the serial calls and a
        single stats flush.

        Returns:
            (miss_lines, 0) summed over the ranges.
        """
        slot_of = self._slot_of
        tags = self._tags
        cat = self._cat
        num_ways = self.num_ways
        num_banks = len(self.bank_accesses)
        bank_accesses = self.bank_accesses
        bank_hits = self.bank_hits
        bank_misses = self.bank_misses
        occupancy = self.occupancy
        fill = self._fill
        hits = 0
        misses = 0
        for lo, hi in ranges:
            for addr in range(lo, hi):
                bank_accesses[addr % num_banks] += 1
                slot = slot_of.pop(addr, None)
                if slot is not None:
                    hits += 1
                    bank_hits[addr % num_banks] += 1
                    occupancy[_CATEGORIES[cat[slot]]] -= 1
                    tags[slot] = -1
                    fill[slot // num_ways] -= 1
                else:
                    misses += 1
                    bank_misses[addr % num_banks] += 1
        self.stats.consume_hits += hits
        self.stats.consume_misses += misses
        self.miss_lines["partial"] += misses
        return misses, 0

    def fetch_read_ranges(self, ranges,
                          category: str = "B") -> Tuple[int, int]:
        """Batched :meth:`fetch_read_range` over several ``(lo, hi)`` ranges.

        The per-task touch pattern for tasks with several direct inputs:
        fetch+read each range in order, identical state evolution to the
        serial calls, one stats flush. Ranges wrapping the set space
        (longer than ``num_sets`` lines) take the exact two-pass
        fallback, which flushes its own stats.

        Returns:
            (miss_lines, dirty_evictions) summed over the ranges.
        """
        if category not in self.miss_lines:
            raise ValueError(f"unknown line category {category!r}")
        cat_code = _CAT_CODE[category]
        slot_of = self._slot_of
        keys = self._key
        install = self._install
        num_sets = self.num_sets
        num_banks = len(self.bank_accesses)
        bank_accesses = self.bank_accesses
        bank_hits = self.bank_hits
        bank_misses = self.bank_misses
        stats = self.stats
        hits = 0
        misses = 0
        fused_lines = 0
        wrap_misses = 0
        dirty_before = stats.dirty_evictions
        for lo, hi in ranges:
            if hi - lo > num_sets:
                m1, _ = self.fetch_range(lo, hi, category)
                m2, _ = self.read_range(lo, hi, category)
                wrap_misses += m1 + m2
                continue
            for addr in range(lo, hi):
                bank = addr % num_banks
                bank_accesses[bank] += 2
                bank_hits[bank] += 1  # the read hits the fetched line
                slot = slot_of.get(addr)
                if slot is not None:
                    hits += 1
                    bank_hits[bank] += 1
                    # fetch: priority++ (saturating); read: priority--;
                    # the pair is a no-op unless already saturated.
                    k = keys[slot]
                    if k >= _KEY_PRIO_SAT:
                        k -= _KEY_PRIO_ONE
                    keys[slot] = k | _KEY_RRPV0
                else:
                    misses += 1
                    bank_misses[bank] += 1
                    # fetch installs at priority 1; the read drops it to 0.
                    install(addr, cat_code, _KEY_RRPV0)
            fused_lines += hi - lo
        stats.fetch_hits += hits
        stats.fetch_misses += misses
        stats.read_hits += fused_lines
        self.miss_lines[category] += misses
        return (misses + wrap_misses,
                stats.dirty_evictions - dirty_before)

    # ------------------------------------------------------------------
    # Scalar primitives (single-line wrappers over the range kernels)
    # ------------------------------------------------------------------
    def fetch(self, addr: int, category: str = "B") -> bool:
        """Decoupled prefetch of one line. Returns True on miss (DRAM read).

        Whether hit or miss, the line's priority counter is incremented so
        replacement will not victimize it before the matching ``read``.
        """
        return self.fetch_range(addr, addr + 1, category)[0] > 0

    def read(self, addr: int, category: str = "B") -> bool:
        """PE consumption of a fetched line. Returns True on miss.

        A miss means the line was evicted between fetch and read (or was
        never fetched) and costs a DRAM access.
        """
        return self.read_range(addr, addr + 1, category)[0] > 0

    def write(self, addr: int, category: str = "partial") -> None:
        """Allocate a line without fetching and mark it dirty (Sec. 3.2).

        Used for partial output fibers, which need not be backed by memory.
        """
        self.write_range(addr, addr + 1, category)

    def consume(self, addr: int) -> bool:
        """Read-and-invalidate a partial line. Returns True on miss."""
        return self.consume_range(addr, addr + 1)[0] > 0

    def invalidate(self, addr: int) -> None:
        """Drop a line if resident, without writeback (deallocation)."""
        slot = self._slot_of.pop(addr, None)
        if slot is not None:
            self.occupancy[_CATEGORIES[self._cat[slot]]] -= 1
            self._tags[slot] = -1
            self._fill[slot // self.num_ways] -= 1

    @property
    def last_victim_category(self) -> Optional[str]:
        victim = self._last_victim
        return victim[1] if victim is not None else None

    @property
    def last_victim_was_dirty(self) -> bool:
        victim = self._last_victim
        return bool(victim is not None and victim[2])

    @property
    def last_victim_addr(self) -> Optional[int]:
        victim = self._last_victim
        return victim[0] if victim is not None else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        return addr in self._slot_of

    def line_state(self, addr: int) -> Optional[LineView]:
        slot = self._slot_of.get(addr)
        if slot is None:
            return None
        key = self._key[slot]
        return LineView(
            addr=addr,
            category=_CATEGORIES[self._cat[slot]],
            priority=key >> _KEY_PRIO_SHIFT,
            rrpv=_RRPV_MAX - ((key >> _KEY_INV_SHIFT) & _RRPV_MAX),
            dirty=bool(self._dirty[slot]),
        )

    def set_arrays(self) -> Dict[str, "object"]:
        """The cache state as per-set NumPy arrays, shape (sets, ways).

        Way order within a set is storage order, not replacement order
        (replacement order is priority / RRPV / the ``seq`` array).
        Invalid ways have tag -1. Used by the lockstep tests and the
        observability layer; building the arrays is O(capacity), so this
        is not a hot-path call.
        """
        import numpy as np

        shape = (self.num_sets, self.num_ways)
        keys = np.asarray(self._key, dtype=np.int64)
        return {
            "tags": np.asarray(self._tags, dtype=np.int64).reshape(shape),
            "priority": (keys >> _KEY_PRIO_SHIFT).reshape(shape),
            "rrpv": (_RRPV_MAX
                     - ((keys >> _KEY_INV_SHIFT) & _RRPV_MAX)).reshape(shape),
            "dirty": np.asarray(self._dirty, dtype=bool).reshape(shape),
            "category": np.asarray(self._cat, dtype=np.int8).reshape(shape),
            "seq": (keys & _KEY_SEQ_MASK).reshape(shape),
        }

    @property
    def resident_lines(self) -> int:
        return self.occupancy["B"] + self.occupancy["partial"]

    @property
    def total_lines(self) -> int:
        return self.num_sets * self.num_ways

    def bank_load_imbalance(self) -> float:
        """max/mean accesses across banks (1.0 = perfectly balanced).

        A low value justifies the highly banked design: line-interleaved
        fiber accesses spread nearly uniformly over the 48 banks.
        """
        total = sum(self.bank_accesses)
        if total == 0:
            return 1.0
        mean = total / len(self.bank_accesses)
        return max(self.bank_accesses) / mean

    def bank_hit_rates(self) -> List[float]:
        """Hit fraction per bank over fetch/read/consume outcomes.

        Banks with no classified accesses report 1.0 (nothing missed).
        """
        rates = []
        for hits, misses in zip(self.bank_hits, self.bank_misses):
            total = hits + misses
            rates.append(hits / total if total else 1.0)
        return rates

    def publish_metrics(self, metrics) -> None:
        """Dump counters and per-bank tables into a MetricsRegistry."""
        for name in ("fetch_hits", "fetch_misses", "read_hits",
                     "read_misses", "writes", "consume_hits",
                     "consume_misses", "dirty_evictions",
                     "clean_evictions"):
            metrics.counter(f"cache/{name}").inc(getattr(self.stats, name))
        for category, lines in self.miss_lines.items():
            metrics.counter(f"cache/miss_lines/{category}").inc(lines)
        metrics.set_info("cache/bank_accesses", list(self.bank_accesses))
        metrics.set_info("cache/bank_hits", list(self.bank_hits))
        metrics.set_info("cache/bank_misses", list(self.bank_misses))
        metrics.set_info("cache/bank_hit_rates", self.bank_hit_rates())
        metrics.gauge("cache/bank_load_imbalance").set(
            self.bank_load_imbalance())
        average = self.average_utilization()
        for category, fraction in average.items():
            metrics.gauge(f"cache/utilization/{category}").set(fraction)

    def utilization(self) -> Dict[str, float]:
        """Instantaneous occupancy fractions by category."""
        total = self.total_lines
        used_b = self.occupancy["B"] / total
        used_p = self.occupancy["partial"] / total
        return {"B": used_b, "partial": used_p,
                "unused": max(0.0, 1.0 - used_b - used_p)}

    def sample_utilization(self, weight: float = 1.0) -> None:
        """Record a utilization sample (time-weighted, Figs. 14/18)."""
        if weight <= 0:
            return
        total = self.total_lines
        weighted = self._utilization_weighted
        weighted["B"] += self.occupancy["B"] / total * weight
        weighted["partial"] += self.occupancy["partial"] / total * weight
        self._utilization_weight += weight

    def sample_utilization_epoch(self, occ_b, occ_p, weights) -> None:
        """Batched :meth:`sample_utilization` over an epoch of tasks.

        Takes the per-task occupancy snapshots ``fetch_read_epoch``
        returned plus each task's cycle weight, and folds them into the
        running averages with the same expressions, in the same task
        order, as per-task sampling — so the published time-weighted
        utilization is bit-identical to the scalar path.
        """
        total = self.total_lines
        weighted = self._utilization_weighted
        acc_b = weighted["B"]
        acc_p = weighted["partial"]
        acc_w = self._utilization_weight
        for occupied_b, occupied_p, weight in zip(occ_b, occ_p, weights):
            if weight <= 0:
                continue
            acc_b += occupied_b / total * weight
            acc_p += occupied_p / total * weight
            acc_w += weight
        weighted["B"] = acc_b
        weighted["partial"] = acc_p
        self._utilization_weight = acc_w

    def average_utilization(self) -> Dict[str, float]:
        """Time-averaged occupancy fractions recorded by sampling."""
        if self._utilization_weight == 0:
            return self.utilization()
        used_b = self._utilization_weighted["B"] / self._utilization_weight
        used_p = (
            self._utilization_weighted["partial"] / self._utilization_weight
        )
        return {"B": used_b, "partial": used_p,
                "unused": max(0.0, 1.0 - used_b - used_p)}


def lines_for_bytes(num_bytes: int) -> int:
    """Lines occupied by a byte range starting at a line boundary."""
    return max(0, -(-num_bytes // LINE_BYTES))
