"""Experiment runner: scaled configurations and cached simulations.

Experiments run on a 1/64-scale Gamma (see DESIGN.md): suite matrices have
~1/64 of the paper's rows at the paper's nnz/row, and the FiberCache scales
with them, preserving every normalized metric (traffic ratios, bandwidth
utilization, speedups). Per-row footprints do *not* scale, so the tiling
threshold is anchored to absolute row footprints via
``TILE_THRESHOLD_BYTES``.

All results are memoized in process — the per-figure benchmarks share one
sweep of simulations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.config import CpuConfig, GammaConfig, PreprocessConfig
from repro.analysis.traffic import compulsory_traffic
from repro.baselines import (
    BaselineResult,
    run_inner_product_model,
    run_mkl_model,
    run_outerspace_model,
    run_sparch_model,
)
from repro.core import GammaSimulator, SimulationResult, WorkProgram
from repro.matrices import suite
from repro.preprocessing import preprocess

#: Scale factor between the paper's system and the simulated one.
MODEL_SCALE = 64

#: Paper FiberCache (3 MB) divided by the suite scale.
SCALED_FIBERCACHE_BYTES = 3 * 1024 * 1024 // MODEL_SCALE

#: Selective-tiling footprint threshold. Absolute, because per-row
#: footprints do not shrink with the suite scale (DESIGN.md).
TILE_THRESHOLD_BYTES = 2 * SCALED_FIBERCACHE_BYTES

#: Preprocessing variants by name (the paper's bar labels).
PREPROCESS_VARIANTS = ("none", "reorder", "reorder_tile_all", "full")


def scaled_gamma_config(**overrides) -> GammaConfig:
    """The default experiment system: paper Table 1 at 1/64 scale."""
    params = dict(fibercache_bytes=SCALED_FIBERCACHE_BYTES)
    params.update(overrides)
    return GammaConfig(**params)


def scaled_cpu_config() -> CpuConfig:
    """The MKL platform with its LLC at the same 1/64 scale."""
    return CpuConfig(llc_bytes=8 * 1024 * 1024 // MODEL_SCALE)


def preprocess_options(variant: str) -> Optional[PreprocessConfig]:
    """Map a variant name to preprocessing options (None = plain Gamma)."""
    if variant == "none":
        return None
    if variant == "reorder":
        base = PreprocessConfig.reorder_only()
    elif variant == "reorder_tile_all":
        base = PreprocessConfig.reorder_tile_all()
    elif variant == "full":
        base = PreprocessConfig.full()
    else:
        raise ValueError(
            f"unknown preprocessing variant {variant!r}; "
            f"known: {PREPROCESS_VARIANTS}"
        )
    return dataclasses.replace(
        base, tile_threshold_bytes=TILE_THRESHOLD_BYTES)


class ExperimentRunner:
    """Runs and memoizes every model the figures need."""

    def __init__(self) -> None:
        self._gamma_cache: Dict[Tuple, SimulationResult] = {}
        self._program_cache: Dict[Tuple, WorkProgram] = {}
        self._baseline_cache: Dict[Tuple, BaselineResult] = {}
        self._c_nnz_cache: Dict[str, int] = {}

    # -- Gamma ----------------------------------------------------------
    def gamma(
        self,
        name: str,
        preprocess_variant: str = "none",
        config: Optional[GammaConfig] = None,
        multi_pe: bool = True,
    ) -> SimulationResult:
        """Simulate Gamma on a suite matrix (cached in memory and on disk)."""
        config = config or scaled_gamma_config()
        key = ("gamma", name, preprocess_variant, config, multi_pe)
        if key not in self._gamma_cache:
            result = self._gamma_uncached(
                name, preprocess_variant, config, multi_pe)
            self._gamma_cache[key] = result
            self._c_nnz_cache.setdefault(
                name,
                (result.compulsory_bytes["C"]
                 - 4 * suite.load(name).num_rows) // 12,
            )
        return self._gamma_cache[key]

    def _gamma_uncached(
        self,
        name: str,
        preprocess_variant: str,
        config: GammaConfig,
        multi_pe: bool,
    ) -> SimulationResult:
        from repro.experiments import diskcache

        disk_key = diskcache.cache_key(
            "gamma", name=name, variant=preprocess_variant,
            config=dataclasses.astuple(config), multi_pe=multi_pe,
        )
        cached = diskcache.load(disk_key)
        if cached is not None:
            return SimulationResult(
                output=None,
                cycles=cached["cycles"],
                traffic_bytes=cached["traffic_bytes"],
                compulsory_bytes=cached["compulsory_bytes"],
                flops=cached["flops"],
                pe_busy_cycles=cached["pe_busy_cycles"],
                num_tasks=cached["num_tasks"],
                num_partial_fibers=cached["num_partial_fibers"],
                cache_utilization=cached["cache_utilization"],
                config=config,
            )
        a, b = suite.operands(name)
        program = self._program(name, preprocess_variant, config)
        sim = GammaSimulator(config, multi_pe_scheduling=multi_pe,
                             keep_output=False)
        result = sim.run(a, b, program=program)
        diskcache.store(disk_key, {
            "cycles": result.cycles,
            "traffic_bytes": result.traffic_bytes,
            "compulsory_bytes": result.compulsory_bytes,
            "flops": result.flops,
            "pe_busy_cycles": result.pe_busy_cycles,
            "num_tasks": result.num_tasks,
            "num_partial_fibers": result.num_partial_fibers,
            "cache_utilization": result.cache_utilization,
        })
        return result

    def _program(
        self, name: str, variant: str, config: GammaConfig
    ) -> Optional[WorkProgram]:
        options = preprocess_options(variant)
        if options is None:
            return None
        key = (name, variant, config.fibercache_bytes, config.radix)
        if key not in self._program_cache:
            self._program_cache[key] = self._program_uncached(
                name, variant, config, options)
        return self._program_cache[key]

    def _program_uncached(self, name, variant, config, options):
        from repro.experiments import diskcache
        import numpy as np
        from repro.core.scheduler import WorkItem

        disk_key = diskcache.cache_key(
            "program", name=name, variant=variant,
            cache_bytes=config.fibercache_bytes, radix=config.radix,
        )
        cached = diskcache.load(disk_key)
        if cached is not None:
            items = [
                WorkItem(
                    row=row, part=part, num_parts=num_parts,
                    coords=np.asarray(coords, dtype=np.int64),
                    values=np.asarray(values, dtype=np.float64),
                )
                for row, part, num_parts, coords, values
                in cached["items"]
            ]
            return WorkProgram(items, cached["num_rows"],
                               cached["num_cols"])
        a, b = suite.operands(name)
        program = preprocess(a, b, config, options)
        diskcache.store(disk_key, {
            "items": [
                [item.row, item.part, item.num_parts,
                 item.coords.tolist(), item.values.tolist()]
                for item in program.items
            ],
            "num_rows": program.num_rows,
            "num_cols": program.num_cols,
        })
        return program

    # -- output size (needed by the traffic models) -----------------------
    def c_nnz(self, name: str) -> int:
        if name not in self._c_nnz_cache:
            self.gamma(name)
        return self._c_nnz_cache[name]

    def compulsory(self, name: str) -> Dict[str, int]:
        a, b = suite.operands(name)
        return compulsory_traffic(a, b, self.c_nnz(name))

    def compulsory_total(self, name: str) -> int:
        return sum(self.compulsory(name).values())

    # -- baselines --------------------------------------------------------
    def baseline(self, model: str, name: str) -> BaselineResult:
        """Run a named baseline model on a suite matrix (cached)."""
        key = (model, name)
        if key not in self._baseline_cache:
            a, b = suite.operands(name)
            c_nnz = self.c_nnz(name)
            config = scaled_gamma_config()
            if model == "outerspace":
                result = run_outerspace_model(a, b, config, c_nnz)
            elif model == "sparch":
                result = run_sparch_model(a, b, config, c_nnz)
            elif model == "ip":
                result = run_inner_product_model(a, b, config, c_nnz)
            elif model == "mkl":
                result = run_mkl_model(a, b, scaled_cpu_config(), c_nnz)
            else:
                raise ValueError(f"unknown baseline model {model!r}")
            self._baseline_cache[key] = result
        return self._baseline_cache[key]

    def speedup_over_mkl(self, name: str, runtime_seconds: float) -> float:
        mkl = self.baseline("mkl", name)
        return mkl.runtime_seconds / runtime_seconds


#: Shared module-level runner so every figure reuses the same sweeps.
RUNNER = ExperimentRunner()
