"""Fig. 20: multi-PE vs single-PE-per-row scheduling on email-Enron.

Paper: the multi-PE dataflow schedule consumes partial fibers sooner,
reducing traffic by ~18% and improving performance by ~17%.
"""


def test_fig20(run_figure):
    result = run_figure("fig20")
    rows = {r["scheduler"]: r for r in result["rows"]}

    multi, single = rows["multi-PE"], rows["single-PE"]
    # Multi-PE scheduling is no slower and no more traffic-hungry.
    assert multi["cycles"] <= single["cycles"] * 1.02
    assert multi["total"] <= single["total"] * 1.02
    assert result["speedup"] >= 0.98
