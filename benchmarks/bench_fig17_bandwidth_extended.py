"""Fig. 17: bandwidth utilization on the extended set.

Paper: denser matrices become compute-bound, so several inputs stop
saturating memory bandwidth (unlike the common set).
"""

from conftest import by_matrix


def test_fig17(run_figure):
    result = run_figure("fig17")
    rows = by_matrix(result["rows"])
    not_saturated = sum(
        1 for n, r in rows.items() if n != "mean" and r["GP"] < 0.85
    )
    assert not_saturated >= 3  # several compute-bound matrices
    assert 0.2 < rows["mean"]["GP"] <= 1.0
