"""Tests for the spMspM applications: BFS, APSP, matrix chains.

Graph builders (``random_graph``, ``random_weighted_graph``) live in
``conftest.py`` and are shared with the masked-app suite.
"""

import numpy as np
import pytest

from tests.conftest import random_graph, random_weighted_graph
from repro.apps import (
    all_pairs_shortest_paths,
    bfs_levels,
    matrix_chain,
    matrix_power,
)
from repro.apps.apsp import apsp_reference
from repro.apps.bfs import bfs_reference
from repro.config import GammaConfig
from repro.matrices import generators
from repro.matrices.csr import CsrMatrix


class TestBfs:
    def test_matches_reference_single_source(self, undirected_graph):
        result = bfs_levels(undirected_graph, [0])
        np.testing.assert_array_equal(
            result["levels"][0], bfs_reference(undirected_graph, 0))

    def test_multi_source(self):
        adj = random_graph(50, 3.0, seed=2, symmetric=True)
        sources = [0, 7, 23]
        result = bfs_levels(adj, sources)
        for i, source in enumerate(sources):
            np.testing.assert_array_equal(
                result["levels"][i], bfs_reference(adj, source))

    def test_reports_accelerator_cost(self, directed_graph):
        result = bfs_levels(directed_graph, [0])
        assert result["iterations"] >= 1
        assert result["total_cycles"] > 0
        assert result["total_traffic"] > 0

    def test_max_levels_caps_iterations(self):
        adj = random_graph(60, 2.5, seed=4, symmetric=True)
        result = bfs_levels(adj, [0], max_levels=2)
        assert result["iterations"] <= 2
        assert result["levels"].max() <= 2

    def test_validation(self):
        adj = random_graph(10, 2.0, seed=5)
        with pytest.raises(ValueError, match="out of range"):
            bfs_levels(adj, [99])
        rect = generators.uniform_random(4, 6, 2.0, seed=6)
        with pytest.raises(ValueError, match="square"):
            bfs_levels(rect, [0])


class TestApsp:
    def test_matches_floyd_warshall(self):
        weights = random_weighted_graph(25, seed=7)
        result = all_pairs_shortest_paths(
            weights, GammaConfig(radix=8))
        np.testing.assert_allclose(
            result["distances"], apsp_reference(weights), atol=1e-9)

    def test_disconnected_stays_inf(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = 2.0
        dense[2, 3] = 1.0
        weights = CsrMatrix.from_dense(dense)
        result = all_pairs_shortest_paths(weights)
        assert result["distances"][0, 1] == 2.0
        assert np.isinf(result["distances"][0, 3])

    def test_logarithmic_iterations(self):
        weights = random_weighted_graph(30, seed=8)
        result = all_pairs_shortest_paths(weights)
        assert result["iterations"] <= int(np.ceil(np.log2(30))) + 1

    def test_validation(self):
        rect = generators.uniform_random(4, 6, 2.0, seed=9)
        with pytest.raises(ValueError, match="square"):
            all_pairs_shortest_paths(rect)
        negative = CsrMatrix.from_dense(np.array([[0.0, -1.0],
                                                  [0.0, 0.0]]))
        with pytest.raises(ValueError, match="negative"):
            all_pairs_shortest_paths(negative)


class TestChain:
    def test_chain_matches_scipy(self):
        ms = [generators.uniform_random(30, 30, 4.0, seed=s)
              for s in (10, 11, 12)]
        product, report = matrix_chain(ms)
        expected = (ms[0].to_scipy() @ ms[1].to_scipy()
                    @ ms[2].to_scipy()).toarray()
        np.testing.assert_allclose(product.to_dense(), expected,
                                   atol=1e-8)
        assert report.num_products == 2
        assert report.total_cycles > 0

    def test_single_matrix_chain(self):
        m = generators.uniform_random(10, 10, 2.0, seed=13)
        product, report = matrix_chain([m])
        assert product is m
        assert report.num_products == 0
        assert report.conversion_bytes == 0

    def test_power(self):
        m = generators.uniform_random(20, 20, 3.0, seed=14)
        cubed, report = matrix_power(m, 3)
        expected = np.linalg.matrix_power(m.to_dense(), 3)
        np.testing.assert_allclose(cubed.to_dense(), expected, atol=1e-8)
        assert report.num_products == 2

    def test_conversion_overhead_accounted(self):
        """The Sec. 2.2 claim: CSC-input dataflows pay per-step format
        conversions that Gustavson's consistent-CSR chain avoids."""
        m = generators.uniform_random(80, 80, 4.0, seed=15)
        _, report = matrix_power(m, 4)
        # 3 products, 2 intermediates converted (the last is final).
        assert report.conversion_bytes > 0
        assert report.conversion_overhead > 0.05

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            matrix_chain([])
        a = generators.uniform_random(4, 5, 2.0, seed=16)
        b = generators.uniform_random(4, 5, 2.0, seed=17)
        with pytest.raises(ValueError, match="dimension mismatch"):
            matrix_chain([a, b])
        with pytest.raises(ValueError, match="exponent"):
            matrix_power(a, 0)
        with pytest.raises(ValueError, match="square"):
            matrix_power(a, 2)
