"""Additional edge-case tests for matrix statistics and affinity scoring."""

import numpy as np
import pytest

from repro.matrices import generators, stats
from repro.matrices.csr import CsrMatrix
from repro.matrices.fiber import Fiber


class TestAffinityEdgeCases:
    def test_disjoint_rows_zero_affinity(self):
        m = CsrMatrix.from_rows(
            [Fiber([0, 1], [1.0, 1.0]), Fiber([2, 3], [1.0, 1.0])], 4)
        assert stats.row_affinity(m, 0, 1) == 0
        assert stats.matrix_affinity(m, window=1) == 0

    def test_identical_rows_full_affinity(self):
        fiber = Fiber([1, 5, 9], [1.0, 2.0, 3.0])
        m = CsrMatrix.from_rows([fiber, fiber], 10)
        assert stats.row_affinity(m, 0, 1) == 3
        assert stats.matrix_affinity(m, window=1) == 3

    def test_window_limits_history(self):
        fiber = Fiber([0], [1.0])
        blank = Fiber([5], [1.0])
        # Rows 0 and 2 share a column; row 1 does not.
        m = CsrMatrix.from_rows([fiber, blank, fiber], 10)
        assert stats.matrix_affinity(m, window=1) == 0
        assert stats.matrix_affinity(m, window=2) == 1

    def test_affinity_of_empty_matrix(self):
        m = CsrMatrix.from_rows([], 4)
        assert stats.matrix_affinity(m, window=3) == 0

    def test_affinity_symmetric(self):
        m = generators.uniform_random(30, 30, 4.0, seed=1)
        assert stats.row_affinity(m, 3, 7) == stats.row_affinity(m, 7, 3)


class TestWindowSize:
    def test_matches_eq2(self):
        # W = cache_bytes / (avg_nnz_per_row * element_bytes).
        m = generators.uniform_random(100, 100, 10.0, seed=2)
        avg = m.nnz / m.num_rows
        expected = int((48 * 1024) / (avg * 12))
        assert stats.window_size(m, 48 * 1024) == pytest.approx(
            expected, abs=2)

    def test_minimum_one(self):
        m = generators.uniform_random(10, 10, 5.0, seed=3)
        assert stats.window_size(m, 1) >= 1

    def test_empty_matrix(self):
        m = CsrMatrix.from_rows([], 10)
        assert stats.window_size(m, 1024) >= 1


class TestFlopsAndReuse:
    def test_flops_zero_for_empty_a(self):
        a = CsrMatrix.from_rows([], 10)
        b = generators.uniform_random(10, 10, 3.0, seed=4)
        assert stats.flops(a, b) == 0

    def test_reuse_factor_one_when_unique(self):
        # Every A nonzero references a distinct B row.
        a = CsrMatrix.from_dense(np.eye(6))
        assert stats.reuse_factor(a, a) == 1.0

    def test_reuse_factor_counts_repeats(self):
        dense = np.zeros((4, 4))
        dense[:, 0] = 1.0  # all rows reference B row 0
        a = CsrMatrix.from_dense(dense)
        assert stats.reuse_factor(a, a) == 4.0

    def test_reuse_factor_empty(self):
        a = CsrMatrix.from_rows([], 4)
        assert stats.reuse_factor(a, a) == 0.0


class TestMatrixStatsDataclass:
    def test_empty_matrix_stats(self):
        m = CsrMatrix.from_rows([], 7)
        s = stats.MatrixStats.of(m)
        assert s.rows == 0
        assert s.nnz == 0
        assert s.nnz_per_row_mean == 0.0
        assert s.nnz_per_row_max == 0

    def test_footprint_matches_nbytes(self):
        m = generators.uniform_random(20, 20, 3.0, seed=5)
        assert stats.MatrixStats.of(m).footprint_bytes == m.nbytes
