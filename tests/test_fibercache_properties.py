"""Hypothesis property tests: FiberCache invariants under random use.

The four primitives (fetch / read / write / consume) are interleaved in
random orders over a tiny cache so evictions and re-installs happen
constantly; structural invariants — bounded occupancy, non-negative
bounded priority counters, residency postconditions, coherent counters —
must hold at every step. Everything is checked through the public
surface (``set_arrays`` / ``line_state`` / counters), so these tests
survive internal-representation changes like the batched array rewrite.
"""

from hypothesis import given, settings, strategies as st

from repro.config import GammaConfig
from repro.core.fibercache import FiberCache, _PRIORITY_MAX

#: 16 lines, 4 ways x 4 sets, 4 banks: tiny enough that ~every operation
#: sequence overflows sets and exercises replacement.
TINY = GammaConfig(
    num_pes=2, fibercache_bytes=1024, fibercache_ways=4,
    fibercache_banks=4,
)

ADDRESSES = st.integers(0, 63)
CATEGORIES = st.sampled_from(["B", "partial"])

OPERATIONS = st.one_of(
    st.tuples(st.just("fetch"), ADDRESSES, CATEGORIES),
    st.tuples(st.just("read"), ADDRESSES, CATEGORIES),
    st.tuples(st.just("write"), ADDRESSES, st.just("partial")),
    st.tuples(st.just("consume"), ADDRESSES, st.just("partial")),
    st.tuples(st.just("invalidate"), ADDRESSES, st.just("partial")),
)


def apply(cache, operation):
    kind, addr, category = operation
    if kind == "fetch":
        cache.fetch(addr, category)
    elif kind == "read":
        cache.read(addr, category)
    elif kind == "write":
        cache.write(addr, category)
    elif kind == "consume":
        cache.consume(addr)
    else:
        cache.invalidate(addr)


def check_structure(cache):
    """Invariants that must hold after every single operation."""
    arrays = cache.set_arrays()
    tags = arrays["tags"]
    priority = arrays["priority"]
    rrpv = arrays["rrpv"]
    category = arrays["category"]
    by_category = {"B": 0, "partial": 0}
    assert tags.shape == (cache.num_sets, cache.num_ways)
    for set_index in range(cache.num_sets):
        for way in range(cache.num_ways):
            addr = int(tags[set_index, way])
            if addr < 0:
                continue
            assert addr % cache.num_sets == set_index
            assert 0 <= priority[set_index, way] <= _PRIORITY_MAX
            assert 0 <= rrpv[set_index, way] <= 3
            by_category["B" if category[set_index, way] == 0 else
                        "partial"] += 1
            # line_state must agree with the exported arrays.
            view = cache.line_state(addr)
            assert view is not None and view.addr == addr
            assert view.priority == priority[set_index, way]
            assert view.rrpv == rrpv[set_index, way]
    assert cache.occupancy == by_category
    assert 0 <= cache.resident_lines <= cache.total_lines


class TestFiberCacheProperties:
    @given(st.lists(OPERATIONS, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_random_interleavings(self, operations):
        cache = FiberCache(TINY)
        for operation in operations:
            apply(cache, operation)
            kind, addr, _ = operation
            if kind in ("fetch", "read", "write"):
                assert cache.contains(addr)
            else:  # consume / invalidate drop the line
                assert not cache.contains(addr)
        check_structure(cache)

    @given(st.lists(OPERATIONS, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_counter_coherence(self, operations):
        cache = FiberCache(TINY)
        counts = {"fetch": 0, "read": 0, "write": 0, "consume": 0,
                  "invalidate": 0}
        for operation in operations:
            apply(cache, operation)
            counts[operation[0]] += 1
        stats = cache.stats
        assert stats.fetch_hits + stats.fetch_misses == counts["fetch"]
        assert stats.read_hits + stats.read_misses == counts["read"]
        assert stats.writes == counts["write"]
        assert (stats.consume_hits + stats.consume_misses
                == counts["consume"])
        # Every fetch/read/write/consume touches exactly one bank, and
        # fetch/read/consume classify it as a hit or a miss.
        classified = counts["fetch"] + counts["read"] + counts["consume"]
        assert sum(cache.bank_hits) + sum(cache.bank_misses) == classified
        assert sum(cache.bank_accesses) == classified + counts["write"]
        assert all(0.0 <= rate <= 1.0 for rate in cache.bank_hit_rates())
        # Misses are what the DRAM sees: the per-category miss lines must
        # add up to the per-primitive miss counters.
        assert (sum(cache.miss_lines.values())
                == stats.fetch_misses + stats.read_misses
                + stats.consume_misses)

    @given(st.lists(OPERATIONS, min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_eviction_accounting(self, operations):
        cache = FiberCache(TINY)
        for operation in operations:
            apply(cache, operation)
        stats = cache.stats
        # Installs: fetch/read misses always install; a write installs
        # only when the line was absent. Whatever was installed is now
        # either resident or was removed by eviction/consume/invalidate,
        # so evictions can never exceed installs.
        max_installs = (stats.fetch_misses + stats.read_misses
                        + stats.writes)
        assert (stats.dirty_evictions + stats.clean_evictions
                <= max_installs)

    @given(st.lists(st.tuples(st.just("fetch"), ADDRESSES,
                              st.just("B")), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_fetch_only_never_writes_back(self, operations):
        cache = FiberCache(TINY)
        for operation in operations:
            apply(cache, operation)
        assert cache.stats.dirty_evictions == 0
        assert cache.occupancy["partial"] == 0

    @given(st.lists(st.tuples(ADDRESSES, st.integers(1, 20)),
                    max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_range_primitives_preserve_invariants(self, ranges):
        """The batched primitives uphold the same structural invariants."""
        cache = FiberCache(TINY)
        for step, (lo, span) in enumerate(ranges):
            hi = lo + span
            kind = step % 4
            if kind == 0:
                # Fetch + read passes: a range longer than a set's
                # capacity can evict its own lines between the passes,
                # so up to 2 * span misses are possible.
                misses, dirty = cache.fetch_read_range(lo, hi, "B")
                assert misses <= 2 * span and dirty >= 0
                continue
            if kind == 1:
                misses, dirty = cache.write_range(lo, hi, "partial")
            elif kind == 2:
                misses, dirty = cache.consume_range(lo, hi)
            else:
                misses, dirty = cache.fetch_range(lo, hi, "B")
            assert 0 <= misses <= span
            assert dirty >= 0
        check_structure(cache)
