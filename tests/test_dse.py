"""Tests for design-space exploration."""

import pytest

from repro.analysis.dse import (
    DesignPoint,
    best_performance_per_area,
    candidate_configs,
    evaluate,
    pareto_frontier,
)
from repro.config import GammaConfig
from repro.matrices import generators


class TestCandidates:
    def test_cross_product_size(self):
        configs = candidate_configs(
            pe_counts=(8, 32), radices=(64,), cache_bytes=(1 << 20,))
        assert len(configs) == 2
        assert {c.num_pes for c in configs} == {8, 32}

    def test_base_preserved(self):
        base = GammaConfig(frequency_hz=2e9)
        configs = candidate_configs(
            pe_counts=(8,), radices=(64,), cache_bytes=(1 << 20,),
            base=base)
        assert configs[0].frequency_hz == 2e9


class TestEvaluate:
    @pytest.fixture(scope="class")
    def points(self):
        a = generators.mesh(400, 12.0, seed=1)
        configs = candidate_configs(
            pe_counts=(4, 16), radices=(16,),
            cache_bytes=(16 * 1024, 64 * 1024))
        return evaluate((a, a), configs)

    def test_all_configs_evaluated(self, points):
        assert len(points) == 4

    def test_areas_positive_and_ordered(self, points):
        assert all(p.area_mm2 > 0 for p in points)
        small = min(points, key=lambda p: p.area_mm2)
        big = max(points, key=lambda p: p.area_mm2)
        assert small.config.num_pes <= big.config.num_pes

    def test_labels(self, points):
        assert points[0].label.endswith("KB")
        assert "PE" in points[0].label

    def test_progress_callback(self):
        a = generators.mesh(100, 6.0, seed=2)
        seen = []
        evaluate((a, a),
                 candidate_configs(pe_counts=(4,), radices=(16,),
                                   cache_bytes=(16 * 1024,)),
                 progress=seen.append)
        assert len(seen) == 1
        assert isinstance(seen[0], DesignPoint)


class TestPareto:
    def _point(self, area, cycles):
        return DesignPoint(GammaConfig(), area, cycles, 0)

    def test_dominated_points_removed(self):
        points = [
            self._point(10, 100),
            self._point(20, 100),   # bigger, no faster -> dominated
            self._point(20, 50),
            self._point(30, 70),    # bigger and slower than (20, 50)
        ]
        frontier = pareto_frontier(points)
        assert [(p.area_mm2, p.cycles) for p in frontier] == [
            (10, 100), (20, 50)]

    def test_frontier_sorted_by_area(self):
        points = [self._point(a, c) for a, c in
                  ((30, 10), (10, 100), (20, 50))]
        frontier = pareto_frontier(points)
        areas = [p.area_mm2 for p in frontier]
        assert areas == sorted(areas)

    def test_single_point(self):
        points = [self._point(5, 5)]
        assert pareto_frontier(points) == points

    def test_best_performance_per_area(self):
        points = [self._point(10, 100), self._point(100, 50)]
        best = best_performance_per_area(points)
        assert best.area_mm2 == 10  # 10x cheaper, only 2x slower
        with pytest.raises(ValueError):
            best_performance_per_area([])

    def test_more_area_never_slower_on_real_workload(self):
        """Bigger caches on the frontier must actually help."""
        a = generators.mesh(400, 12.0, seed=3)
        configs = candidate_configs(
            pe_counts=(16,), radices=(16,),
            cache_bytes=(8 * 1024, 64 * 1024))
        points = evaluate((a, a), configs)
        assert points[1].cycles <= points[0].cycles
