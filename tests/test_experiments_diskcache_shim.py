"""Regression test for the deprecated ``repro.experiments.diskcache``
shim: it must warn exactly once (on import) and re-export the engine
module's full public surface, so legacy imports keep working while the
deprecation stays visible.

Runs the import in a subprocess so the result does not depend on what
any other test already imported into this interpreter.
"""

import subprocess
import sys
import textwrap

from repro.engine import diskcache as engine_diskcache

ASSERT_SCRIPT = textwrap.dedent("""
    import json
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.experiments.diskcache as shim
        # re-importing must NOT warn again (module cache)
        import repro.experiments.diskcache  # noqa: F811
    import repro.engine.diskcache as engine

    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "repro.experiments.diskcache" in str(w.message)]
    surface = {name: getattr(shim, name) is getattr(engine, name)
               for name in shim.__all__}
    print(json.dumps({
        "warn_count": len(deprecations),
        "message": str(deprecations[0].message) if deprecations else "",
        "all": sorted(shim.__all__),
        "same_objects": surface,
    }))
""")


def test_shim_warns_exactly_once_and_reexports_everything():
    completed = subprocess.run(
        [sys.executable, "-c", ASSERT_SCRIPT],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=str(__import__("pathlib").Path(__file__).parents[1]))
    import json
    report = json.loads(completed.stdout)
    assert report["warn_count"] == 1
    assert "repro.engine.diskcache" in report["message"]
    # the shim's surface is the engine's surface, object-identical
    assert all(report["same_objects"].values())
    # ...and it is the *full* public surface the engine exports
    engine_public = {
        name for name in dir(engine_diskcache)
        if not name.startswith("_")
        and not getattr(getattr(engine_diskcache, name), "__module__",
                        "repro.engine.diskcache").startswith(("typing",))
        and name not in ("annotations",)
    }
    # modules/constants imported by the engine module itself are not
    # part of its cache API; compare against the shim's declared list
    expected = {"ENTRY_FORMAT", "cache_dir", "cache_enabled",
                "cache_key", "contains", "entry_path", "invalidate",
                "load", "payload_checksum", "store"}
    assert set(report["all"]) == expected
    assert expected <= engine_public


def test_shim_loads_and_stores_through_engine(tmp_path, monkeypatch):
    """Going through the shim hits the same cache files as the engine
    path (it is the same implementation, not a copy)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    import repro.experiments.diskcache as shim
    key = shim.cache_key("shim-test", x=1)
    shim.store(key, {"v": 42})
    assert engine_diskcache.load(key) == {"v": 42}
    assert shim.entry_path(key) == engine_diskcache.entry_path(key)
