"""Default experiment system: paper Table 1 at 1/64 scale.

Experiments run on a 1/64-scale Gamma (see DESIGN.md): suite matrices have
~1/64 of the paper's rows at the paper's nnz/row, and the FiberCache scales
with them, preserving every normalized metric (traffic ratios, bandwidth
utilization, speedups). Per-row footprints do *not* scale, so the tiling
threshold is anchored to absolute row footprints via
``TILE_THRESHOLD_BYTES``.

These constants live in the engine (not the experiment facade) so sweep
worker processes can rebuild the exact same configurations from a pickled
:class:`~repro.engine.sweep.SweepPoint` alone.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.config import CpuConfig, GammaConfig, PreprocessConfig

#: Scale factor between the paper's system and the simulated one.
MODEL_SCALE = 64

#: Paper FiberCache (3 MB) divided by the suite scale.
SCALED_FIBERCACHE_BYTES = 3 * 1024 * 1024 // MODEL_SCALE

#: Selective-tiling footprint threshold. Absolute, because per-row
#: footprints do not shrink with the suite scale (DESIGN.md).
TILE_THRESHOLD_BYTES = 2 * SCALED_FIBERCACHE_BYTES

#: Preprocessing variants by name (the paper's bar labels).
PREPROCESS_VARIANTS = ("none", "reorder", "reorder_tile_all", "full")

#: GammaConfig fields the preprocessing pipeline actually consumes.
#: Program cache keys are derived from exactly this list, so programs are
#: shared across config sweeps that only vary other fields (PE count,
#: bandwidth, ...). Extend it if the pipeline starts reading more fields.
PREPROCESS_CONFIG_FIELDS = ("fibercache_bytes", "radix")


def scaled_gamma_config(**overrides) -> GammaConfig:
    """The default experiment system: paper Table 1 at 1/64 scale."""
    params = dict(fibercache_bytes=SCALED_FIBERCACHE_BYTES)
    params.update(overrides)
    return GammaConfig(**params)


def scaled_cpu_config() -> CpuConfig:
    """The MKL platform with its LLC at the same 1/64 scale."""
    return CpuConfig(llc_bytes=8 * 1024 * 1024 // MODEL_SCALE)


def preprocess_options(variant: str) -> Optional[PreprocessConfig]:
    """Map a variant name to preprocessing options (None = plain Gamma)."""
    if variant == "none":
        return None
    if variant == "reorder":
        base = PreprocessConfig.reorder_only()
    elif variant == "reorder_tile_all":
        base = PreprocessConfig.reorder_tile_all()
    elif variant == "full":
        base = PreprocessConfig.full()
    else:
        raise ValueError(
            f"unknown preprocessing variant {variant!r}; "
            f"known: {PREPROCESS_VARIANTS}"
        )
    return dataclasses.replace(
        base, tile_threshold_bytes=TILE_THRESHOLD_BYTES)


def preprocess_config_key(config: GammaConfig) -> dict:
    """The canonical program-cache key fields for a configuration.

    Both the in-memory program memo and the program disk cache key off
    this dict, keeping the record-level and program-level cache keys
    consistent (one source of truth for which config fields matter).
    """
    return {name: getattr(config, name)
            for name in PREPROCESS_CONFIG_FIELDS}
