"""Row-granular reuse models shared by baselines and preprocessing.

An LRU stack over B row ids, bounded by byte footprint, approximates how
much B-read traffic a row-traversal order incurs under a given on-chip
capacity. Much cheaper than the line-level FiberCache simulation; used
where only an estimate is needed (CPU cache model, SpArch prefetch buffer,
ordering comparisons).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator

from repro.config import ELEMENT_BYTES
from repro.matrices.csr import CsrMatrix


class LruRowCache:
    """Footprint-bounded LRU over B row ids."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._rows: OrderedDict = OrderedDict()
        self._resident_bytes = 0
        self.miss_bytes = 0
        self.hits = 0
        self.misses = 0

    def access(self, row_id: int, row_bytes: int) -> bool:
        """Touch one row; returns True on miss (traffic incurred)."""
        if row_id in self._rows:
            self._rows.move_to_end(row_id)
            self.hits += 1
            return False
        self.misses += 1
        self.miss_bytes += row_bytes
        self._rows[row_id] = row_bytes
        self._resident_bytes += row_bytes
        while self._resident_bytes > self.capacity_bytes and self._rows:
            _, evicted = self._rows.popitem(last=False)
            self._resident_bytes -= evicted
        return True

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes


def b_read_traffic(
    b_row_stream: Iterable[int],
    b: CsrMatrix,
    capacity_bytes: int,
) -> int:
    """B-read bytes for a stream of B row accesses under LRU capacity."""
    lengths = b.row_lengths()
    cache = LruRowCache(capacity_bytes)
    for row_id in b_row_stream:
        cache.access(int(row_id), int(lengths[row_id]) * ELEMENT_BYTES)
    return cache.miss_bytes


def gustavson_row_stream(a: CsrMatrix) -> Iterator[int]:
    """The B rows touched by Gustavson's dataflow, in traversal order."""
    for coord in a.coords:
        yield int(coord)
