"""Triangle counting as masked SpGEMM: ``count = sum((L x L)<L>)``.

The standard GraphBLAS formulation [Azad et al., IPDPS'15]: with L the
strict lower triangle of the (symmetrized, boolean) adjacency matrix,
``(L x L)[i, j]`` counts the wedges ``i > k > j``, and masking by L keeps
only wedges closed by an ``i-j`` edge — every triangle exactly once. One
masked spMspM on the simulated Gamma, with the mask pruning both the B
fetch set and the writeback (see :mod:`repro.apps.masked`).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.masked import masked_spgemm
from repro.config import GammaConfig
from repro.matrices.csr import CsrMatrix


def _strict_lower_pattern(adjacency: CsrMatrix) -> CsrMatrix:
    """L: the strict lower triangle of the symmetrized boolean pattern."""
    dense = adjacency.to_dense() != 0
    sym = dense | dense.T
    np.fill_diagonal(sym, False)
    return CsrMatrix.from_dense(np.tril(sym).astype(float))


def triangle_count(
    adjacency: CsrMatrix,
    config: Optional[GammaConfig] = None,
    simulator_cls=None,
) -> Dict:
    """Count triangles of an undirected graph on the simulated Gamma.

    Args:
        adjacency: Square adjacency matrix; edge direction and values
            are ignored (the pattern is symmetrized, self-loops
            dropped).
        config: Gamma system to simulate.
        simulator_cls: Alternate engine (e.g. the reference core).

    Returns:
        dict with:
        * ``triangles`` — the count;
        * ``wedges`` — masked-product nonzeros (closed-wedge positions);
        * ``total_cycles`` / ``total_traffic`` — accelerator cost of the
          masked product.
    """
    if adjacency.num_rows != adjacency.num_cols:
        raise ValueError("adjacency matrix must be square")
    lower = _strict_lower_pattern(adjacency)
    result = masked_spgemm(lower, lower, mask=lower, config=config,
                           simulator_cls=simulator_cls)
    triangles = int(round(float(result.output.values.sum())))
    return {
        "triangles": triangles,
        "wedges": result.c_nnz,
        "total_cycles": result.cycles,
        "total_traffic": result.total_traffic,
    }


def triangle_count_reference(adjacency: CsrMatrix) -> int:
    """Brute-force O(n^3) triangle count for cross-checking."""
    dense = adjacency.to_dense() != 0
    sym = dense | dense.T
    np.fill_diagonal(sym, False)
    n = adjacency.num_rows
    count = 0
    for i in range(n):
        for j in range(i + 1, n):
            if not sym[i, j]:
                continue
            for k in range(j + 1, n):
                if sym[i, k] and sym[j, k]:
                    count += 1
    return count
