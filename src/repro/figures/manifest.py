"""The figure set's manifest: what was generated, from what, verbatim.

``figures_manifest.json`` is the figure directory's table of contents
and integrity record: schema version, generation scope, a fingerprint
of every simulation record the figures were derived from, and — per
figure — the artifact filenames, row counts, and SHA-256 checksums.
The golden-drift check (``repro figures --check``) and the snapshot
tests compare artifacts byte-for-byte and use the manifest to name
*which* figure drifted.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Bump when the manifest layout changes.
FIGURES_MANIFEST_VERSION = 1

MANIFEST_FILENAME = "figures_manifest.json"


def sha256_bytes(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def file_sha256(path: Union[str, Path]) -> str:
    return sha256_bytes(Path(path).read_bytes())


def inputs_fingerprint(records: Dict[Any, Any]) -> str:
    """One digest over every (point, record) the figures consumed.

    Sorted by point label so the digest is independent of evaluation
    order; each record contributes its behavioral fingerprint (see
    :meth:`repro.engine.record.RunRecord.fingerprint`), so the manifest
    pins *simulation behavior*, not cache state or wall clock.
    """
    lines = sorted(
        f"{point.label()} {record.fingerprint()}"
        for point, record in records.items()
    )
    return sha256_bytes("\n".join(lines).encode("utf-8"))


def dumps_manifest(manifest: Dict[str, Any]) -> str:
    """The manifest's canonical byte form (sorted keys, trailing \\n)."""
    return json.dumps(manifest, sort_keys=True, indent=1) + "\n"


def build_manifest(scope_name: str,
                   fingerprint: str,
                   entries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Assemble the manifest dict from per-figure artifact entries."""
    return {
        "schema": FIGURES_MANIFEST_VERSION,
        "scope": scope_name,
        "inputs_fingerprint": fingerprint,
        "num_figures": len(entries),
        "figures": sorted(entries, key=lambda e: e["id"]),
    }


def write_manifest(directory: Union[str, Path],
                   manifest: Dict[str, Any]) -> Path:
    path = Path(directory) / MANIFEST_FILENAME
    path.write_text(dumps_manifest(manifest), encoding="utf-8")
    return path


def load_manifest(directory: Union[str, Path]) -> Dict[str, Any]:
    """Read and version-check a figure directory's manifest."""
    path = Path(directory) / MANIFEST_FILENAME
    manifest = json.loads(path.read_text(encoding="utf-8"))
    if manifest.get("schema") != FIGURES_MANIFEST_VERSION:
        raise ValueError(
            f"unsupported figures manifest schema "
            f"{manifest.get('schema')!r} in {path}")
    return manifest


def validate_manifest(directory: Union[str, Path],
                      manifest: Optional[Dict[str, Any]] = None,
                      ) -> List[str]:
    """Check every manifest entry against the files actually on disk.

    Returns a list of problems (empty = intact): missing artifacts and
    checksum mismatches, each naming the figure id.
    """
    directory = Path(directory)
    if manifest is None:
        manifest = load_manifest(directory)
    problems: List[str] = []
    for entry in manifest.get("figures", []):
        figure_id = entry.get("id", "?")
        for kind, name_key, sum_key in (
                ("spec", "spec", "spec_sha256"),
                ("data", "data", "data_sha256")):
            path = directory / entry[name_key]
            if not path.is_file():
                problems.append(
                    f"{figure_id}: missing {kind} file {entry[name_key]}")
                continue
            digest = file_sha256(path)
            if digest != entry[sum_key]:
                problems.append(
                    f"{figure_id}: {kind} checksum mismatch for "
                    f"{entry[name_key]} (manifest {entry[sum_key][:12]}, "
                    f"file {digest[:12]})")
    return problems
