"""Synthetic sparse matrix generators.

These stand in for the SuiteSparse matrices of the paper's Tables 3 and 4
(no network access to download the originals). Each generator targets one
structural *family* — what actually differentiates the accelerators'
behaviour: density, row-length skew, nonzero locality, and row affinity.

All generators are deterministic given a seed and return `CsrMatrix`.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.matrices.builder import CooBuilder, random_values
from repro.matrices.csr import CsrMatrix


#: Bump when generator behaviour changes; invalidates cached simulations.
GENERATOR_VERSION = 3


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_random(
    num_rows: int,
    num_cols: int,
    nnz_per_row: float,
    seed: int = 0,
) -> CsrMatrix:
    """Erdos-Renyi style matrix: nonzeros uniformly distributed.

    Row lengths are Poisson around ``nnz_per_row``; coordinates are uniform.
    The least structured family — minimal row affinity.
    """
    rng = _rng(seed)
    builder = CooBuilder(num_rows, num_cols)
    lengths = rng.poisson(nnz_per_row, size=num_rows)
    lengths = np.clip(lengths, 0, num_cols)
    for row in range(num_rows):
        k = int(lengths[row])
        if k == 0:
            continue
        cols = rng.choice(num_cols, size=k, replace=False)
        builder.add_many(np.full(k, row), cols, random_values(rng, k))
    return builder.build()


def power_law(
    num_rows: int,
    num_cols: int,
    nnz_per_row: float,
    seed: int = 0,
    row_skew: float = 1.8,
    col_skew: float = 1.0,
    max_degree: Optional[int] = None,
    locality: float = 0.4,
) -> CsrMatrix:
    """Scale-free graph adjacency: skewed row lengths, hub columns.

    Models web/citation/social-network matrices (web-Google, cit-Patents,
    wiki-Vote, email-Enron...). Row degrees follow a truncated power law
    with exponent ``row_skew``; column targets mix Zipf-like popularity
    (exponent ``col_skew`` — hub columns shared by many rows, the reuse
    Gamma's FiberCache captures) with neighborhood locality: real web and
    citation graphs are crawled/numbered so nearby rows link to nearby
    columns.

    Args:
        max_degree: Cap on row degree (hubs); defaults to
            ``max(4 * nnz_per_row, num_rows ** 0.5)``.
        locality: Fraction of each row's nonzeros drawn from a window
            around the row's own index instead of the popularity
            distribution.
    """
    rng = _rng(seed)
    if max_degree is None:
        max_degree = int(max(4 * nnz_per_row, num_rows ** 0.5))
    max_degree = min(max_degree, num_cols)
    ranks = np.arange(1, num_rows + 1, dtype=np.float64)
    degree_weights = ranks ** (-row_skew)
    target_nnz = nnz_per_row * num_rows
    degrees = degree_weights * (target_nnz / degree_weights.sum())
    degrees = np.maximum(1, np.round(degrees)).astype(np.int64)
    degrees = np.minimum(degrees, max_degree)
    # Compensate dedup losses and hub truncation so the realized mean
    # tracks the requested nnz_per_row.
    shortfall = target_nnz / max(1.0, degrees.sum())
    if shortfall > 1.0:
        degrees = np.minimum(
            max_degree, np.maximum(1, np.round(degrees * shortfall))
        ).astype(np.int64)
    rng.shuffle(degrees)

    col_ranks = np.arange(1, num_cols + 1, dtype=np.float64)
    col_weights = col_ranks ** (-col_skew)
    col_cdf = np.cumsum(col_weights / col_weights.sum())
    col_permutation = rng.permutation(num_cols)

    def popular(n: int) -> np.ndarray:
        """n column ids drawn from the Zipf popularity distribution."""
        return col_permutation[np.searchsorted(col_cdf, rng.random(n))]

    # Locality comes from per-cluster column palettes: consecutive rows
    # belong to the same cluster (a web domain / citation community) and
    # draw their local links from the cluster's small shared column set, so
    # sibling rows genuinely overlap — as crawled graphs do.
    rows_per_cluster = 8
    num_clusters = max(1, num_rows // rows_per_cluster)
    palette_size = max(3, int(round(2.5 * nnz_per_row * locality)))
    palettes = [
        np.sort(rng.choice(
            num_cols,
            size=min(palette_size, num_cols),
            replace=False,
        ))
        for _ in range(num_clusters)
    ]

    builder = CooBuilder(num_rows, num_cols)
    for row in range(num_rows):
        k = int(degrees[row])
        num_local = min(int(round(k * locality)), palette_size)
        palette = palettes[min(row // rows_per_cluster, num_clusters - 1)]
        local = rng.choice(palette, size=num_local,
                           replace=False) if num_local else np.empty(
                               0, dtype=np.int64)
        cols = np.unique(np.concatenate([popular(k - num_local), local]))
        # Top up dedup losses with uniform draws (models the long tail).
        attempts = 0
        while len(cols) < k and attempts < 4:
            extra = rng.integers(0, num_cols, size=k - len(cols))
            cols = np.unique(np.concatenate([cols, extra]))
            attempts += 1
        if len(cols) > k:
            chosen = rng.permutation(len(cols))[:k]
            cols = np.sort(cols[chosen])
        builder.add_many(
            np.full(len(cols), row), cols, random_values(rng, len(cols))
        )
    return builder.build()


def symmetric_permute(matrix: CsrMatrix, seed: int = 0) -> CsrMatrix:
    """Renumber a square matrix: P A P^T with a random permutation P.

    Models a mesh whose node numbering scrambles locality (the paper's
    sme3Db case, Fig. 19) — the structure is intact, so affinity-based
    reordering can recover it, but the raw row order has no reuse.
    """
    if matrix.num_rows != matrix.num_cols:
        raise ValueError("symmetric_permute requires a square matrix")
    rng = _rng(seed)
    n = matrix.num_rows
    perm = rng.permutation(n)
    inverse = np.argsort(perm)
    rows = []
    from repro.matrices.fiber import Fiber

    for new_row in range(n):
        fiber = matrix.row(int(perm[new_row]))
        new_coords = inverse[fiber.coords]
        order = np.argsort(new_coords)
        rows.append(
            Fiber(new_coords[order], fiber.values[order], check=False)
        )
    return CsrMatrix.from_rows(rows, n)


def mesh(
    num_rows: int,
    nnz_per_row: float,
    seed: int = 0,
    block: int = 4,
    renumber: bool = False,
    band_factor: float = 2.0,
) -> CsrMatrix:
    """FEM/mesh discretization: square, banded, with dense local blocks.

    Models PDE matrices (poisson3Da, filter3D, offshore, raefsky3,
    ship_001...). Each row's nonzeros sit inside a narrow band around the
    diagonal, grouped into ``block``-wide clusters — adjacent rows share
    most of their column sets, giving high affinity (B rows are reused by
    neighbouring A rows).
    """
    rng = _rng(seed)
    builder = CooBuilder(num_rows, num_rows)
    # The band width controls coupling density: low-order discretizations
    # spread a row's nonzeros over a wide band (band_factor ~2), while
    # high-order 3D elements couple nodes within barely more than the row
    # length itself (band_factor <1), so adjacent rows overlap almost
    # entirely and their products collide — which is what makes the
    # paper's dense FEM matrices compute-bound.
    half_band = max(block, int(round(nnz_per_row * band_factor)))
    clusters = max(1, int(round(1.5 * nnz_per_row / block)))
    for row in range(num_rows):
        centers = rng.integers(
            max(0, row - half_band), min(num_rows, row + half_band + 1),
            size=clusters,
        )
        cols = []
        for center in centers:
            lo = max(0, int(center) - block // 2)
            hi = min(num_rows, lo + block)
            cols.extend(range(lo, hi))
        cols = np.unique(cols)
        keep = min(len(cols), max(1, int(round(rng.normal(nnz_per_row, 1.0)))))
        cols = rng.choice(cols, size=keep, replace=False)
        cols = np.unique(np.append(cols, row))  # keep the diagonal
        builder.add_many(
            np.full(len(cols), row), cols, random_values(rng, len(cols))
        )
    matrix = builder.build()
    if renumber:
        matrix = symmetric_permute(matrix, seed=seed + 1)
    return matrix


def road_network(num_rows: int, seed: int = 0,
                 keep_edge_prob: float = 0.62,
                 extra_edge_prob: float = 0.1) -> CsrMatrix:
    """Planar road-network adjacency (roadNet-CA, patents_main).

    A thinned 2-D grid graph with sporadic extra local edges: ~2-3 nnz/row,
    symmetric, strongly diagonal locality.
    """
    rng = _rng(seed)
    side = int(math.sqrt(num_rows))
    side = max(side, 2)
    total = side * side
    builder = CooBuilder(total, total)
    for node in range(total):
        r, c = divmod(node, side)
        neighbors = []
        if c + 1 < side and rng.random() < keep_edge_prob:
            neighbors.append(node + 1)
        if r + 1 < side and rng.random() < keep_edge_prob:
            neighbors.append(node + side)
        if rng.random() < extra_edge_prob:
            jump = int(rng.integers(2, side))
            if node + jump < total:
                neighbors.append(node + jump)
        for nbr in neighbors:
            v = float(random_values(rng, 1)[0])
            builder.add(node, nbr, v)
            builder.add(nbr, node, v)
    return builder.build()


def mixed_density(
    num_rows: int,
    num_cols: int,
    sparse_nnz_per_row: float,
    dense_row_fraction: float,
    dense_row_nnz: int,
    seed: int = 0,
    locality_window_fraction: float = 0.08,
) -> CsrMatrix:
    """LP/optimization matrix: mostly sparse rows plus a few very dense ones.

    Models gupta2, nemsemm1, degme — matrices where a small fraction of rows
    is orders of magnitude denser than the rest. Dense rows span the whole
    coordinate range and thrash the FiberCache (the target of selective
    coordinate-space tiling); sparse rows cluster their nonzeros in a window
    around a *shuffled* anchor — structure that affinity-based reordering
    can recover, as it can for the real matrices' block patterns.
    """
    rng = _rng(seed)
    builder = CooBuilder(num_rows, num_cols)
    num_dense = max(1, int(round(num_rows * dense_row_fraction)))
    dense_rows = set(
        rng.choice(num_rows, size=num_dense, replace=False).tolist()
    )
    window = max(4, int(num_cols * locality_window_fraction))
    # Sparse rows with nearby anchors share columns, but anchors are
    # shuffled so the raw row order carries no locality.
    anchors = rng.integers(0, max(1, num_cols - window), size=num_rows)
    for row in range(num_rows):
        if row in dense_rows:
            k = min(num_cols, max(1, int(rng.normal(dense_row_nnz,
                                                    dense_row_nnz * 0.1))))
            cols = rng.choice(num_cols, size=k, replace=False)
        else:
            k = min(window, max(1, rng.poisson(sparse_nnz_per_row)))
            lo = int(anchors[row])
            cols = lo + rng.choice(window, size=k, replace=False)
        builder.add_many(np.full(k, row), cols, random_values(rng, k))
    return builder.build()


def block_random(
    num_rows: int,
    num_cols: int,
    nnz_per_row: float,
    seed: int = 0,
    num_blocks: int = 16,
    in_block_fraction: float = 0.85,
) -> CsrMatrix:
    """Community-structured matrix: most nonzeros inside diagonal blocks.

    Models clustered matrices (ca-CondMat, amazon0312, scircuit): rows in
    the same block share column sets — high affinity that row reordering
    can recover after a shuffle.
    """
    rng = _rng(seed)
    builder = CooBuilder(num_rows, num_cols)
    rows_per_block = max(1, num_rows // num_blocks)
    cols_per_block = max(1, num_cols // num_blocks)
    for row in range(num_rows):
        block_id = min(row // rows_per_block, num_blocks - 1)
        k = min(num_cols, max(1, rng.poisson(nnz_per_row)))
        in_block = rng.random(k) < in_block_fraction
        lo = block_id * cols_per_block
        hi = min(num_cols, lo + cols_per_block)
        cols = np.where(
            in_block,
            rng.integers(lo, hi, size=k),
            rng.integers(0, num_cols, size=k),
        )
        cols = np.unique(cols)
        builder.add_many(
            np.full(len(cols), row), cols, random_values(rng, len(cols))
        )
    return builder.build()


def diagonal_band(
    num_rows: int,
    num_cols: int,
    nnz_per_row: float,
    seed: int = 0,
    bandwidth: Optional[int] = None,
) -> CsrMatrix:
    """Simple banded matrix (m133-b3, mario002 style structured meshes)."""
    rng = _rng(seed)
    if bandwidth is None:
        bandwidth = max(4, int(nnz_per_row * 3))
    builder = CooBuilder(num_rows, num_cols)
    for row in range(num_rows):
        center = int(row * num_cols / max(1, num_rows))
        lo = max(0, center - bandwidth)
        hi = min(num_cols, center + bandwidth + 1)
        k = min(hi - lo, max(1, rng.poisson(nnz_per_row)))
        cols = rng.choice(np.arange(lo, hi), size=k, replace=False)
        builder.add_many(np.full(k, row), cols, random_values(rng, k))
    return builder.build()


def shuffled(matrix: CsrMatrix, seed: int = 0) -> CsrMatrix:
    """Randomly permute rows — destroys affinity, for reordering studies."""
    rng = _rng(seed)
    return matrix.permute_rows(rng.permutation(matrix.num_rows))


def rmat(
    scale: int,
    edge_factor: float = 8.0,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CsrMatrix:
    """R-MAT / Kronecker graph generator [Chakrabarti et al., SDM'04].

    The standard scale-free graph benchmark family (Graph500 uses
    a=0.57, b=c=0.19): each edge picks its endpoints by recursively
    descending a 2x2 probability grid, producing power-law degrees,
    strong community structure, and the self-similar sparsity patterns
    spMspM accelerators are evaluated on.

    Args:
        scale: log2 of the number of vertices (n = 2**scale).
        edge_factor: Average edges per vertex.
        a, b, c: Quadrant probabilities (d = 1 - a - b - c).

    Returns:
        The n x n adjacency matrix with uniform random weights;
        duplicate edges are merged.
    """
    if scale < 1 or scale > 24:
        raise ValueError("scale must be in [1, 24]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must sum to <= 1")
    rng = _rng(seed)
    n = 1 << scale
    num_edges = int(edge_factor * n)
    rows = np.zeros(num_edges, dtype=np.int64)
    cols = np.zeros(num_edges, dtype=np.int64)
    # Vectorized recursive descent: one quadrant draw per bit level.
    thresholds = np.array([a, a + b, a + b + c])
    for level in range(scale):
        draws = rng.random(num_edges)
        quadrant = np.searchsorted(thresholds, draws)
        rows = (rows << 1) | (quadrant >> 1)
        cols = (cols << 1) | (quadrant & 1)
    builder = CooBuilder(n, n)
    builder.add_many(rows, cols, random_values(rng, num_edges))
    return builder.build()
