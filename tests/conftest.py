"""Shared test harness: per-test wall-clock ceilings.

CI installs ``pytest-timeout`` and this conftest defaults its ceiling
per test; minimal environments without the plugin get a SIGALRM
fallback enforcing the same ceilings, so a hung test (e.g. a deadlocked
sweep worker) fails loudly instead of wedging the whole run.

Ceilings: ``@pytest.mark.timeout(N)`` wins; ``slow``-marked tests (the
randomized differential tails) get a long leash; everything else gets
the default.
"""

import importlib.util
import signal
import threading

import pytest

DEFAULT_TIMEOUT_SECONDS = 120.0
SLOW_TIMEOUT_SECONDS = 600.0

_HAVE_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None


def _ceiling(item):
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    if item.get_closest_marker("slow") is not None:
        return SLOW_TIMEOUT_SECONDS
    return DEFAULT_TIMEOUT_SECONDS


if _HAVE_PLUGIN:

    def pytest_collection_modifyitems(items):
        """Give every unmarked test the default pytest-timeout ceiling."""
        for item in items:
            if item.get_closest_marker("timeout") is None:
                item.add_marker(pytest.mark.timeout(_ceiling(item)))

else:
    _CAN_ALARM = hasattr(signal, "SIGALRM")

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        if (not _CAN_ALARM
                or threading.current_thread()
                is not threading.main_thread()):
            yield
            return
        ceiling = _ceiling(item)

        def _expired(signum, frame):
            pytest.fail(
                f"wall-clock ceiling of {ceiling:.0f}s exceeded "
                "(pytest-timeout not installed; SIGALRM fallback)",
                pytrace=False)

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, ceiling)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
