"""Table 3: common-set matrix characteristics (scaled stand-ins)."""


def test_table3(run_figure):
    result = run_figure("table3")
    assert len(result["rows"]) == 19
    for name, paper_rows, paper_npr, rows, npr, nnz in result["rows"]:
        # Scaled row counts stay within the documented ~1/64 regime.
        assert rows <= paper_rows
        # Realized nnz/row tracks the published characteristic.
        assert 0.5 * paper_npr < npr < 1.6 * paper_npr, name
