"""Fig. 12: normalized off-chip traffic on the common set.

Paper gmeans: OuterSPACE ~4x compulsory, SpArch ~1.59x, Gamma 1.26x,
Gamma+preprocessing 1.07x.
"""

from conftest import by_matrix


def test_fig12(run_figure):
    result = run_figure("fig12")
    rows = by_matrix(result["rows"])
    g = rows["gmean"]

    assert g["GP"] <= g["G"] * 1.02         # preprocessing helps on average
    assert g["G"] < g["SpArch"]             # Gustavson beats outer product
    assert g["SpArch"] < g["OuterSPACE"]
    assert g["GP"] < 1.6                    # paper: 1.07
    assert 2.5 < g["OuterSPACE"] < 6.5      # paper: ~4

    # Per matrix, Gamma never exceeds OuterSPACE.
    for name, r in rows.items():
        if name == "gmean":
            continue
        assert r["GP"] <= r["OuterSPACE"] * 1.05, name
