#!/usr/bin/env python
"""Serving benchmark: the job server under seeded zipf load.

Boots a :class:`repro.serve.JobServer` against a pristine temporary
cache, replays a deterministic zipf-skewed schedule
(:mod:`repro.serve.loadgen`) of hundreds of requests from dozens of
simulated clients, and writes a schema-versioned JSON with:

* request latency percentiles (p50/p90/p99) and served throughput;
* L1/L2 hit rates and the coalescing/computed/hit outcome mix — the
  acceptance bar is an aggregate reuse rate above 80% on the default
  zipf mix (a few hot configurations, a long tail);
* a serial baseline: each distinct spec timed once without the serving
  tier, scaled by its request frequency — what the same traffic would
  cost with no cache, no coalescing, one request at a time.

The schedule is a pure function of the seed, so successive commits can
be compared number-for-number (latency/throughput are measurements and
move with the machine; the outcome mix is deterministic)::

    PYTHONPATH=src python scripts/bench_serve.py --out BENCH_serve.json
    PYTHONPATH=src python scripts/bench_serve.py --quick  # CI smoke

``--http`` drives the same schedule over real sockets instead of the
in-process API, including HTTP parse/serialize overhead in the
latencies.
"""

import argparse
import asyncio
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

SCHEMA_VERSION = 1

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))


def serial_baseline(schedule) -> dict:
    """Cost of the same traffic with no serving tier.

    Times one clean serial execution per distinct spec, then scales by
    how often the schedule requests it: ``sum(freq * wall)`` is the
    naive no-cache, no-coalescing, one-at-a-time cost of the run.
    """
    from repro.engine.sweep import execute_point
    from repro.serve import JobSpec

    frequency: dict = {}
    specs: dict = {}
    for entry in schedule["requests"]:
        spec = JobSpec.from_payload(entry["spec"])
        key = spec.key()
        specs[key] = spec
        frequency[key] = frequency.get(key, 0) + 1
    walls = {}
    for key, spec in sorted(specs.items()):
        start = time.perf_counter()
        execute_point(spec.to_point())
        walls[key] = time.perf_counter() - start
    naive_total = sum(frequency[key] * walls[key] for key in walls)
    return {
        "distinct_specs": len(specs),
        "compute_wall_seconds": sum(walls.values()),
        "naive_total_seconds": naive_total,
        "per_spec": [
            {"spec": specs[key].to_payload(), "requests": frequency[key],
             "wall_seconds": walls[key]}
            for key in sorted(walls)
        ],
    }


async def run_served(cold_schedule, steady_schedule, workers: int,
                     use_http: bool) -> dict:
    """Two phases against one server, like a service's life:

    * **cold** — replay the first schedule against empty tiers: every
      distinct spec costs one computation, duplicates coalesce;
    * **steady** — clear L1 (a restart: L2 persists on disk, L1 does
      not), then replay fresh traffic over the same population: the
      first touch of each spec promotes from L2, the rest hit L1.

    Hit rates are reported per phase; the acceptance bar applies to
    the steady phase, which is what a long-running service serves.
    """
    from repro.serve import (
        JobServer,
        ServerConfig,
        run_schedule,
        run_schedule_http,
        summarize_results,
    )

    server = JobServer(ServerConfig(
        workers=workers, queue_depth=64, per_client_limit=64,
        timeout_seconds=120.0, retry_after_seconds=0.05))
    await server.start()
    host = port = None
    if use_http:
        host, port = await server.start_http()

    async def replay(schedule):
        start = time.perf_counter()
        if use_http:
            results = await run_schedule_http(host, port, schedule,
                                              time_scale=0.0)
        else:
            results = await run_schedule(server, schedule,
                                         time_scale=0.0)
        wall = time.perf_counter() - start
        return results, wall

    def snapshot():
        payload = server.stats_payload()
        return {**payload["stats"], **{
            f"store_{k}": v for k, v in payload["store"].items()
            if isinstance(v, int)}}

    def delta(after, before):
        return {k: after[k] - before.get(k, 0) for k in after}

    def phase_report(results, wall, stats):
        lookups = stats["store_l1_hits"] + stats["store_l1_misses"]
        l2_lookups = stats["store_l2_hits"] + stats["store_l2_misses"]
        hits = stats["store_l1_hits"] + stats["store_l2_hits"]
        return {
            "wall_seconds": wall,
            "throughput_rps": len(results) / wall if wall else None,
            "summary": summarize_results(results),
            "stats": stats,
            "l1_hit_rate":
                stats["store_l1_hits"] / lookups if lookups else None,
            "l2_hit_rate":
                stats["store_l2_hits"] / l2_lookups
                if l2_lookups else None,
            "overall_hit_rate": hits / lookups if lookups else None,
        }

    base = snapshot()
    cold_results, cold_wall = await replay(cold_schedule)
    after_cold = snapshot()
    server.store.l1.clear()  # the 'restart': L2 survives, L1 doesn't
    steady_results, steady_wall = await replay(steady_schedule)
    after_steady = snapshot()
    server_stats = server.stats_payload()
    await server.shutdown()
    return {
        "cold": phase_report(cold_results, cold_wall,
                             delta(after_cold, base)),
        "steady": phase_report(steady_results, steady_wall,
                               delta(after_steady, after_cold)),
        "server": server_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--clients", type=int, default=50)
    parser.add_argument("--zipf", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (0 = inline)")
    parser.add_argument("--http", action="store_true",
                        help="drive the schedule over real sockets")
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI smoke (not comparable)")
    parser.add_argument("--skip-baseline", action="store_true",
                        help="skip the serial-baseline timing pass")
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)
    if args.quick:
        args.requests = min(args.requests, 60)
        args.clients = min(args.clients, 12)
        args.workers = 0

    from repro.serve import build_schedule, schedule_stats

    cold_schedule = build_schedule(
        seed=args.seed, requests=args.requests, clients=args.clients,
        zipf_s=args.zipf)
    steady_schedule = build_schedule(
        seed=args.seed + 1, requests=args.requests,
        clients=args.clients, zipf_s=args.zipf)
    report = {
        "schema": SCHEMA_VERSION,
        "label": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "params": cold_schedule["params"],
        "schedule": {"cold": schedule_stats(cold_schedule),
                     "steady": schedule_stats(steady_schedule)},
        "workers": args.workers,
        "transport": "http" if args.http else "in-process",
    }

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        if not args.skip_baseline:
            os.environ["REPRO_CACHE_DIR"] = str(Path(tmp) / "baseline")
            print("serial baseline: computing distinct specs ...")
            report["baseline"] = serial_baseline(cold_schedule)
            print(f"  {report['baseline']['distinct_specs']} specs, "
                  f"naive total "
                  f"{report['baseline']['naive_total_seconds']:.2f}s")
        os.environ["REPRO_CACHE_DIR"] = str(Path(tmp) / "served")
        print(f"served run: 2 x {args.requests} requests, "
              f"{args.clients} clients, workers={args.workers}, "
              f"{report['transport']} ...")
        report["served"] = asyncio.run(run_served(
            cold_schedule, steady_schedule, args.workers, args.http))

    served = report["served"]
    cold, steady = served["cold"], served["steady"]
    report["headline"] = {
        "cold_computed": cold["stats"]["computed"],
        "cold_coalesced": cold["stats"]["coalesced"],
        "cold_wall_seconds": cold["wall_seconds"],
        "steady_p50_ms": steady["summary"]["latency_ms"]["p50"],
        "steady_p99_ms": steady["summary"]["latency_ms"]["p99"],
        "steady_throughput_rps": steady["throughput_rps"],
        "steady_l1_hit_rate": steady["l1_hit_rate"],
        "steady_l2_hit_rate": steady["l2_hit_rate"],
        "steady_overall_hit_rate": steady["overall_hit_rate"],
    }
    if not args.skip_baseline:
        naive = report["baseline"]["naive_total_seconds"]
        wall = cold["wall_seconds"] + steady["wall_seconds"]
        report["headline"]["serial_naive_seconds"] = naive * 2
        report["headline"]["speedup_vs_naive_serial"] = (
            naive * 2 / wall if wall else None)

    Path(args.out).write_text(json.dumps(report, indent=1,
                                         sort_keys=True) + "\n")
    head = report["headline"]
    print(f"wrote {args.out}")
    print(f"  cold: computed {head['cold_computed']}, coalesced "
          f"{head['cold_coalesced']} in {head['cold_wall_seconds']:.2f}s")
    print(f"  steady: p50 {head['steady_p50_ms']:.1f}ms  "
          f"p99 {head['steady_p99_ms']:.1f}ms  "
          f"throughput {head['steady_throughput_rps']:.0f} req/s  "
          f"L1 {head['steady_l1_hit_rate']:.1%}  "
          f"overall hit rate {head['steady_overall_hit_rate']:.1%}")
    if "speedup_vs_naive_serial" in head:
        print(f"  vs naive serial traffic: "
              f"{head['serial_naive_seconds']:.2f}s equivalent "
              f"({head['speedup_vs_naive_serial']:.1f}x)")
    if (head["steady_overall_hit_rate"] is not None
            and head["steady_overall_hit_rate"] < 0.8):
        print("WARNING: steady-state hit rate below the 80% "
              "acceptance bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
