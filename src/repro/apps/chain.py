"""Compound spMspM: chained products and the format-consistency advantage.

Paper Sec. 2.2: Gustavson's dataflow reads and writes CSR throughout, so
compound operations (matrix powers, chains) run back to back. Inner- and
outer-product dataflows need one operand in CSC, so every intermediate
result must be converted — an operand transformation whose cost "rivals
the cost of accelerated spMspM" (the paper cites [11]).

:func:`matrix_chain` runs a chain on the simulated Gamma; the cost report
quantifies how much extra traffic a conversion-per-step dataflow would
have paid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import ELEMENT_BYTES, GammaConfig, OFFSET_BYTES
from repro.core import GammaSimulator
from repro.matrices.csr import CsrMatrix


@dataclass(frozen=True)
class ChainCostReport:
    """Accelerator cost of a chained product.

    Attributes:
        num_products: spMspM operations executed.
        total_cycles: Simulated cycles across the chain.
        total_traffic: DRAM bytes across the chain.
        conversion_bytes: Extra traffic a CSC-input dataflow (inner /
            outer product) would pay converting each intermediate result:
            one read plus one write of every intermediate matrix.
    """

    num_products: int
    total_cycles: float
    total_traffic: int
    conversion_bytes: int

    @property
    def conversion_overhead(self) -> float:
        """Conversion traffic relative to the chain's own traffic."""
        return self.conversion_bytes / max(1, self.total_traffic)


def matrix_chain(
    matrices: Sequence[CsrMatrix],
    config: Optional[GammaConfig] = None,
    simulator: Optional[GammaSimulator] = None,
) -> tuple:
    """Compute matrices[0] x matrices[1] x ... left to right on Gamma.

    Returns:
        (product, ChainCostReport).
    """
    if not matrices:
        raise ValueError("empty chain")
    for left, right in zip(matrices, matrices[1:]):
        if left.num_cols != right.num_rows:
            raise ValueError(
                f"chain dimension mismatch: {left.shape} x {right.shape}"
            )
    simulator = simulator or GammaSimulator(config or GammaConfig())

    current = matrices[0]
    total_cycles = 0.0
    total_traffic = 0
    conversion_bytes = 0
    products = 0
    for right in matrices[1:]:
        result = simulator.run(current, right)
        products += 1
        total_cycles += result.cycles
        total_traffic += result.total_traffic
        current = result.output
        # A CSC-input dataflow would now convert `current` before the
        # next product: read it and write it back transposed.
        body = (current.nnz * ELEMENT_BYTES
                + current.num_rows * OFFSET_BYTES)
        conversion_bytes += 2 * body
    if products:
        # The final conversion is not needed (no next product).
        conversion_bytes -= 2 * (
            current.nnz * ELEMENT_BYTES + current.num_rows * OFFSET_BYTES)
        conversion_bytes = max(0, conversion_bytes)
    report = ChainCostReport(
        num_products=products,
        total_cycles=total_cycles,
        total_traffic=total_traffic,
        conversion_bytes=conversion_bytes,
    )
    return current, report


def matrix_power(
    matrix: CsrMatrix,
    exponent: int,
    config: Optional[GammaConfig] = None,
) -> tuple:
    """A^exponent by left-to-right products (matrix exponentiation).

    Returns:
        (power, ChainCostReport).
    """
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    if matrix.num_rows != matrix.num_cols:
        raise ValueError("matrix power requires a square matrix")
    return matrix_chain([matrix] * exponent, config=config)
