"""Cross-engine validation harness.

Runs the same product through every engine in the repo — the Gamma
simulator (fast and detailed PE models, with and without preprocessing),
the from-scratch reference kernels, and scipy — and checks they agree.
Used by the test suite and available to users as a self-check::

    from repro.validation import cross_validate
    report = cross_validate(a, b)
    assert report.all_agree, report.summary()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.config import GammaConfig, PreprocessConfig
from repro.baselines.spgemm_ref import spgemm_hash, spgemm_spa
from repro.core import GammaSimulator
from repro.matrices.csr import CsrMatrix
from repro.preprocessing import preprocess


@dataclass
class ValidationReport:
    """Outcome of one cross-engine validation run.

    Attributes:
        shape: Output shape.
        engines: Engine name -> max absolute deviation from the scipy
            reference (0.0 for exact agreement).
        tolerance: The pass/fail threshold applied.
    """

    shape: tuple
    engines: Dict[str, float] = field(default_factory=dict)
    tolerance: float = 1e-9

    @property
    def all_agree(self) -> bool:
        return all(dev <= self.tolerance for dev in self.engines.values())

    def summary(self) -> str:
        lines = [f"cross-validation of C{self.shape}:"]
        for engine, deviation in self.engines.items():
            verdict = "OK" if deviation <= self.tolerance else "MISMATCH"
            lines.append(f"  {engine:24s} max|dev| = {deviation:.3e}  "
                         f"{verdict}")
        return "\n".join(lines)


def cross_validate(
    a: CsrMatrix,
    b: CsrMatrix,
    config: Optional[GammaConfig] = None,
    tolerance: float = 1e-9,
    include_detailed: bool = True,
    include_preprocessed: bool = True,
) -> ValidationReport:
    """Run every engine on C = A x B and compare against scipy.

    Args:
        a, b: Operands.
        config: Gamma system (a small radix stresses task trees).
        tolerance: Maximum allowed absolute deviation.
        include_detailed: Also run the per-element PE pipeline model
            (slow; disable for large inputs).
        include_preprocessed: Also run with the full Sec. 4 pipeline.
    """
    config = config or GammaConfig(radix=8)
    reference = (a.to_scipy() @ b.to_scipy()).toarray()
    report = ValidationReport(shape=reference.shape, tolerance=tolerance)

    def record(name: str, dense: np.ndarray) -> None:
        report.engines[name] = float(np.abs(dense - reference).max()
                                     if dense.size else 0.0)

    record("gamma", GammaSimulator(config).run(a, b).output.to_dense())
    if include_detailed:
        detailed_config = config.scaled(detailed_pe_model=True)
        record("gamma-detailed",
               GammaSimulator(detailed_config).run(a, b).output.to_dense())
    if include_preprocessed:
        program = preprocess(a, b, config, PreprocessConfig.full())
        record("gamma-preprocessed",
               GammaSimulator(config).run(a, b, program=program)
               .output.to_dense())
    record("spgemm-spa", spgemm_spa(a, b)[0].to_dense())
    record("spgemm-hash", spgemm_hash(a, b)[0].to_dense())
    return report
