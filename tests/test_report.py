"""The unified run report: determinism, rendering, and the CLI path."""

import json

import pytest

from repro.__main__ import main
from repro.engine.sweep import SweepPoint, run_sweep
from repro.obs import report, spans
from repro.obs.spans import read_run_log


@pytest.fixture(autouse=True)
def no_inherited_telemetry(monkeypatch):
    monkeypatch.delenv(spans.SPAN_DIR_ENV, raising=False)
    monkeypatch.delenv(spans.SPAN_SLOT_ENV, raising=False)
    yield
    spans.disable_current()


def small_plan():
    return [SweepPoint("gamma", "wiki-Vote", "none"),
            SweepPoint("gamma", "wiki-Vote", "full"),
            SweepPoint("mkl", "wiki-Vote"),
            SweepPoint("ip", "wiki-Vote")]


def run_with_telemetry(tele_dir, cache_dir, monkeypatch, **kwargs):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    spans.enable(report.span_directory(tele_dir))
    try:
        result = run_sweep(small_plan(), **kwargs)
    finally:
        spans.disable()
    report.finalize_sweep_telemetry(tele_dir, result)
    report.generate_report(tele_dir)
    return result


class TestDeterminism:
    def test_serial_and_parallel_reports_byte_identical(
            self, tmp_path, monkeypatch):
        """The acceptance bar: same plan, fresh caches, serial vs two
        workers — report.md and report.html agree byte for byte."""
        serial_dir = tmp_path / "serial"
        par_dir = tmp_path / "parallel"
        run_with_telemetry(serial_dir, tmp_path / "cache_s", monkeypatch,
                           serial=True, collect_metrics=True)
        run_with_telemetry(par_dir, tmp_path / "cache_p", monkeypatch,
                           workers=2, collect_metrics=True)
        for name in (report.REPORT_MD_FILENAME,
                     report.REPORT_HTML_FILENAME):
            assert (serial_dir / name).read_bytes() == \
                (par_dir / name).read_bytes(), name
        # The deterministic half of sweep.json agrees too; only the
        # execution-order half may differ.
        serial_summary = report.load_summary(serial_dir)
        par_summary = report.load_summary(par_dir)
        assert json.dumps(serial_summary["summary"], sort_keys=True) \
            == json.dumps(par_summary["summary"], sort_keys=True)

    def test_regenerating_report_is_stable(self, tmp_path, monkeypatch):
        tele = tmp_path / "tele"
        run_with_telemetry(tele, tmp_path / "cache", monkeypatch,
                           serial=True)
        first = (tele / report.REPORT_HTML_FILENAME).read_bytes()
        report.generate_report(tele)
        assert (tele / report.REPORT_HTML_FILENAME).read_bytes() == first


class TestPipelineOutputs:
    @pytest.fixture()
    def tele(self, tmp_path, monkeypatch):
        tele = tmp_path / "tele"
        result = run_with_telemetry(tele, tmp_path / "cache",
                                    monkeypatch, serial=True,
                                    collect_metrics=True)
        return tele, result

    def test_run_log_and_trace_written(self, tele):
        tele_dir, result = tele
        header, events = read_run_log(
            tele_dir / report.RUN_LOG_FILENAME)
        assert header["num_spans"] == len(events) > 0
        from repro.obs import validate_chrome_trace

        trace = json.loads((tele_dir / report.TRACE_FILENAME)
                           .read_text())
        assert validate_chrome_trace(trace) > 0

    def test_summary_has_both_halves(self, tele):
        tele_dir, result = tele
        payload = report.load_summary(tele_dir)
        assert payload["schema"] == report.REPORT_SCHEMA_VERSION
        assert payload["summary"]["num_records"] == len(result)
        assert payload["summary"]["metrics"] is not None
        execution = payload["execution"]
        assert execution["stats"] == result.stats
        assert execution["points_computed"] + \
            execution["points_cached"] == len(result)
        assert "event_counts" in execution

    def test_markdown_and_html_content(self, tele):
        tele_dir, _ = tele
        md = (tele_dir / report.REPORT_MD_FILENAME).read_text()
        assert "# Sweep run report" in md
        assert "## Speedup over MKL" in md
        assert "## Normalized DRAM traffic" in md
        assert "## FiberCache" in md
        assert "gamma[full]" in md
        assert "Execution (timing appendix)" not in md  # opt-in only
        html = (tele_dir / report.REPORT_HTML_FILENAME).read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html  # self-contained and static
        assert "gamma[full]" in html

    def test_timing_appendix_is_opt_in(self, tele):
        tele_dir, _ = tele
        report.generate_report(tele_dir, include_timing=True)
        md = (tele_dir / report.REPORT_MD_FILENAME).read_text()
        assert "Execution (timing appendix)" in md

    def test_finalize_without_spans_still_summarizes(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        result = run_sweep(small_plan(), serial=True)
        tele = tmp_path / "tele"
        report.finalize_sweep_telemetry(tele, result)
        payload = report.load_summary(tele)
        assert payload["summary"]["num_records"] == len(result)
        header, events = read_run_log(tele / report.RUN_LOG_FILENAME)
        assert events == []


class TestCliIntegration:
    def test_sweep_trace_dir_then_report(self, tmp_path, monkeypatch,
                                         capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        tele = tmp_path / "tele"
        assert main(["sweep", "--matrices", "wiki-Vote", "--models",
                     "gamma,mkl", "--variants", "none", "--serial",
                     "--metrics", "--trace-dir", str(tele)]) == 0
        out = capsys.readouterr().out
        assert "telemetry: wrote" in out
        assert (tele / report.SUMMARY_FILENAME).exists()
        assert main(["report", str(tele), "--include-timing"]) == 0
        out = capsys.readouterr().out
        assert "wrote markdown report" in out
        assert (tele / report.REPORT_MD_FILENAME).exists()
        assert (tele / report.REPORT_HTML_FILENAME).exists()

    def test_report_on_missing_directory_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_perfetto_export(self, tmp_path, capsys):
        out_path = tmp_path / "prof.trace.json"
        assert main(["profile", "gamma", "wiki-Vote", "--perfetto",
                     str(out_path)]) == 0
        assert "Perfetto trace" in capsys.readouterr().out
        from repro.obs import validate_chrome_trace

        assert validate_chrome_trace(
            json.loads(out_path.read_text())) > 0
