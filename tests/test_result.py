"""Tests for SimulationResult derived metrics."""

import pytest

from repro.config import GammaConfig
from repro.core.result import SimulationResult


def make_result(**overrides):
    defaults = dict(
        output=None,
        cycles=1000.0,
        traffic_bytes={"A": 1200, "B": 6400, "C": 2400,
                       "partial_read": 0, "partial_write": 0},
        compulsory_bytes={"A": 1200, "B": 6400, "C": 2400},
        flops=5000,
        pe_busy_cycles=16000.0,
        num_tasks=100,
        num_partial_fibers=0,
        cache_utilization={"B": 0.5, "partial": 0.1, "unused": 0.4},
        config=GammaConfig(),
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestDerivedMetrics:
    def test_totals(self):
        result = make_result()
        assert result.total_traffic == 10000
        assert result.total_compulsory == 10000
        assert result.normalized_traffic == pytest.approx(1.0)
        assert result.noncompulsory_bytes == 0

    def test_noncompulsory(self):
        result = make_result(
            traffic_bytes={"A": 1200, "B": 9000, "C": 2400,
                           "partial_read": 500, "partial_write": 500})
        assert result.noncompulsory_bytes == 13600 - 10000

    def test_normalized_breakdown(self):
        result = make_result()
        breakdown = result.normalized_breakdown()
        assert breakdown["B"] == pytest.approx(0.64)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_bandwidth_utilization(self):
        result = make_result()
        # 10000 bytes over 1000 cycles at 128 B/cycle.
        assert result.bandwidth_utilization == pytest.approx(
            10000 / (1000 * 128))

    def test_bandwidth_capped_at_one(self):
        result = make_result(cycles=1.0)
        assert result.bandwidth_utilization == 1.0

    def test_pe_utilization(self):
        result = make_result()
        assert result.pe_utilization == pytest.approx(
            16000 / (1000 * 32))

    def test_zero_cycles(self):
        result = make_result(cycles=0.0)
        assert result.bandwidth_utilization == 0.0
        assert result.pe_utilization == 0.0
        assert result.gflops == 0.0

    def test_runtime_and_gflops(self):
        result = make_result()
        assert result.runtime_seconds == pytest.approx(1e-6)
        assert result.gflops == pytest.approx(5.0)

    def test_operational_intensity(self):
        result = make_result()
        assert result.operational_intensity == pytest.approx(0.5)
