"""The versioned figure pipeline: the paper's evaluation as artifacts.

The paper's claims live in its figures; this package renders our
reproduction of them as *diffable, snapshot-tested artifacts* instead
of throwaway terminal tables. Each figure in the catalog
(:mod:`repro.figures.generators`) pulls rows from cached
:class:`~repro.engine.record.RunRecord` evaluations through a
parameterized builder in :mod:`repro.experiments.figures` and emits a
deterministic Vega-Lite spec (``<id>.vl.json``, a plain JSON dict — no
plotting dependency) plus the tidy ``<id>.csv`` it references, under a
schema-versioned, checksummed ``figures_manifest.json``
(:mod:`repro.figures.manifest`).

``python -m repro figures`` drives :mod:`repro.figures.pipeline`;
``--check`` regenerates against the committed goldens in
``tests/golden/figures/`` and fails naming the drifted figure — the
guard that makes every perf/model change reviewable as an artifact
diff. ``python -m repro report`` embeds a sweep-derived figure set
(:mod:`repro.figures.from_summary`) built purely from the
deterministic roll-up, preserving serial/parallel byte-identity.
"""

from repro.figures.generators import (
    FIGURE_GENERATORS,
    FigureGenerator,
    figure_ids,
    get_generator,
)
from repro.figures.manifest import (
    FIGURES_MANIFEST_VERSION,
    MANIFEST_FILENAME,
    build_manifest,
    file_sha256,
    inputs_fingerprint,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.figures.pipeline import (
    GOLDEN_FIGURES_DIR,
    check_figures,
    csv_bytes,
    generate_figures,
    spec_bytes,
)
from repro.figures.from_summary import (
    REPORT_FIGURES_SUBDIR,
    report_figure_sections,
    summary_charts,
    write_report_figures,
)
from repro.figures.scopes import (
    GOLDEN_SCOPE,
    QUICK_MATRICES,
    SCOPES,
    FigureScope,
    get_scope,
)

__all__ = [
    "FIGURES_MANIFEST_VERSION",
    "FIGURE_GENERATORS",
    "GOLDEN_FIGURES_DIR",
    "GOLDEN_SCOPE",
    "MANIFEST_FILENAME",
    "QUICK_MATRICES",
    "REPORT_FIGURES_SUBDIR",
    "SCOPES",
    "FigureGenerator",
    "FigureScope",
    "build_manifest",
    "check_figures",
    "csv_bytes",
    "figure_ids",
    "file_sha256",
    "generate_figures",
    "get_generator",
    "get_scope",
    "inputs_fingerprint",
    "load_manifest",
    "report_figure_sections",
    "spec_bytes",
    "summary_charts",
    "validate_manifest",
    "write_manifest",
]
