"""Reference software SpGEMM kernels (Gustavson's algorithm).

Two classic CPU formulations:

* :func:`spgemm_spa` — sparse accumulator (SPA): a dense value/flag array
  per output row, the MATLAB/MKL-style kernel [Gilbert et al. '92].
* :func:`spgemm_hash` — hash-map accumulator, the KNL-style kernel
  [Nagasaka et al. '18].

Both serve as ground truth for the accelerator simulators and as the
algorithmic core of the MKL baseline model. They also count the work the
CPU timing model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.matrices.csr import CsrMatrix
from repro.matrices.fiber import Fiber


@dataclass(frozen=True)
class SpgemmCounts:
    """Work performed by a software SpGEMM run.

    Attributes:
        flops: Multiply-accumulate operations.
        output_nnz: Nonzeros in C (before dropping explicit zeros).
        touched_b_rows: Total B-row visits (with repetition).
    """

    flops: int
    output_nnz: int
    touched_b_rows: int


def spgemm_spa(a: CsrMatrix, b: CsrMatrix) -> tuple:
    """Gustavson SpGEMM with a dense sparse-accumulator.

    Returns:
        (C, SpgemmCounts) where C is a CsrMatrix.
    """
    if a.num_cols != b.num_rows:
        raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")
    num_cols = b.num_cols
    values = np.zeros(num_cols, dtype=np.float64)
    occupied = np.zeros(num_cols, dtype=bool)
    rows: List[Fiber] = []
    flops = 0
    touched = 0
    for row in range(a.num_rows):
        start, end = a.offsets[row], a.offsets[row + 1]
        nonzero_cols: List[int] = []
        for idx in range(start, end):
            k = int(a.coords[idx])
            scale = a.values[idx]
            touched += 1
            b_start, b_end = b.offsets[k], b.offsets[k + 1]
            b_cols = b.coords[b_start:b_end]
            b_vals = b.values[b_start:b_end]
            flops += len(b_cols)
            fresh = ~occupied[b_cols]
            if fresh.any():
                new_cols = b_cols[fresh]
                occupied[new_cols] = True
                nonzero_cols.extend(new_cols.tolist())
            values[b_cols] += scale * b_vals
        nonzero_cols.sort()
        cols = np.asarray(nonzero_cols, dtype=np.int64)
        rows.append(Fiber(cols, values[cols].copy(), check=False))
        values[cols] = 0.0
        occupied[cols] = False
    c = CsrMatrix.from_rows(rows, num_cols)
    return c, SpgemmCounts(flops=flops, output_nnz=c.nnz,
                           touched_b_rows=touched)


def spgemm_hash(a: CsrMatrix, b: CsrMatrix) -> tuple:
    """Gustavson SpGEMM accumulating into a per-row hash map."""
    if a.num_cols != b.num_rows:
        raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")
    rows: List[Fiber] = []
    flops = 0
    touched = 0
    for row in range(a.num_rows):
        start, end = a.offsets[row], a.offsets[row + 1]
        accumulator: Dict[int, float] = {}
        for idx in range(start, end):
            k = int(a.coords[idx])
            scale = a.values[idx]
            touched += 1
            b_start, b_end = b.offsets[k], b.offsets[k + 1]
            flops += b_end - b_start
            for j in range(b_start, b_end):
                col = int(b.coords[j])
                accumulator[col] = (
                    accumulator.get(col, 0.0) + scale * b.values[j]
                )
        cols = np.asarray(sorted(accumulator), dtype=np.int64)
        rows.append(Fiber(
            cols,
            np.asarray([accumulator[int(c)] for c in cols]),
            check=False,
        ))
    c = CsrMatrix.from_rows(rows, b.num_cols)
    return c, SpgemmCounts(flops=flops, output_nnz=c.nnz,
                           touched_b_rows=touched)


def spgemm_semiring(a: CsrMatrix, b: CsrMatrix, semiring,
                    mask: CsrMatrix = None,
                    complement: bool = False) -> CsrMatrix:
    """Gustavson SpGEMM over an arbitrary semiring (differential oracle).

    A direct dict-accumulator transliteration of C_ij = add_k
    mul(a_ik, b_kj) with no vectorization or reassociation tricks, used
    as ground truth for the accelerator simulator under non-arithmetic
    algebras. Every touched output coordinate is kept, even when the
    accumulated value lands on the semiring's zero — matching the
    hardware accumulator, which never re-sparsifies (Sec. 3.2).

    With ``mask``, computes the GraphBLAS-style masked product
    ``C<M> = A x B``: row ``i`` keeps only coordinates in the pattern of
    ``mask`` row ``i`` (or, with ``complement=True``, only coordinates
    *outside* it). The oracle deliberately filters the *full* product —
    masked == unmasked-then-filtered is the defining identity every
    execution model is tested against.
    """
    if a.num_cols != b.num_rows:
        raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if mask is not None and mask.shape != (a.num_rows, b.num_cols):
        raise ValueError(
            f"mask shape {mask.shape} does not match output "
            f"{(a.num_rows, b.num_cols)}")
    add, mul = semiring.add, semiring.mul
    rows: List[Fiber] = []
    for row in range(a.num_rows):
        start, end = a.offsets[row], a.offsets[row + 1]
        accumulator: Dict[int, float] = {}
        for idx in range(start, end):
            k = int(a.coords[idx])
            scale = a.values[idx]
            for j in range(b.offsets[k], b.offsets[k + 1]):
                col = int(b.coords[j])
                product = mul(scale, b.values[j])
                if col in accumulator:
                    accumulator[col] = add(accumulator[col], product)
                else:
                    accumulator[col] = product
        if mask is not None:
            allowed = set(mask.row(row).coords.tolist())
            accumulator = {
                col: value for col, value in accumulator.items()
                if (col in allowed) != complement
            }
        cols = np.asarray(sorted(accumulator), dtype=np.int64)
        rows.append(Fiber(
            cols,
            np.asarray([accumulator[int(c)] for c in cols],
                       dtype=np.float64),
            check=False,
        ))
    return CsrMatrix.from_rows(rows, b.num_cols)


def output_nnz_upper_bound(a: CsrMatrix, b: CsrMatrix) -> int:
    """Sum of products bound on nnz(C) (the Sec. 3.4 conservative size)."""
    if a.nnz == 0:
        return 0
    return int(b.row_lengths()[a.coords].sum())
