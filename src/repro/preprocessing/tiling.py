"""Selective coordinate-space tiling of dense A rows (paper Sec. 4.2).

Rows of A whose estimated B footprint exceeds a fraction of the FiberCache
are split into up to ``radix`` subrows by *even splits of the column
coordinate space* — not even nonzero counts — because coordinate-space
subrows retain more affinity. Oversized subrows are split again recursively.
Sparse rows are left alone: tiling them would create partial output fibers
whose spill traffic exceeds the B-reuse gain (the "+T" pathology of
Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import ELEMENT_BYTES, GammaConfig
from repro.matrices.csr import CsrMatrix


@dataclass(frozen=True)
class RowFragment:
    """A contiguous coordinate-space slice of one A row.

    Attributes:
        row: Original row index.
        coords: Column coordinates in this fragment.
        values: Matching A values.
    """

    row: int
    coords: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        return len(self.coords)


def estimate_row_footprint(
    row_nnz: int, avg_b_row_nnz: float
) -> float:
    """Estimated bytes of B rows one A row pulls into the FiberCache.

    The paper estimates footprint as the A row's length times the average
    nonzeros per row of B (Sec. 4.2).
    """
    return row_nnz * avg_b_row_nnz * ELEMENT_BYTES


def split_row(
    coords: np.ndarray,
    values: np.ndarray,
    coord_lo: int,
    coord_hi: int,
    radix: int,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """One round of coordinate-space splitting into up to ``radix`` subrows.

    Splits the coordinate range [coord_lo, coord_hi) into ``radix`` even
    subranges and buckets the nonzeros; empty subranges produce no subrow.
    """
    if coord_hi <= coord_lo:
        raise ValueError(f"empty coordinate range [{coord_lo}, {coord_hi})")
    span = coord_hi - coord_lo
    # Bucket of each nonzero: floor((c - lo) * radix / span).
    buckets = ((coords - coord_lo) * radix) // span
    buckets = np.clip(buckets, 0, radix - 1)
    fragments = []
    for bucket in range(radix):
        mask = buckets == bucket
        if mask.any():
            fragments.append((coords[mask], values[mask]))
    return fragments


def tile_matrix(
    a: CsrMatrix,
    avg_b_row_nnz: float,
    config: Optional[GammaConfig] = None,
    threshold_fraction: float = 0.25,
    threshold_bytes: Optional[float] = None,
    selective: bool = True,
) -> List[RowFragment]:
    """Tile A's rows, returning fragments in row order.

    Args:
        a: The A matrix.
        avg_b_row_nnz: Mean nonzeros per row of B (footprint estimate).
        config: System parameters (FiberCache size, PE radix).
        threshold_fraction: Split rows whose estimated footprint exceeds
            this fraction of the FiberCache (0.25 in the paper).
        threshold_bytes: Absolute footprint threshold overriding the
            fraction (used by scaled-suite experiments).
        selective: When False, every multi-nonzero row is split once —
            the "+T" ablation.

    Returns:
        Row fragments; untouched rows appear as single whole-row fragments.
        Empty rows produce no fragment.
    """
    config = config or GammaConfig()
    if threshold_bytes is None:
        threshold_bytes = threshold_fraction * config.fibercache_bytes
    fragments: List[RowFragment] = []
    for row in range(a.num_rows):
        start, end = a.offsets[row], a.offsets[row + 1]
        if start == end:
            continue
        coords = a.coords[start:end]
        values = a.values[start:end]
        if selective:
            needs_split = (
                estimate_row_footprint(len(coords), avg_b_row_nnz)
                > threshold_bytes
            )
        else:
            needs_split = len(coords) > 1
        if not needs_split:
            fragments.append(RowFragment(row, coords, values))
            continue
        fragments.extend(
            _split_recursive(
                row, coords, values, 0, a.num_cols, config.radix,
                avg_b_row_nnz, threshold_bytes, selective,
            )
        )
    return fragments


def _split_recursive(
    row: int,
    coords: np.ndarray,
    values: np.ndarray,
    coord_lo: int,
    coord_hi: int,
    radix: int,
    avg_b_row_nnz: float,
    threshold_bytes: float,
    selective: bool,
) -> List[RowFragment]:
    """Split a row slice; re-split subrows that still exceed the threshold.

    Recursion only applies in selective mode (paper: "this process is
    repeated recursively" for large matrices); the +T ablation does a
    single round, as tiling everything recursively would explode.
    """
    pieces = split_row(coords, values, coord_lo, coord_hi, radix)
    fragments: List[RowFragment] = []
    span = coord_hi - coord_lo
    for piece_coords, piece_values in pieces:
        oversized = (
            selective
            and estimate_row_footprint(len(piece_coords), avg_b_row_nnz)
            > threshold_bytes
        )
        if oversized and span > radix and len(piece_coords) > 1:
            bucket = int(
                (int(piece_coords[0]) - coord_lo) * radix // span
            )
            sub_lo = coord_lo + bucket * span // radix
            sub_hi = coord_lo + (bucket + 1) * span // radix
            sub_hi = max(sub_hi, sub_lo + 1)
            fragments.extend(
                _split_recursive(
                    row, piece_coords, piece_values, sub_lo, sub_hi,
                    radix, avg_b_row_nnz, threshold_bytes, selective,
                )
            )
        else:
            fragments.append(RowFragment(row, piece_coords, piece_values))
    return fragments
