"""Generate, write, and drift-check the versioned figure artifacts.

:func:`generate_figures` runs the catalog at a scope and writes, per
figure, a ``<id>.vl.json`` Vega-Lite spec and the ``<id>.csv`` it
references, plus the checksummed ``figures_manifest.json`` — all in
canonical byte form (sorted-key JSON, ``\\n`` line endings, numbers
through :mod:`repro.obs.numfmt`), so the directory is diffable and
byte-reproducible anywhere.

:func:`check_figures` is the drift guard: it regenerates the set into a
scratch directory and compares it byte-for-byte against a committed
golden directory, returning human-readable drift messages that name the
figure id — the CI hook that turns any perf/model change into a
reviewable artifact diff.
"""

from __future__ import annotations

import csv
import io
import json
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.charts import (
    chart_csv_rows,
    validate_vega_lite_spec,
    vega_lite_spec,
)
from repro.experiments.runner import ExperimentRunner
from repro.figures.generators import (
    FIGURE_GENERATORS,
    figure_ids,
    get_generator,
)
from repro.figures.manifest import (
    MANIFEST_FILENAME,
    build_manifest,
    dumps_manifest,
    inputs_fingerprint,
    load_manifest,
    sha256_bytes,
    write_manifest,
)
from repro.figures.scopes import get_scope
from repro.obs.numfmt import format_cell

#: Default golden directory (committed, scope 'quick').
GOLDEN_FIGURES_DIR = Path("tests") / "golden" / "figures"


def csv_bytes(rows: Sequence[Dict[str, Any]]) -> bytes:
    """Canonical CSV bytes of tidy rows (stable order, ``\\n``, repr
    floats via :func:`repro.obs.numfmt.format_cell`)."""
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(fieldnames)
    for row in rows:
        writer.writerow([format_cell(row.get(key)) for key in fieldnames])
    return buffer.getvalue().encode("utf-8")


def spec_bytes(spec: Dict[str, Any]) -> bytes:
    """Canonical bytes of a Vega-Lite spec dict."""
    return (json.dumps(spec, sort_keys=True, indent=1) + "\n").encode(
        "utf-8")


def _select(only: Optional[Sequence[str]]):
    if only is None:
        return list(FIGURE_GENERATORS)
    return [get_generator(figure_id) for figure_id in only]


def generate_figures(
    out_dir: Union[str, Path],
    scope: str = "quick",
    only: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, Any]:
    """Write the figure set (specs, CSVs, manifest) and return the
    manifest.

    Uses a *fresh* :class:`ExperimentRunner` by default so the
    manifest's ``inputs_fingerprint`` covers exactly the records these
    figures consumed. Records come from the engine's disk cache when
    warm; cold points are computed (deterministically) on demand.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    scope_obj = get_scope(scope)
    runner = runner if runner is not None else ExperimentRunner()
    entries: List[Dict[str, Any]] = []
    for generator in _select(only):
        figure = generator.build(scope_obj, runner)
        chart = figure["chart_data"]
        rows = chart_csv_rows(chart)
        data_name = f"{generator.figure_id}.csv"
        spec = vega_lite_spec(
            chart, data_url=data_name,
            description=f"{generator.title} ({generator.paper_ref})")
        validate_vega_lite_spec(spec)
        data = csv_bytes(rows)
        spec_payload = spec_bytes(spec)
        spec_name = f"{generator.figure_id}.vl.json"
        (out_dir / data_name).write_bytes(data)
        (out_dir / spec_name).write_bytes(spec_payload)
        entries.append({
            "id": generator.figure_id,
            "title": generator.title,
            "paper_ref": generator.paper_ref,
            "kind": chart["kind"],
            "spec": spec_name,
            "data": data_name,
            "rows": len(rows),
            "spec_sha256": sha256_bytes(spec_payload),
            "data_sha256": sha256_bytes(data),
        })
    manifest = build_manifest(
        scope_obj.name, inputs_fingerprint(runner.records()), entries)
    write_manifest(out_dir, manifest)
    return manifest


def check_figures(
    golden_dir: Union[str, Path] = GOLDEN_FIGURES_DIR,
    scope: Optional[str] = None,
    only: Optional[Sequence[str]] = None,
    workdir: Optional[Union[str, Path]] = None,
) -> List[str]:
    """Regenerate the figure set and diff it against committed goldens.

    Returns drift messages (empty = clean), each naming the figure id
    whose artifact changed. ``scope`` defaults to whatever scope the
    golden manifest records; ``workdir`` (a scratch directory for the
    regenerated set) defaults to a fresh temp directory.
    """
    golden_dir = Path(golden_dir)
    if not (golden_dir / MANIFEST_FILENAME).is_file():
        return [f"no golden manifest at {golden_dir / MANIFEST_FILENAME} "
                "(generate goldens first: repro figures --out "
                f"{golden_dir})"]
    golden_manifest = load_manifest(golden_dir)
    if scope is None:
        scope = golden_manifest["scope"]
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-figures-check-")
    manifest = generate_figures(workdir, scope=scope, only=only)
    workdir = Path(workdir)

    drifts: List[str] = []
    golden_by_id = {e["id"]: e for e in golden_manifest["figures"]}
    for entry in manifest["figures"]:
        golden_entry = golden_by_id.get(entry["id"])
        if golden_entry is None:
            drifts.append(
                f"{entry['id']}: not in the golden set (new figure? "
                "regenerate goldens)")
            continue
        for kind, name_key in (("spec", "spec"), ("data", "data")):
            fresh = (workdir / entry[name_key]).read_bytes()
            golden_path = golden_dir / golden_entry[name_key]
            if not golden_path.is_file():
                drifts.append(
                    f"{entry['id']}: golden {kind} file "
                    f"{golden_entry[name_key]} is missing")
                continue
            if fresh != golden_path.read_bytes():
                drifts.append(
                    f"{entry['id']}: {kind} drifted from golden "
                    f"{golden_entry[name_key]}")
    if only is None:
        generated_ids = {e["id"] for e in manifest["figures"]}
        for figure_id in sorted(set(golden_by_id) - generated_ids):
            drifts.append(
                f"{figure_id}: in the golden set but no longer "
                "generated")
        if not drifts and dumps_manifest(manifest) != (
                golden_dir / MANIFEST_FILENAME).read_text(
                    encoding="utf-8"):
            drifts.append(
                f"{MANIFEST_FILENAME}: manifest drifted (inputs "
                f"fingerprint {manifest['inputs_fingerprint'][:12]} vs "
                f"golden "
                f"{golden_manifest['inputs_fingerprint'][:12]})")
    return drifts


__all__ = [
    "GOLDEN_FIGURES_DIR",
    "check_figures",
    "csv_bytes",
    "figure_ids",
    "generate_figures",
    "spec_bytes",
]
