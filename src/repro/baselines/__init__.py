"""Baseline models: software SpGEMM, CPU platforms, IP, OuterSPACE, SpArch."""

from repro.baselines.common import BaselineResult, compulsory_traffic
from repro.baselines.cpu_model import run_mkl_model, spgemm_efficiency
from repro.baselines.inner_product import run_inner_product_model
from repro.baselines.outerspace import run_outerspace_model
from repro.baselines.rvv import lane_utilization, run_rvv_model, rvv_spgemm
from repro.baselines.sparch import (
    condensed_width,
    run_sparch_model,
)
from repro.baselines.sparsezipper import run_sparsezipper_model, zipper_spgemm
from repro.baselines.spgemm_ref import (
    SpgemmCounts,
    output_nnz_upper_bound,
    spgemm_hash,
    spgemm_semiring,
    spgemm_spa,
)
from repro.baselines.spmv import (
    DEFAULT_OPERAND,
    OPERAND_SHAPES,
    run_gamma_spmv,
    vector_operand,
)

__all__ = [
    "BaselineResult",
    "DEFAULT_OPERAND",
    "OPERAND_SHAPES",
    "SpgemmCounts",
    "compulsory_traffic",
    "condensed_width",
    "lane_utilization",
    "output_nnz_upper_bound",
    "run_gamma_spmv",
    "run_inner_product_model",
    "run_mkl_model",
    "run_outerspace_model",
    "run_rvv_model",
    "run_sparch_model",
    "run_sparsezipper_model",
    "rvv_spgemm",
    "spgemm_efficiency",
    "spgemm_hash",
    "spgemm_semiring",
    "spgemm_spa",
    "vector_operand",
    "zipper_spgemm",
]
