"""Tests for the baseline models: reference SpGEMM, MKL, IP, OS, SpArch."""

import numpy as np
import pytest

from repro.analysis.reuse import LruRowCache, b_read_traffic
from repro.analysis.traffic import compulsory_traffic
from repro.baselines import (
    condensed_width,
    output_nnz_upper_bound,
    run_inner_product_model,
    run_mkl_model,
    run_outerspace_model,
    run_sparch_model,
    spgemm_efficiency,
    spgemm_hash,
    spgemm_spa,
)
from repro.baselines.sparch import condensed_column_stream
from repro.config import CpuConfig, GammaConfig
from repro.matrices import generators


def scipy_product(a, b):
    return (a.to_scipy() @ b.to_scipy()).toarray()


class TestReferenceSpgemm:
    @pytest.mark.parametrize("kernel", [spgemm_spa, spgemm_hash])
    def test_matches_scipy(self, kernel):
        a = generators.uniform_random(50, 60, 4.0, seed=1)
        b = generators.uniform_random(60, 40, 5.0, seed=2)
        c, counts = kernel(a, b)
        np.testing.assert_allclose(c.to_dense(), scipy_product(a, b),
                                   atol=1e-9)
        assert counts.flops > 0
        assert counts.output_nnz == c.nnz
        assert counts.touched_b_rows == a.nnz

    @pytest.mark.parametrize("kernel", [spgemm_spa, spgemm_hash])
    def test_empty_inputs(self, kernel):
        from repro.matrices.csr import CsrMatrix

        a = CsrMatrix.from_rows([], 10)
        b = generators.uniform_random(10, 10, 2.0, seed=3)
        c, counts = kernel(a, b)
        assert c.nnz == 0
        assert counts.flops == 0

    def test_kernels_agree(self):
        a = generators.power_law(80, 80, 5.0, seed=4)
        c1, n1 = spgemm_spa(a, a)
        c2, n2 = spgemm_hash(a, a)
        np.testing.assert_allclose(c1.to_dense(), c2.to_dense(), atol=1e-9)
        assert n1.flops == n2.flops

    def test_dimension_check(self):
        a = generators.uniform_random(5, 6, 2.0, seed=5)
        b = generators.uniform_random(7, 5, 2.0, seed=6)
        with pytest.raises(ValueError, match="inner dimensions"):
            spgemm_spa(a, b)

    def test_output_upper_bound(self):
        a = generators.uniform_random(40, 40, 4.0, seed=7)
        c, counts = spgemm_spa(a, a)
        bound = output_nnz_upper_bound(a, a)
        assert counts.output_nnz <= bound
        assert bound == counts.flops


class TestLruReuse:
    def test_hits_within_capacity(self):
        cache = LruRowCache(capacity_bytes=100)
        assert cache.access(1, 40) is True
        assert cache.access(2, 40) is True
        assert cache.access(1, 40) is False
        assert cache.miss_bytes == 80

    def test_eviction_order(self):
        cache = LruRowCache(capacity_bytes=80)
        cache.access(1, 40)
        cache.access(2, 40)
        cache.access(3, 40)  # evicts 1
        assert cache.access(1, 40) is True

    def test_move_to_end_protects(self):
        cache = LruRowCache(capacity_bytes=80)
        cache.access(1, 40)
        cache.access(2, 40)
        cache.access(1, 40)  # refresh 1
        cache.access(3, 40)  # evicts 2
        assert cache.access(1, 40) is False

    def test_b_read_traffic_bounds(self):
        a = generators.uniform_random(100, 100, 4.0, seed=8)
        compulsory = b_read_traffic(a.coords, a, 10**9)
        thrash = b_read_traffic(a.coords, a, 0)
        assert compulsory <= thrash
        assert thrash == sum(
            a.row_nnz(int(k)) * 12 for k in a.coords)


class TestMklModel:
    def test_efficiency_curve(self):
        assert spgemm_efficiency(2.0) < spgemm_efficiency(50.0)
        assert spgemm_efficiency(10_000.0) <= 0.12

    def test_runtime_positive_and_scaled(self):
        a = generators.uniform_random(200, 200, 5.0, seed=9)
        small = run_mkl_model(a, a, CpuConfig())
        assert small.runtime_seconds > 0
        assert small.flops > 0
        assert small.name == "MKL"

    def test_traffic_contains_compulsory(self):
        a = generators.uniform_random(200, 200, 5.0, seed=10)
        result = run_mkl_model(a, a)
        compulsory = compulsory_traffic(
            a, a, output_nnz_upper_bound(a, a))
        assert result.traffic_bytes["A"] >= compulsory["A"]
        assert result.traffic_bytes["C"] >= compulsory["C"] * 0.9

    def test_denser_matrices_more_efficient(self):
        sparse = generators.uniform_random(300, 300, 3.0, seed=11)
        dense = generators.uniform_random(300, 300, 30.0, seed=12)
        r_sparse = run_mkl_model(sparse, sparse)
        r_dense = run_mkl_model(dense, dense)
        gflops = lambda r: r.flops / r.runtime_seconds
        assert gflops(r_dense) > gflops(r_sparse)


class TestOuterSpace:
    def test_input_reuse_is_perfect(self):
        a = generators.uniform_random(150, 150, 5.0, seed=13)
        result = run_outerspace_model(a, a)
        assert result.traffic_bytes["A"] == a.nnz * 12 + a.num_cols * 4
        assert result.traffic_bytes["B"] == a.nnz * 12 + a.num_rows * 4

    def test_partial_traffic_scales_with_flops(self):
        a = generators.uniform_random(150, 150, 5.0, seed=14)
        result = run_outerspace_model(a, a)
        assert result.traffic_bytes["partial_write"] == result.flops * 12
        assert (result.traffic_bytes["partial_read"]
                > result.traffic_bytes["partial_write"])

    def test_phases_add(self):
        a = generators.uniform_random(150, 150, 5.0, seed=15)
        result = run_outerspace_model(a, a)
        assert result.cycles >= result.flops / 1.2  # merge phase floor


class TestSpArch:
    def test_condensed_width_is_max_row(self):
        a = generators.mixed_density(
            60, 60, 4.0, dense_row_fraction=0.05, dense_row_nnz=30,
            seed=16)
        assert condensed_width(a) == int(a.row_lengths().max())

    def test_condensed_stream_covers_all_nonzeros(self):
        a = generators.uniform_random(40, 40, 4.0, seed=17)
        stream = list(condensed_column_stream(a))
        assert len(stream) == a.nnz
        assert sorted(stream) == sorted(a.coords.tolist())

    def test_no_spill_when_narrow(self):
        a = generators.uniform_random(100, 100, 5.0, seed=18)
        assert condensed_width(a) <= 64
        result = run_sparch_model(a, a)
        assert result.traffic_bytes["partial_write"] == 0

    def test_spill_when_wide(self):
        a = generators.mixed_density(
            100, 400, 5.0, dense_row_fraction=0.05, dense_row_nnz=300,
            seed=19)
        assert condensed_width(a) > 64
        result = run_sparch_model(a, a.transpose())
        assert result.traffic_bytes["partial_write"] > 0

    def test_b_traffic_at_least_compulsory(self):
        a = generators.uniform_random(200, 200, 6.0, seed=20)
        result = run_sparch_model(a, a)
        touched = np.unique(a.coords)
        floor = sum(a.row_nnz(int(k)) for k in touched) * 12
        assert result.traffic_bytes["B"] >= floor * 0.9


class TestInnerProduct:
    def test_output_written_once(self):
        a = generators.uniform_random(150, 150, 5.0, seed=21)
        c_nnz = output_nnz_upper_bound(a, a)
        result = run_inner_product_model(a, a, c_nnz=c_nnz)
        assert result.traffic_bytes["C"] == c_nnz * 12 + a.num_rows * 4

    def test_sparser_matrices_suffer_more(self):
        """The Sec. 2.3 claim: IP is inefficient on highly sparse inputs."""
        config = GammaConfig(fibercache_bytes=32 * 1024)
        sparse = generators.power_law(2000, 2000, 3.0, seed=22)
        denser = generators.uniform_random(300, 300, 25.0, seed=23)
        norm = {}
        for label, m in (("sparse", sparse), ("denser", denser)):
            result = run_inner_product_model(m, m, config)
            compulsory = sum(compulsory_traffic(
                m, m, output_nnz_upper_bound(m, m)).values())
            norm[label] = result.total_traffic / compulsory
        assert norm["sparse"] > 1.5 * norm["denser"]

    def test_no_partial_traffic(self):
        a = generators.uniform_random(100, 100, 4.0, seed=24)
        result = run_inner_product_model(a, a)
        assert result.traffic_bytes["partial_read"] == 0
        assert result.traffic_bytes["partial_write"] == 0


class TestCrossModelOrdering:
    """The paper's headline ordering must hold on representative inputs."""

    @pytest.mark.parametrize("seed", [30, 31])
    def test_gamma_traffic_below_outer_product_designs(self, seed):
        from repro.core import GammaSimulator

        a = generators.power_law(1500, 1500, 6.0, seed=seed,
                                 max_degree=60)
        config = GammaConfig(fibercache_bytes=32 * 1024)
        gamma = GammaSimulator(config, keep_output=False).run(a, a)
        c_nnz = (gamma.compulsory_bytes["C"] - 4 * a.num_rows) // 12
        outerspace = run_outerspace_model(a, a, config, c_nnz)
        assert gamma.total_traffic < outerspace.total_traffic

    def test_all_models_report_same_flops(self):
        a = generators.uniform_random(120, 120, 5.0, seed=32)
        c_nnz = output_nnz_upper_bound(a, a)
        results = [
            run_outerspace_model(a, a, c_nnz=c_nnz),
            run_sparch_model(a, a, c_nnz=c_nnz),
            run_inner_product_model(a, a, c_nnz=c_nnz),
            run_mkl_model(a, a, c_nnz=c_nnz),
        ]
        assert len({r.flops for r in results}) == 1
