"""Work programs and the dynamic scheduler (paper Sec. 3.3).

A :class:`WorkProgram` is the processing-order sequence of :class:`WorkItem`
fragments of A — one item per row in the default case; reordered and/or
split into subrows by the Sec. 4 preprocessing. The :class:`Scheduler`
expands items into task trees, tracks dependencies, bounds the partial-output
footprint, and hands dispatchable tasks to the simulator in priority order
(row order first, then higher tree levels).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tasks import (LeafTask, Task, TaskInput, build_task_tree,
                              _task_ids)
from repro.matrices.csr import CsrMatrix


@dataclass(frozen=True)
class WorkItem:
    """One schedulable fragment of A: a full row or a coordinate-space subrow.

    Attributes:
        row: Output row of C this fragment contributes to.
        part: Subrow index within the row (0 when the row is untiled).
        num_parts: Total subrows of the row (1 when untiled).
        coords: Column coordinates of the fragment (B row ids).
        values: Matching values of A.
    """

    row: int
    part: int
    num_parts: int
    coords: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        return len(self.coords)


@dataclass
class WorkProgram:
    """The processing-order sequence of work items for one spMspM.

    Attributes:
        items: Fragments of A in the order the scheduler consumes them.
        num_rows: Rows of A (= rows of C).
        num_cols: Columns of A (= rows of B).
    """

    items: List[WorkItem]
    num_rows: int
    num_cols: int

    @staticmethod
    def from_matrix(a: CsrMatrix) -> "WorkProgram":
        """The identity program: one item per nonempty row, in row order."""
        items = []
        for row in range(a.num_rows):
            start, end = a.offsets[row], a.offsets[row + 1]
            if start == end:
                continue
            items.append(WorkItem(
                row=row, part=0, num_parts=1,
                coords=a.coords[start:end], values=a.values[start:end],
            ))
        return WorkProgram(items, a.num_rows, a.num_cols)

    def validate_against(self, a: CsrMatrix) -> None:
        """Check the program covers exactly A's nonzeros (test helper)."""
        seen: Dict[int, int] = {}
        for item in self.items:
            seen[item.row] = seen.get(item.row, 0) + item.nnz
        for row in range(a.num_rows):
            expected = a.row_nnz(row)
            if seen.get(row, 0) != expected:
                raise ValueError(
                    f"program covers {seen.get(row, 0)} nonzeros of row "
                    f"{row}, matrix has {expected}"
                )


class Scheduler:
    """Expands work items into tasks and dispatches them dynamically.

    Args:
        program: The work program (possibly preprocessed).
        radix: PE merger radix.
        multi_pe: When True (default), tasks from one row may run on any PE;
            when False, each row is bound to a single PE (the Fig. 20
            ablation).
        max_outstanding_partials: Bound on live partial output fibers
            (the paper limits this to twice the PE count, Sec. 3.4).
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; when set,
            every dispatch samples the ready-queue depth and the live
            partial-fiber count (``sched/*`` histograms).
    """

    def __init__(
        self,
        program: WorkProgram,
        radix: int,
        multi_pe: bool = True,
        max_outstanding_partials: int = 64,
        metrics=None,
    ) -> None:
        self.program = program
        self.radix = radix
        self.multi_pe = multi_pe
        self.max_outstanding_partials = max_outstanding_partials
        self.metrics = metrics
        self._item_cursor = 0
        self._order_counter = itertools.count()
        self._ready: List[Tuple[Tuple[int, int, int], Task]] = []
        self._waiting: Dict[int, Task] = {}
        self._dep_count: Dict[int, int] = {}
        self._dependents: Dict[int, List[int]] = {}
        self.outstanding_partials = 0
        self._completed: set = set()
        # Multi-part rows: row -> (root task ids seen, items seen).
        self._row_parts: Dict[int, List[int]] = {}
        self._row_parts_seen: Dict[int, int] = {}
        self.tasks_created = 0
        self.items_consumed = 0

    # ------------------------------------------------------------------
    # Item expansion
    # ------------------------------------------------------------------
    def _expand_next_item(self) -> bool:
        """Expand one more work item into tasks. Returns False when done."""
        if self._item_cursor >= len(self.program.items):
            return False
        item = self.program.items[self._item_cursor]
        self._item_cursor += 1
        self.items_consumed += 1
        order = next(self._order_counter)
        emit_final = item.num_parts == 1
        tree = build_task_tree(
            row=item.row,
            b_rows=item.coords,
            scales=item.values,
            radix=self.radix,
            row_order=order,
            emit_final=emit_final,
        )
        self._register_tasks(tree)
        if item.num_parts > 1:
            root = tree[-1]
            parts = self._row_parts.setdefault(item.row, [])
            parts.append(root.task_id)
            seen = self._row_parts_seen.get(item.row, 0) + 1
            self._row_parts_seen[item.row] = seen
            if seen == item.num_parts:
                self._emit_combine_tasks(item.row, parts, order)
        return True

    def _emit_combine_tasks(
        self, row: int, part_task_ids: List[int], order: int
    ) -> None:
        """Create the tree combining a tiled row's subrow partials."""
        ids = list(part_task_ids)
        level = 1
        while len(ids) > self.radix:
            next_ids: List[int] = []
            for lo in range(0, len(ids), self.radix):
                group = ids[lo:lo + self.radix]
                task = Task(
                    task_id=next(_task_ids),
                    row=row,
                    level=level,
                    inputs=[TaskInput("partial", i, 1.0) for i in group],
                    is_final=False,
                    row_order=order,
                )
                self._register_tasks([task])
                next_ids.append(task.task_id)
            ids = next_ids
            level += 1
        final = Task(
            task_id=next(_task_ids),
            row=row,
            level=level,
            inputs=[TaskInput("partial", i, 1.0) for i in ids],
            is_final=True,
            row_order=order,
        )
        self._register_tasks([final])
        del self._row_parts[row]
        del self._row_parts_seen[row]

    def _register_tasks(self, tree: Sequence[Task]) -> None:
        push = heapq.heappush
        ready = self._ready
        for task in tree:
            self.tasks_created += 1
            if task.level == 0:
                # Leaves consume only B rows (build_task_tree invariant),
                # so they are dispatchable immediately; skip the dep scan.
                push(ready, ((task.row_order, 0, task.task_id), task))
                continue
            deps = [
                inp.index for inp in task.inputs
                if inp.kind == "partial" and inp.index not in self._completed
            ]
            if deps:
                self._dep_count[task.task_id] = len(deps)
                self._waiting[task.task_id] = task
                for dep in deps:
                    self._dependents.setdefault(dep, []).append(task.task_id)
            else:
                heapq.heappush(self._ready, (task.priority_key(), task))

    # ------------------------------------------------------------------
    # Dispatch interface
    # ------------------------------------------------------------------
    def refill(self, pending_target: int, allow_force: bool = True) -> None:
        """Expand items until enough tasks are in flight or limits bind.

        The partial-output budget (Sec. 3.4) throttles expansion. With
        ``allow_force`` (no other way to make progress), one more item is
        always expanded so forward progress is guaranteed even when the
        budget is exhausted by blocked tree tasks.
        """
        while (
            len(self._ready) < pending_target
            and self.outstanding_partials < self.max_outstanding_partials
        ):
            if not self._expand_next_item():
                break
        while (allow_force and not self._ready
               and self._item_cursor < len(self.program.items)):
            self._expand_next_item()

    def next_task(self) -> Optional[Task]:
        """Pop the highest-priority dispatchable task, if any.

        Dispatching a non-final task brings one more partial output fiber
        into existence, which is what the Sec. 3.4 budget counts.
        """
        if self._ready:
            task = heapq.heappop(self._ready)[1]
            if not task.is_final:
                self.outstanding_partials += 1
            if self.metrics is not None:
                self.metrics.histogram("sched/ready_depth").observe(
                    len(self._ready))
                self.metrics.histogram(
                    "sched/outstanding_partials").observe(
                    self.outstanding_partials)
            return task
        return None

    def task_completed(self, task: Task) -> None:
        """Notify completion: unblocks dependents, frees partial budget."""
        self._completed.add(task.task_id)
        for dependent_id in self._dependents.pop(task.task_id, ()):
            remaining = self._dep_count[dependent_id] - 1
            if remaining:
                self._dep_count[dependent_id] = remaining
            else:
                del self._dep_count[dependent_id]
                dependent = self._waiting.pop(dependent_id)
                heapq.heappush(
                    self._ready, (dependent.priority_key(), dependent)
                )

    def partial_consumed(self, count: int = 1) -> None:
        """A partial output fiber was consumed; release its budget slot."""
        self.outstanding_partials -= count
        if self.outstanding_partials < 0:
            raise RuntimeError("partial-output accounting went negative")

    @property
    def exhausted(self) -> bool:
        """True when every item was expanded and every task dispatched."""
        return (
            self._item_cursor >= len(self.program.items)
            and not self._ready
            and not self._waiting
        )

    def has_blocked_tasks(self) -> bool:
        return bool(self._waiting)


class EpochScheduler(Scheduler):
    """Scheduler with epoch extraction for the batched simulator core.

    Two additions over the base dynamic scheduler, both bit-neutral:

    * *Simple* work items — untiled rows fitting the radix
      (``num_parts == 1`` and ``nnz <= radix``), i.e. items whose whole
      task tree is one final leaf — expand to an array-backed
      :class:`~repro.core.tasks.LeafTask` instead of a one-leaf tree of
      ``TaskInput`` objects. Task-id consumption, ready keys, and every
      counter match the base expansion exactly.
    * :meth:`drain_stretch` pops the run of dispatches the reference
      event loop would perform back-to-back with timing-independent
      order, handing the batched core whole epochs of index-addressable
      tasks instead of one ``next_task()`` pull per dispatch.
    """

    def _is_simple(self, item: WorkItem) -> bool:
        return item.num_parts == 1 and item.nnz <= self.radix

    def _expand_simple_item(self, item: WorkItem) -> None:
        """Expand a simple item straight to its single final leaf."""
        self._item_cursor += 1
        self.items_consumed += 1
        order = next(self._order_counter)
        task = LeafTask(next(_task_ids), item.row, item.coords,
                        item.values, order)
        self.tasks_created += 1
        heapq.heappush(self._ready, ((order, 0, task.task_id), task))

    def _expand_next_item(self) -> bool:
        if self._item_cursor >= len(self.program.items):
            return False
        item = self.program.items[self._item_cursor]
        if self._is_simple(item):
            self._expand_simple_item(item)
            return True
        return super()._expand_next_item()

    def peek_ready(self) -> Optional[Task]:
        """The task ``next_task`` would dispatch, without popping it."""
        return self._ready[0][1] if self._ready else None

    def fence_plan(self, finish_time, leaf_ids):
        """Fence and arming plan for a drained run of level-0 leaves.

        While the ready head is a level-0 leaf, every waiting task's
        remaining dependencies are already dispatched (finish times in
        ``finish_time``), among the drained leaves (``leaf_ids``, about
        to dispatch), or stuck behind an undispatched task that is not
        part of the run — in which case the waiting task cannot unblock
        during it. A waiting task whose remaining dependencies are all
        in flight ("armed") becomes ready exactly when the event loop's
        completion drains reach the latest of those finish times; the
        *fence* — the minimum over armed tasks — is where the reference
        loop's dispatch order stops being timing-independent, because
        the newly ready task preempts every later-ordered leaf.

        Returns ``(fence, dependents)``. ``fence`` covers tasks armed
        before the run starts (``inf`` when there are none).
        ``dependents`` maps each drained leaf id to the mutable records
        ``[missing_deps, worst_finish]`` of waiting tasks that arm only
        once that leaf dispatches; the epoch loop folds each dispatch's
        finish into its records and lowers the fence when a record's
        missing count reaches zero, keeping the stop condition exact
        while non-final leaves dispatch mid-run.
        """
        fence = float("inf")
        dependents: Dict[int, List] = {}
        leaf_set = set(leaf_ids)
        completed = self._completed
        for task in self._waiting.values():
            worst = 0.0
            pending_deps = None
            armable = True
            for inp in task.inputs:
                if inp.kind != "partial" or inp.index in completed:
                    continue
                finish = finish_time.get(inp.index)
                if finish is not None:
                    if finish > worst:
                        worst = finish
                elif inp.index in leaf_set:
                    if pending_deps is None:
                        pending_deps = [inp.index]
                    else:
                        pending_deps.append(inp.index)
                else:
                    armable = False
                    break
            if not armable:
                continue
            if pending_deps is None:
                if worst < fence:
                    fence = worst
            else:
                record = [len(pending_deps), worst]
                for dep in pending_deps:
                    dependents.setdefault(dep, []).append(record)
        return fence, dependents

    def refill_epoch(self, pending_target: int, extra_pending: int) -> None:
        """Mid-epoch :meth:`refill` with drained entries counted as pending.

        The fenced epoch loop holds the undispatched remainder of its
        drained run outside the ready heap; the reference loop would
        still have those entries *in* the heap when it refills between
        dispatches, so its expansion gate compares ``len(ready) +
        extra_pending`` against the target. Replaying that gate after
        every epoch dispatch matters once non-final leaves dispatch:
        each one raises ``outstanding_partials``, and an expansion the
        reference performed just before the budget filled up must not
        be skipped (nor a skipped one performed) by deferring refills
        to the epoch boundary. No force branch: with entries still
        undispatched the reference's ready heap is nonempty, so its
        forced-expansion clause never fires mid-run.
        """
        while (
            len(self._ready) + extra_pending < pending_target
            and self.outstanding_partials < self.max_outstanding_partials
        ):
            if not self._expand_next_item():
                break

    def drain_ready_leaves(self) -> List:
        """Pop the run of already-expanded level-0 leaves at the ready head.

        Unlike :meth:`drain_stretch` this never consumes work items off
        the program cursor: fenced epochs (stretches bounded by
        :meth:`fence_plan`) may stop mid-batch, and item expansion must
        then stay aligned with the reference loop's per-dispatch refill
        gate — which the caller reproduces exactly by refilling between
        chunks. Both final leaves (simple items' whole trees) and
        non-final tree leaves drain; the run stops at the first
        interior task, whose dispatch depends on completion timing.
        Returns the popped heap entries verbatim so an undispatched
        suffix can be pushed back untouched.
        """
        ready = self._ready
        pop = heapq.heappop
        entries: List = []
        while ready:
            if ready[0][1].level != 0:
                break
            entries.append(pop(ready))
        return entries

    def drain_ready_interiors(self) -> List:
        """Pop the run of ready interior (level >= 1) tasks at the ready head.

        The interior mirror of :meth:`drain_ready_leaves`: every popped
        task's inputs are already dispatched and completed (that is what
        put it in the ready heap), so the run forms a *cohort* whose
        dispatch order the reference loop fixes by heap priority alone —
        until its PE-availability horizon reaches the cohort's fence
        (:meth:`fence_plan` applies unchanged: drained interior ids play
        the ``leaf_ids`` role). The run stops at the first level-0
        entry, keeping the specialized leaf epoch paths for leaf work.
        Returns the popped heap entries verbatim so an undispatched
        suffix can be pushed back untouched.
        """
        ready = self._ready
        pop = heapq.heappop
        entries: List = []
        while ready:
            if ready[0][1].level == 0:
                break
            entries.append(pop(ready))
        return entries

    def push_back(self, entries) -> None:
        """Return undispatched :meth:`drain_ready_leaves` entries unchanged."""
        ready = self._ready
        push = heapq.heappush
        for entry in entries:
            push(ready, entry)

    def drain_stretch(self, pending_target: int):
        """Extract a maximal run of timing-independent final-leaf dispatches.

        Returns the run as parallel arrays ``(rows, task_ids, coords,
        scales)`` — struct-of-arrays form, one entry per dispatch — so
        the batched core never materializes per-task objects for epoch
        work.

        The run is exactly the stretch the reference event loop would
        dispatch back-to-back: every already-expanded final leaf in the
        ready heap (keys sort below anything expanded later), then
        *simple* items consumed straight off the program cursor until
        the first tiled or over-radix item. During such a stretch the
        reference's per-dispatch refills and completion drains are
        invisible — dispatched tasks are all final leaves (their
        completions unblock nothing and free no partial budget, and
        final task ids are never consulted by a dependency scan), and
        simple-item expansion reads no completion state — so dispatch
        order is independent of task timing and the lookahead the
        reference interleaves converges at the caller's next ``refill``.
        Task ids and row orders are drawn from the same counters in the
        same cursor order as per-item expansion, keeping ids aligned
        with the reference engine. The fence stops the run *before* a
        complex item is expanded, whose tree/combine registration is
        timing-sensitive; the caller must guarantee no tasks are waiting
        on dependencies and that the ready head is a final leaf.
        """
        ready = self._ready
        pop = heapq.heappop
        rows: List[int] = []
        ids: List[int] = []
        coords: List = []
        scales: List = []
        while ready:
            task = ready[0][1]
            if task.level != 0 or not task.is_final:
                return rows, ids, coords, scales
            pop(ready)
            rows.append(task.row)
            ids.append(task.task_id)
            coords.append(task.b_coords)
            scales.append(task.b_scales)
        # Ready drained: consume simple items straight off the cursor
        # (the partial budget never moves during a stretch, so one check
        # stands in for the reference's per-refill gate).
        if self.outstanding_partials < self.max_outstanding_partials:
            items = self.program.items
            num_items = len(items)
            radix = self.radix
            cursor = start = self._item_cursor
            while cursor < num_items:
                item = items[cursor]
                if item.num_parts != 1 or item.nnz > radix:
                    break
                rows.append(item.row)
                coords.append(item.coords)
                scales.append(item.values)
                cursor += 1
            consumed = cursor - start
            if consumed:
                self._item_cursor = cursor
                self.items_consumed += consumed
                self.tasks_created += consumed
                ids.extend(itertools.islice(_task_ids, consumed))
                for _ in range(consumed):
                    next(self._order_counter)
        return rows, ids, coords, scales
