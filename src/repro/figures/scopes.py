"""Matrix scopes the figure pipeline can run at.

Every generator is parameterized by a :class:`FigureScope` — the matrix
set plus the single-matrix choices some figures need. ``quick`` is the
CI/test scope (the four smallest suite matrices, all models cold in a
couple of seconds — the committed goldens are generated at this scope);
``common``/``extended``/``paper`` reproduce the paper's evaluation sets
and are meant to run against a pre-warmed sweep cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.matrices import suite


@dataclass(frozen=True)
class FigureScope:
    """One named matrix-set configuration for the pipeline.

    Attributes:
        name: Scope id ('quick', 'common', 'extended', 'paper').
        matrices: The matrix set the cross-model figures iterate over.
        scheduling_matrix: Input for the scheduling-ablation figure
            (the paper uses email-Enron).
        dataflow_matrices: Inputs for the dataflow work-count figure
            (functional execution of all three dataflows is the
            slowest generator, so it gets its own, smaller set).
    """

    name: str
    matrices: Tuple[str, ...]
    scheduling_matrix: str
    dataflow_matrices: Tuple[str, ...]

    def suite_specs(self) -> List:
        """The suite's :class:`MatrixSpec` entries for this scope."""
        wanted = set(self.matrices)
        return [spec for spec in
                list(suite.COMMON_SET) + list(suite.EXTENDED_SET)
                if spec.name in wanted]


#: The four smallest suite matrices — every model on all of them is a
#: ~1 s cold run, which is what makes the goldens and CI cheap.
QUICK_MATRICES = ("wiki-Vote", "p2p-Gnutella31", "poisson3Da",
                  "email-Enron")

SCOPES: Dict[str, FigureScope] = {
    "quick": FigureScope(
        name="quick",
        matrices=QUICK_MATRICES,
        scheduling_matrix="email-Enron",
        dataflow_matrices=("wiki-Vote", "p2p-Gnutella31"),
    ),
    "common": FigureScope(
        name="common",
        matrices=tuple(suite.common_set_names()),
        scheduling_matrix="email-Enron",
        dataflow_matrices=("p2p-Gnutella31", "wiki-Vote", "poisson3Da"),
    ),
    "extended": FigureScope(
        name="extended",
        matrices=tuple(suite.extended_set_names()),
        scheduling_matrix="email-Enron",
        dataflow_matrices=("p2p-Gnutella31", "wiki-Vote", "poisson3Da"),
    ),
    "paper": FigureScope(
        name="paper",
        matrices=tuple(suite.common_set_names()
                       + suite.extended_set_names()),
        scheduling_matrix="email-Enron",
        dataflow_matrices=("p2p-Gnutella31", "wiki-Vote", "poisson3Da"),
    ),
}

#: The scope the committed goldens (tests/golden/figures) are pinned at.
GOLDEN_SCOPE = "quick"


def get_scope(name: str) -> FigureScope:
    try:
        return SCOPES[name]
    except KeyError:
        raise ValueError(
            f"unknown figure scope {name!r}; known: {sorted(SCOPES)}"
        ) from None
