"""Unit tests for work programs and the dynamic scheduler."""

import numpy as np
import pytest

from repro.core.scheduler import Scheduler, WorkItem, WorkProgram
from repro.matrices import generators
from repro.matrices.csr import CsrMatrix


def drain(scheduler):
    """Dispatch every task, completing each immediately; returns the list."""
    executed = []
    while True:
        scheduler.refill(8)
        task = scheduler.next_task()
        if task is None:
            assert scheduler.exhausted
            return executed
        executed.append(task)
        for inp in task.inputs:
            if inp.kind == "partial":
                scheduler.partial_consumed()
        scheduler.task_completed(task)


class TestWorkProgram:
    def test_from_matrix_skips_empty_rows(self):
        a = CsrMatrix.from_dense(np.array([
            [1.0, 0.0], [0.0, 0.0], [2.0, 3.0],
        ]))
        program = WorkProgram.from_matrix(a)
        assert [item.row for item in program.items] == [0, 2]
        assert program.items[1].nnz == 2

    def test_validate_against(self):
        a = generators.uniform_random(20, 20, 3.0, seed=1)
        WorkProgram.from_matrix(a).validate_against(a)

    def test_validate_catches_missing_coverage(self):
        a = generators.uniform_random(20, 20, 3.0, seed=2)
        program = WorkProgram.from_matrix(a)
        program.items.pop()
        with pytest.raises(ValueError, match="covers"):
            program.validate_against(a)


class TestSchedulerDispatch:
    def test_all_tasks_dispatched(self):
        a = generators.uniform_random(50, 50, 4.0, seed=3)
        scheduler = Scheduler(WorkProgram.from_matrix(a), radix=64)
        executed = drain(scheduler)
        finals = [t for t in executed if t.is_final]
        nonempty = sum(1 for r in range(50) if a.row_nnz(r) > 0)
        assert len(finals) == nonempty

    def test_row_order_of_final_tasks(self):
        """Final tasks complete in row order (ordered output)."""
        a = generators.uniform_random(40, 40, 4.0, seed=4)
        scheduler = Scheduler(WorkProgram.from_matrix(a), radix=64)
        finals = [t.row for t in drain(scheduler) if t.is_final]
        assert finals == sorted(finals)

    def test_dependencies_respected(self):
        a = generators.mixed_density(
            30, 30, 4.0, dense_row_fraction=0.2, dense_row_nnz=25, seed=5)
        scheduler = Scheduler(WorkProgram.from_matrix(a), radix=4)
        completed = set()
        for task in drain(scheduler):
            for inp in task.inputs:
                if inp.kind == "partial":
                    assert inp.index in completed
            completed.add(task.task_id)

    def test_partial_budget_respected_while_draining(self):
        a = generators.mixed_density(
            60, 60, 4.0, dense_row_fraction=0.3, dense_row_nnz=50, seed=6)
        scheduler = Scheduler(
            WorkProgram.from_matrix(a), radix=4,
            max_outstanding_partials=8)
        while True:
            scheduler.refill(4)
            task = scheduler.next_task()
            if task is None:
                break
            for inp in task.inputs:
                if inp.kind == "partial":
                    scheduler.partial_consumed()
            scheduler.task_completed(task)
            # The budget may overshoot within one item's tree, but stays
            # bounded by tree size, not by the program length.
            assert scheduler.outstanding_partials < 64

    def test_multipart_row_combine_task(self):
        """Tiled rows end with a final combine task over the part outputs."""
        coords = np.arange(12)
        values = np.ones(12)
        items = [
            WorkItem(row=0, part=0, num_parts=2, coords=coords[:6],
                     values=values[:6]),
            WorkItem(row=0, part=1, num_parts=2, coords=coords[6:],
                     values=values[6:]),
        ]
        scheduler = Scheduler(WorkProgram(items, 1, 12), radix=64)
        executed = drain(scheduler)
        finals = [t for t in executed if t.is_final]
        assert len(finals) == 1
        assert all(i.kind == "partial" for i in finals[0].inputs)
        assert len(finals[0].inputs) == 2

    def test_scattered_parts_complete(self):
        """Parts of one row interleaved with other rows still combine."""
        items = [
            WorkItem(row=0, part=0, num_parts=2,
                     coords=np.array([0]), values=np.array([1.0])),
            WorkItem(row=1, part=0, num_parts=1,
                     coords=np.array([1]), values=np.array([1.0])),
            WorkItem(row=0, part=1, num_parts=2,
                     coords=np.array([2]), values=np.array([1.0])),
        ]
        scheduler = Scheduler(WorkProgram(items, 2, 3), radix=64)
        executed = drain(scheduler)
        assert sum(t.is_final for t in executed) == 2

    def test_many_parts_build_combine_tree(self):
        parts = 10
        items = [
            WorkItem(row=0, part=i, num_parts=parts,
                     coords=np.array([i]), values=np.array([1.0]))
            for i in range(parts)
        ]
        scheduler = Scheduler(WorkProgram(items, 1, parts), radix=3)
        executed = drain(scheduler)
        finals = [t for t in executed if t.is_final]
        assert len(finals) == 1
        # Combine tree of 10 partials at radix 3 needs interior levels.
        assert len(executed) > parts + 1

    def test_negative_partial_accounting_raises(self):
        a = generators.uniform_random(10, 10, 2.0, seed=7)
        scheduler = Scheduler(WorkProgram.from_matrix(a), radix=64)
        with pytest.raises(RuntimeError, match="negative"):
            scheduler.partial_consumed()
