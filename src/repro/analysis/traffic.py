"""Traffic accounting shared across the simulator and baseline models."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import ELEMENT_BYTES, OFFSET_BYTES
from repro.matrices.csr import CsrMatrix


def compulsory_traffic(a: CsrMatrix, b: CsrMatrix,
                       c_nnz: int) -> Dict[str, int]:
    """The minimum traffic any design incurs (paper Sec. 6.1).

    With unbounded on-chip storage, a run still reads A once, reads the
    rows of B that A references once, and writes C once.
    """
    if len(a.coords):
        touched = np.unique(a.coords)
        b_lengths = b.row_lengths()
        b_bytes = (int(b_lengths[touched].sum()) * ELEMENT_BYTES
                   + len(touched) * OFFSET_BYTES)
    else:
        b_bytes = 0
    return {
        "A": a.nnz * ELEMENT_BYTES + a.num_rows * OFFSET_BYTES,
        "B": b_bytes,
        "C": c_nnz * ELEMENT_BYTES + a.num_rows * OFFSET_BYTES,
    }


def stream_breakdown_from_metrics(metrics) -> Dict[str, int]:
    """Per-stream DRAM bytes recorded by the observability layer.

    Args:
        metrics: A :class:`~repro.obs.MetricsRegistry` or a serialized
            metrics blob (e.g. ``RunRecord.metrics``) from an
            instrumented run.

    Returns:
        Bytes by stream (A / B / C / partial_read / partial_write),
        measured request by request rather than re-derived from
        aggregates.
    """
    from repro.obs.metrics import as_registry

    registry = as_registry(metrics)
    if registry is None:
        raise ValueError("no metrics attached to this run")
    return {
        stream: int(count)
        for stream, count in
        registry.counters_with_prefix("dram/bytes/").items()
    }


def check_traffic_conservation(metrics, total_bytes: int) -> Dict[str, int]:
    """Assert the metered per-stream bytes sum to the aggregate total.

    The observability layer counts every DRAM request as it is issued;
    this cross-checks those counters against the simulator's own
    end-of-run aggregate (``SimulationResult.total_traffic``). Returns
    the breakdown on success.

    Raises:
        ValueError: When the sums disagree (an instrumentation bug).
    """
    breakdown = stream_breakdown_from_metrics(metrics)
    metered = sum(breakdown.values())
    if metered != total_bytes:
        raise ValueError(
            f"metered DRAM bytes {metered} != aggregate traffic "
            f"{total_bytes} (breakdown: {breakdown})"
        )
    return breakdown


def normalize_breakdown(traffic: Dict[str, int],
                        compulsory: Dict[str, int]) -> Dict[str, float]:
    """Per-category traffic over total compulsory bytes (figure y-axes)."""
    total = max(1, sum(compulsory.values()))
    return {category: count / total for category, count in traffic.items()}


def noncompulsory_bytes(traffic: Dict[str, int],
                        compulsory: Dict[str, int]) -> int:
    """Traffic in excess of the compulsory floor."""
    return max(0, sum(traffic.values()) - sum(compulsory.values()))
