"""The evaluation matrix suites (paper Tables 3 and 4), as synthetic stand-ins.

Each :class:`MatrixSpec` records the published matrix characteristics and the
scaled-down generator parameters we substitute for it. Scaling strategy
(documented in DESIGN.md): row counts are divided by ~64 so pure-Python
simulation is tractable, keeping nnz/row — and hence arithmetic intensity and
the footprint:FiberCache ratio — as close to the paper as possible; a few very
dense extended-set matrices also cap nnz/row (with rows adjusted to preserve
footprint), recorded in ``npr_scaled``. Experiments run on a proportionally
scaled Gamma (see :func:`repro.experiments.runner.scaled_gamma_config`), so
every normalized metric (traffic ratio, bandwidth utilization, speedup) is
scale-invariant.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.matrices import generators
from repro.matrices.csr import CsrMatrix

#: Footprint scale factor between the paper's matrices and our stand-ins.
SUITE_SCALE = 64


@dataclass(frozen=True)
class MatrixSpec:
    """One matrix of the evaluation suites.

    Attributes:
        name: SuiteSparse name from the paper.
        family: Generator family capturing the matrix's structure.
        paper_rows / paper_cols / paper_npr: Published characteristics
            (Tables 3-4). ``paper_cols`` equals ``paper_rows`` for square
            matrices.
        rows / cols / npr: Scaled generator parameters.
        square: Whether the matrix is square (non-square ones are evaluated
            as A x A^T, per Sec. 5).
        seed: Generator seed (deterministic suite).
        gen_kwargs: Extra per-family generator arguments.
        npr_scaled: True when nnz/row was reduced relative to the paper
            (only some dense extended-set matrices).
    """

    name: str
    family: str
    paper_rows: int
    paper_cols: int
    paper_npr: float
    rows: int
    cols: int
    npr: float
    square: bool = True
    seed: int = 0
    gen_kwargs: Dict = field(default_factory=dict)
    npr_scaled: bool = False

    def generate(self) -> CsrMatrix:
        """Materialize the synthetic stand-in."""
        if self.family == "uniform":
            return generators.uniform_random(
                self.rows, self.cols, self.npr, seed=self.seed,
                **self.gen_kwargs)
        if self.family == "power_law":
            return generators.power_law(
                self.rows, self.cols, self.npr, seed=self.seed,
                **self.gen_kwargs)
        if self.family == "mesh":
            return generators.mesh(
                self.rows, self.npr, seed=self.seed, **self.gen_kwargs)
        if self.family == "road":
            return generators.road_network(self.rows, seed=self.seed,
                                           **self.gen_kwargs)
        if self.family == "mixed":
            return generators.mixed_density(
                self.rows, self.cols, seed=self.seed, **self.gen_kwargs)
        if self.family == "block":
            return generators.block_random(
                self.rows, self.cols, self.npr, seed=self.seed,
                **self.gen_kwargs)
        if self.family == "band":
            return generators.diagonal_band(
                self.rows, self.cols, self.npr, seed=self.seed,
                **self.gen_kwargs)
        raise ValueError(f"unknown matrix family {self.family!r}")


def _name_seed(name: str) -> int:
    """Stable per-matrix seed.

    ``hash(str)`` is salted per interpreter process, which would make the
    suite differ between processes — torpedoing both the disk cache and
    parallel-vs-serial sweep determinism. CRC32 is stable everywhere.
    """
    return zlib.crc32(name.encode()) % (2**31)


def _sq(name, family, paper_rows, paper_npr, rows, npr=None, seed=None,
        npr_scaled=False, **gen_kwargs) -> MatrixSpec:
    """Spec helper for square matrices."""
    npr = paper_npr if npr is None else npr
    return MatrixSpec(
        name=name, family=family, paper_rows=paper_rows,
        paper_cols=paper_rows, paper_npr=paper_npr,
        rows=rows, cols=rows, npr=npr, square=True,
        seed=_name_seed(name) if seed is None else seed,
        gen_kwargs=gen_kwargs, npr_scaled=npr_scaled or npr != paper_npr,
    )


def _rect(name, family, paper_rows, paper_cols, paper_npr, rows, cols,
          npr=None, seed=None, **gen_kwargs) -> MatrixSpec:
    """Spec helper for non-square matrices (evaluated as A x A^T)."""
    npr = paper_npr if npr is None else npr
    return MatrixSpec(
        name=name, family=family, paper_rows=paper_rows,
        paper_cols=paper_cols, paper_npr=paper_npr,
        rows=rows, cols=cols, npr=npr, square=False,
        seed=_name_seed(name) if seed is None else seed,
        gen_kwargs=gen_kwargs, npr_scaled=npr != paper_npr,
    )


#: Table 3 — the "common set" used by OuterSPACE and SpArch's evaluations.
COMMON_SET: List[MatrixSpec] = [
    _sq("patents_main", "power_law", 240_547, 2.33, 3758, row_skew=1.2,
        max_degree=24),
    _sq("p2p-Gnutella31", "power_law", 62_586, 2.36, 978, row_skew=1.0,
        max_degree=30),
    _sq("roadNet-CA", "road", 1_971_281, 2.81, 30_625),
    _sq("webbase-1M", "power_law", 1_000_005, 3.11, 15_625, row_skew=2.2,
        max_degree=200),
    _sq("m133-b3", "uniform", 200_200, 4.00, 3128),
    _sq("cit-Patents", "power_law", 3_774_768, 4.38, 58_981, row_skew=1.4,
        max_degree=150),
    _sq("mario002", "band", 389_874, 5.38, 6092),
    _sq("web-Google", "power_law", 916_428, 5.57, 14_319, row_skew=1.9,
        max_degree=90),
    _sq("scircuit", "block", 170_998, 5.61, 2672, num_blocks=24),
    _sq("amazon0312", "block", 400_727, 7.99, 6261, num_blocks=32),
    _sq("ca-CondMat", "block", 23_133, 8.08, 361, num_blocks=8),
    _sq("email-Enron", "power_law", 36_692, 10.02, 573, row_skew=1.9,
        max_degree=180, locality=0.2),
    _sq("wiki-Vote", "power_law", 8_297, 12.50, 256, row_skew=1.6,
        max_degree=140, locality=0.2),
    _sq("cage12", "mesh", 130_228, 15.61, 2035),
    _sq("2cubes_sphere", "mesh", 101_492, 16.23, 1586),
    _sq("offshore", "mesh", 259_789, 16.33, 4059),
    _sq("cop20k_A", "mesh", 121_192, 21.65, 1894),
    _sq("filter3D", "mesh", 106_437, 25.43, 1663),
    _sq("poisson3Da", "mesh", 13_514, 26.10, 256),
]

#: Table 4 — the "extended set": denser, larger, and non-square matrices.
EXTENDED_SET: List[MatrixSpec] = [
    _rect("NotreDame_actors", "power_law", 392_400, 127_823, 3.75,
          6131, 1997, row_skew=1.6, max_degree=120),
    _rect("relat8", "uniform", 345_688, 12_347, 3.86, 2701, 96),
    _rect("Maragal_7", "mixed", 46_845, 26_564, 25.63, 732, 415,
          sparse_nnz_per_row=12.0, dense_row_fraction=0.10,
          dense_row_nnz=250),
    _rect("degme", "mixed", 185_501, 659_415, 43.81, 2899, 10_303,
          sparse_nnz_per_row=30.0, dense_row_fraction=0.01,
          dense_row_nnz=1600),
    _sq("gupta2", "mixed", 62_064, 68.45, 485,
        sparse_nnz_per_row=66.0, dense_row_fraction=0.02,
        dense_row_nnz=120, npr_scaled=True),
    _sq("vsp_bcsstk30_500", "mesh", 58_348, 69.12, 656, npr=48.0, band_factor=0.75),
    _sq("Ge87H76", "mesh", 112_985, 69.85, 1027, npr=40.0, band_factor=0.75),
    _sq("raefsky3", "mesh", 21_200, 70.22, 485, npr=48.0, band_factor=0.75),
    _sq("sme3Db", "mesh", 29_067, 71.60, 677, npr=48.0, renumber=True, band_factor=0.75),
    _sq("Ge99H100", "mesh", 112_985, 74.80, 1100, npr=40.0, band_factor=0.75),
    _sq("x104", "mesh", 108_384, 80.40, 1135, npr=40.0, band_factor=0.75),
    _sq("m_t1", "mesh", 97_578, 99.96, 952, npr=40.0, band_factor=0.75),
    _sq("ship_001", "mesh", 34_920, 111.58, 692, npr=44.0, band_factor=0.75),
    _sq("msc10848", "mesh", 10_848, 113.36, 400, npr=48.0, band_factor=0.75),
    _rect("EternityII_Etilde", "uniform", 10_054, 204_304, 116.42,
          157, 3192, npr=116.42),
    _sq("opt1", "mesh", 15_449, 124.97, 628, npr=48.0, band_factor=0.75),
    _sq("ramage02", "mesh", 16_830, 170.31, 933, npr=48.0, band_factor=0.75),
    _rect("nemsemm1", "mixed", 3_945, 75_352, 267.17, 62, 1177,
          npr=267.17, sparse_nnz_per_row=150.0, dense_row_fraction=0.1,
          dense_row_nnz=900),
]

_BY_NAME: Dict[str, MatrixSpec] = {
    spec.name: spec for spec in COMMON_SET + EXTENDED_SET
}


def spec_by_name(name: str) -> MatrixSpec:
    """Look up a suite matrix by its SuiteSparse name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown suite matrix {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def common_set_names() -> List[str]:
    return [spec.name for spec in COMMON_SET]


def extended_set_names() -> List[str]:
    return [spec.name for spec in EXTENDED_SET]


_CACHE: Dict[str, CsrMatrix] = {}


def load(name: str) -> CsrMatrix:
    """Generate (and memoize) a suite matrix by name."""
    if name not in _CACHE:
        _CACHE[name] = spec_by_name(name).generate()
    return _CACHE[name]


def operands(name: str) -> Tuple[CsrMatrix, CsrMatrix]:
    """The (A, B) pair evaluated for this matrix.

    Square matrices are squared (A x A); non-square ones compute A x A^T,
    both per the paper's Sec. 5.
    """
    spec = spec_by_name(name)
    a = load(name)
    if spec.square:
        return a, a
    return a, a.transpose()
