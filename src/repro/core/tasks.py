"""Scheduler work units: tasks and balanced top-full task trees (Sec. 3.3).

A *task* is one PE invocation: a linear combination of up to ``radix`` input
fibers into one output fiber. Rows of A with more nonzeros than the radix
become a *task tree* (paper Fig. 9): leaves combine B rows, interior nodes
combine the partial output fibers of their children, and the root emits the
final output row.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

_task_ids = itertools.count()


class TaskInput:
    """One input fiber of a task.

    A plain ``__slots__`` class rather than a dataclass: simulations
    create one per consumed fiber (millions per sweep point), so
    construction and attribute reads sit on the hot path.

    Attributes:
        kind: 'B' for a row of B, 'partial' for a child task's output.
        index: B row id for kind 'B'; child task id for kind 'partial'.
        scale: Scaling factor — a_mk for B rows, 1.0 for partials (Sec. 3.1).
    """

    __slots__ = ("kind", "index", "scale")

    def __init__(self, kind: str, index: int, scale: float) -> None:
        if kind != "B" and kind != "partial":
            raise ValueError(f"unknown input kind {kind!r}")
        self.kind = kind
        self.index = index
        self.scale = scale

    def __repr__(self) -> str:
        return (f"TaskInput(kind={self.kind!r}, index={self.index!r}, "
                f"scale={self.scale!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskInput):
            return NotImplemented
        return (self.kind == other.kind and self.index == other.index
                and self.scale == other.scale)


@dataclass
class Task:
    """One PE invocation.

    Attributes:
        task_id: Globally unique id.
        row: Output row of C this task contributes to.
        level: Height in the task tree (0 = leaf).
        inputs: The fibers to combine (at most the PE radix).
        is_final: True when this task's output is the final fiber for a
            C row (written to memory); False for partial output fibers
            (written to the FiberCache).
        row_order: Position of the owning work item in the processing
            sequence (used for dispatch priority).
        children: Child tasks whose outputs feed this task.
    """

    task_id: int
    row: int
    level: int
    inputs: List[TaskInput]
    is_final: bool
    row_order: int = 0
    children: List["Task"] = field(default_factory=list)

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    def priority_key(self) -> Tuple[int, int, int]:
        """Dispatch priority: row order first, then higher levels first.

        The scheduler drains rows in order (ordered output) and, within a
        row, prefers higher-level tasks to shrink the partial-fiber
        footprint (Sec. 3.3).
        """
        return (self.row_order, -self.level, self.task_id)


class LeafTask:
    """Array-backed final leaf task for single-task work items.

    Functionally identical to the one-leaf tree ``build_task_tree``
    builds for a *simple* work item (``num_parts == 1`` and
    ``nnz <= radix``) — same global task-id consumption, level 0, final
    output — but keeps the item's B row ids and scaling factors as the
    original numpy arrays instead of materializing one ``TaskInput``
    per element. The batched simulator core gathers inputs for whole
    epochs straight from these arrays; ``inputs`` materializes lazily
    for the scalar execution path, which stays oblivious.
    """

    __slots__ = ("task_id", "row", "row_order", "b_coords", "b_scales",
                 "_inputs")

    level = 0
    is_final = True
    children: Tuple = ()

    def __init__(self, task_id: int, row: int, b_coords, b_scales,
                 row_order: int) -> None:
        self.task_id = task_id
        self.row = row
        self.row_order = row_order
        self.b_coords = b_coords
        self.b_scales = b_scales
        self._inputs = None

    @property
    def inputs(self) -> List[TaskInput]:
        if self._inputs is None:
            self._inputs = [
                TaskInput("B", coord, scale)
                for coord, scale in zip(self.b_coords.tolist(),
                                        self.b_scales.tolist())
            ]
        return self._inputs

    @property
    def num_inputs(self) -> int:
        return len(self.b_coords)

    def priority_key(self) -> Tuple[int, int, int]:
        return (self.row_order, 0, self.task_id)

    def __repr__(self) -> str:
        return (f"LeafTask(task_id={self.task_id}, row={self.row}, "
                f"num_inputs={self.num_inputs})")


def build_task_tree(
    row: int,
    b_rows: Sequence[int],
    scales: Sequence[float],
    radix: int,
    row_order: int = 0,
    emit_final: bool = True,
) -> List[Task]:
    """Build the balanced, top-full task tree for one linear combination.

    Splits ``len(b_rows)`` input fibers into a tree of radix-``radix``
    merges, full at the top levels with any slack pushed to the lowest
    level (paper Fig. 9). Returns tasks in dependency order (children
    before parents); the last task is the root.

    Args:
        row: Output row id.
        b_rows: B row ids the combination consumes.
        scales: Matching scaling factors (values of A's row).
        radix: PE merger radix.
        row_order: Processing-sequence position for priority.
        emit_final: Whether the root writes a final C row (False when this
            tree computes a subrow partial under coordinate-space tiling).

    Raises:
        ValueError: On empty input or mismatched lengths.
    """
    if len(b_rows) != len(scales):
        raise ValueError(
            f"{len(b_rows)} input rows but {len(scales)} scales"
        )
    if len(b_rows) == 0:
        raise ValueError(f"row {row}: cannot build a task tree with no inputs")
    if radix < 2:
        raise ValueError(f"radix must be >= 2, got {radix}")

    # One bulk conversion instead of per-element int()/float() calls in
    # the leaf loops (ndarray.tolist yields native Python scalars).
    if hasattr(b_rows, "tolist"):
        b_rows = b_rows.tolist()
    else:
        b_rows = [int(r) for r in b_rows]
    if hasattr(scales, "tolist"):
        scales = scales.tolist()
    else:
        scales = [float(s) for s in scales]

    tasks: List[Task] = []

    def build(lo: int, hi: int) -> Task:
        """Build the subtree combining inputs [lo, hi); returns its root."""
        count = hi - lo
        if count <= radix:
            task = Task(
                task_id=next(_task_ids),
                row=row,
                level=0,
                inputs=[
                    TaskInput("B", b_rows[i], scales[i])
                    for i in range(lo, hi)
                ],
                is_final=False,
                row_order=row_order,
            )
            tasks.append(task)
            return task
        # Top-full: the top level always uses the full radix; each child
        # covers an even share, so only the bottom level can be slack.
        children: List[Task] = []
        direct_inputs: List[TaskInput] = []
        base = count // radix
        remainder = count % radix
        cursor = lo
        for slot in range(radix):
            size = base + (1 if slot < remainder else 0)
            if size == 0:
                continue
            if size == 1:
                # A single fiber feeds the parent's merger way directly.
                direct_inputs.append(
                    TaskInput("B", b_rows[cursor], scales[cursor])
                )
            else:
                children.append(build(cursor, cursor + size))
            cursor += size
        parent = Task(
            task_id=next(_task_ids),
            row=row,
            level=max(c.level for c in children) + 1,
            inputs=(
                [TaskInput("partial", c.task_id, 1.0) for c in children]
                + direct_inputs
            ),
            is_final=False,
            row_order=row_order,
            children=children,
        )
        tasks.append(parent)
        return parent

    root = build(0, len(b_rows))
    root.is_final = emit_final
    return tasks


def tree_stats(tasks: Sequence[Task]) -> Tuple[int, int]:
    """(number of tasks, tree depth) — e.g., 4096 fibers @ radix 64 -> (65, 2)."""
    if not tasks:
        return (0, 0)
    return (len(tasks), max(t.level for t in tasks) + 1)
