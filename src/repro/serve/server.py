"""SpGEMM-as-a-service: the asyncio HTTP job server.

One-shot CLI runs don't serve concurrent clients; this module layers a
job API over the machinery the repo already trusts:

* **Execution** is `execute_point` — the same single entry point the
  sweep engine and the serial facade use — run either inline (a worker
  thread in this process, ``workers=0``, fully deterministic) or on a
  :class:`SlotPool` of killable worker processes reusing the sweep
  executor's :class:`~repro.engine.sweep.WorkerSlot` (per-job timeout →
  kill + respawn, crash isolation, bounded retries with the sweep's
  deterministic backoff).
* **Results** flow through the tiered store
  (:class:`~repro.serve.store.TieredStore`): L1 in-process LRU, L2 the
  checksum-validated disk cache shared with sweeps.
* **Identical concurrent jobs coalesce**: the first requester leads one
  execution, later requesters attach to its future — N duplicate
  submissions cost one simulation (asserted via ``point/execute`` span
  counts in the load tests), the serving analogue of Gamma merging
  partial fibers instead of refetching them.
* **Admission control** bounds what the server accepts: per-client
  in-flight caps (HTTP 429) and a bounded count of distinct in-flight
  executions (HTTP 503), both with ``Retry-After``.
* **Graceful shutdown** stops accepting, drains in-flight executions
  (bounded by ``drain_seconds``), resolves anything still unfinished
  with a structured error — never a torn response — and checkpoints the
  interrupted queue through the disk cache so a restarted server
  resumes it.

The protocol is deliberately tiny HTTP/1.1 (stdlib-only; the container
has no aiohttp): ``POST /jobs`` (JSON spec → job id), ``GET
/jobs/<id>`` (``?wait=SECONDS`` long-polls), ``GET /stats``, ``GET
/metrics`` (a single-snapshot counters document for scrapers), ``GET
/healthz``. Every response is a complete JSON document with an exact
``Content-Length`` — a client can observe an old job state or a new
one, never a torn mixture.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import queue as queue_mod
import time
import urllib.parse
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import diskcache
from repro.engine.sweep import (
    SweepPoint,
    SweepPolicy,
    WorkerSlot,
    execute_point,
)
from repro.obs import spans
from repro.serve.jobs import Job, JobSpec, JobValidationError
from repro.serve.store import CoalescingMap, TieredStore

#: Queue-checkpoint envelope version (independent of record schema).
QUEUE_CHECKPOINT_VERSION = 1

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: Execution failure reason -> server stats counter.
_FAIL_STATS = {"timeout": "timeouts", "crash": "crashes",
               "error": "errors", "shutdown": "shutdowns"}


@dataclass
class ServerConfig:
    """Service tuning knobs (all have serving-scale defaults).

    Attributes:
        workers: Worker *processes* (the slot pool). ``0`` runs jobs
            inline in a thread of this process — deterministic and
            fault-transparent, but without kill-based cancellation, so
            ``timeout_seconds`` is ignored there.
        queue_depth: Maximum distinct in-flight executions (coalesced
            duplicates ride free); beyond it submissions get 503.
        per_client_limit: Maximum unfinished jobs per client id
            (``X-Client-Id`` header, else the peer address); beyond it
            submissions get 429.
        timeout_seconds / max_retries / backoff_*: Per-job failure
            policy, identical semantics to the sweep engine's
            :class:`~repro.engine.sweep.SweepPolicy`.
        l1_capacity: L1 LRU entries (complete RunRecord payloads).
        retry_after_seconds: Value clients see in ``Retry-After``.
        drain_seconds: Graceful-shutdown budget for in-flight jobs.
        checkpoint_tag: Names the queue checkpoint (one logical service
            per tag; restarts restore their own tag only).
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the OS picks; see JobServer.port)
    workers: int = 2
    queue_depth: int = 64
    per_client_limit: int = 16
    timeout_seconds: Optional[float] = 60.0
    max_retries: int = 2
    backoff_base_seconds: float = 0.05
    backoff_max_seconds: float = 2.0
    l1_capacity: int = 256
    retry_after_seconds: float = 1.0
    drain_seconds: float = 30.0
    checkpoint_tag: str = "default"

    def policy(self) -> SweepPolicy:
        return SweepPolicy(
            timeout_seconds=self.timeout_seconds,
            max_retries=self.max_retries,
            backoff_base_seconds=self.backoff_base_seconds,
            backoff_max_seconds=self.backoff_max_seconds)


class SlotPool:
    """A fixed set of killable worker processes behind a free queue.

    :meth:`run_point` is blocking (the server calls it via
    ``asyncio.to_thread``) and thread-safe: each call checks a slot
    out, drives one attempt to an outcome — success, crash (worker
    death → respawn), or timeout (kill + respawn) — and checks the
    slot back in. Kill-based cancellation is the whole reason worker
    processes exist: a hung or wedged native call cannot be cancelled
    any other way.
    """

    def __init__(self, workers: int) -> None:
        ctx = multiprocessing.get_context()
        self._slots = [WorkerSlot(ctx, index) for index in range(workers)]
        self._free: "queue_mod.SimpleQueue[WorkerSlot]" = \
            queue_mod.SimpleQueue()
        for slot in self._slots:
            self._free.put(slot)
        self._closed = False

    def run_point(self, point: SweepPoint, attempt: int,
                  timeout: Optional[float]) -> Dict[str, Any]:
        """Run one attempt of ``point`` on a free slot (blocking)."""
        slot = self._free.get()
        try:
            try:
                slot.assign(point, attempt, timeout)
            except (BrokenPipeError, OSError):
                slot.respawn()
                return {"ok": False, "reason": "crash",
                        "error": "worker pipe lost on assign"}
            while True:
                if self._closed:
                    slot.respawn()
                    return {"ok": False, "reason": "shutdown",
                            "error": "server shutting down"}
                now = time.monotonic()
                if (slot.deadline is not None and now >= slot.deadline
                        and not slot.conn.poll()):
                    slot.respawn()
                    spans.emit_instant(
                        "serve/timeout_kill", point=point.label(),
                        slot=slot.index, timeout_seconds=timeout)
                    return {"ok": False, "reason": "timeout",
                            "error": f"exceeded {timeout}s timeout"}
                if not slot.conn.poll(0.05):
                    continue
                try:
                    outcome = slot.conn.recv()
                except (EOFError, OSError):
                    slot.respawn()
                    return {"ok": False, "reason": "crash",
                            "error": "worker process died mid-job"}
                slot.release()
                if outcome["ok"]:
                    return {"ok": True, "payload": outcome["payload"],
                            "wall_seconds": outcome["wall_seconds"]}
                return {"ok": False, "reason": "error",
                        "error": outcome["error"]}
        finally:
            self._free.put(slot)

    def shutdown(self) -> None:
        self._closed = True
        for slot in self._slots:
            slot.shutdown()


class JobServer:
    """The job service: submission, coalescing, execution, serving.

    Lifecycle::

        server = JobServer(ServerConfig(workers=2))
        await server.start()          # pool + queue-checkpoint restore
        await server.start_http()     # bind; server.port is now real
        ...
        await server.shutdown()       # drain, checkpoint, stop pool

    ``submit``/``submit_and_wait`` are also directly callable
    (in-process mode) — the load generator and the deterministic tests
    use them to bypass socket nondeterminism.
    """

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.store = TieredStore(self.config.l1_capacity)
        self.coalesce = CoalescingMap()
        self.jobs: Dict[str, Job] = {}
        self.stats: Dict[str, int] = {name: 0 for name in (
            "submitted", "accepted", "coalesced", "computed", "failed",
            "retries", "timeouts", "crashes", "errors", "shutdowns",
            "hits_l1", "hits_l2", "rejected_invalid",
            "rejected_client_limit", "rejected_queue_full",
            "rejected_unavailable", "restored", "checkpointed",
        )}
        self._job_seq = itertools.count(1)
        self._per_client: Dict[str, int] = {}
        self._events: Dict[str, asyncio.Event] = {}
        self._inflight_specs: Dict[str, JobSpec] = {}
        self._queued_keys: Dict[str, JobSpec] = {}
        self._exec_tasks: set = set()
        self._accepting = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[SlotPool] = None
        self._exec_sem: Optional[asyncio.Semaphore] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, restore: bool = True) -> int:
        """Start the execution backend; returns restored-job count."""
        self._loop = asyncio.get_running_loop()
        self._exec_sem = asyncio.Semaphore(max(1, self.config.workers))
        if self.config.workers > 0:
            self._pool = SlotPool(self.config.workers)
        self._accepting = True
        restored = self._restore_queue() if restore else 0
        spans.emit_instant("serve/start", workers=self.config.workers,
                           restored=restored)
        return restored

    async def start_http(self) -> Tuple[str, int]:
        """Bind the HTTP listener; returns the (host, port) bound."""
        assert self._loop is not None, "call start() first"
        self._http_server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        sockname = self._http_server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], self.port

    async def shutdown(self, drain: bool = True) -> Dict[str, int]:
        """Stop accepting, drain in-flight jobs, checkpoint the rest.

        Every accepted job still terminates: jobs the drain budget
        covers finish normally; anything beyond it resolves with a
        structured ``shutdown`` error (and its spec is checkpointed so
        a restarted server re-runs it). Returns
        ``{"drained": N, "checkpointed": M}``.
        """
        self._accepting = False
        spans.emit_instant("serve/shutdown", drain=drain,
                           inflight=len(self.coalesce))
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        tasks = list(self._exec_tasks)
        pending: List[asyncio.Task] = tasks
        if drain and tasks:
            _, pending_set = await asyncio.wait(
                tasks, timeout=self.config.drain_seconds)
            pending = list(pending_set)
        # Checkpoint the specs of every execution that did not finish,
        # then cancel it and resolve its future as a structured error.
        interrupted = [
            self._inflight_specs[key] for key in self.coalesce.keys()
            if key in self._inflight_specs
        ]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for key in self.coalesce.keys():
            future = self.coalesce.finish(key)
            if future is not None and not future.done():
                future.set_result({
                    "ok": False, "reason": "shutdown",
                    "error": "server shut down before completion",
                    "attempts": 0,
                })
        # future done-callbacks run via call_soon; let them finalize
        # the jobs before we report the drain as complete
        await asyncio.sleep(0)
        checkpointed = self._save_checkpoint(interrupted)
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        drained = len(tasks) - len(pending)
        spans.emit_instant("serve/drained", drained=drained,
                           checkpointed=checkpointed)
        return {"drained": drained, "checkpointed": checkpointed}

    # ------------------------------------------------------------------
    # Queue checkpoint (persisted through the disk cache)
    # ------------------------------------------------------------------
    def _checkpoint_key(self) -> str:
        return diskcache.cache_key(
            "serve-queue", tag=self.config.checkpoint_tag)

    def _save_checkpoint(self, specs: List[JobSpec]) -> int:
        if not specs or not diskcache.cache_enabled():
            return 0
        seen = set()
        payloads = []
        for spec in specs:
            key = spec.key()
            if key in seen:
                continue
            seen.add(key)
            payloads.append(spec.to_payload())
        diskcache.store(self._checkpoint_key(), {
            "version": QUEUE_CHECKPOINT_VERSION,
            "specs": payloads,
        })
        self.stats["checkpointed"] += len(payloads)
        spans.emit_instant("serve/checkpoint", jobs=len(payloads))
        return len(payloads)

    def _restore_queue(self) -> int:
        payload = diskcache.load(self._checkpoint_key())
        if (not payload
                or payload.get("version") != QUEUE_CHECKPOINT_VERSION):
            return 0
        diskcache.invalidate(self._checkpoint_key())
        restored = 0
        for spec_payload in payload.get("specs", ()):
            try:
                spec = JobSpec.from_checkpoint(spec_payload)
            except (KeyError, TypeError, ValueError):
                continue  # stale/foreign checkpoint entry
            self._admit(spec, client="restore")
            restored += 1
        self.stats["restored"] += restored
        return restored

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _retry_after(self) -> Dict[str, str]:
        return {"Retry-After": f"{self.config.retry_after_seconds:g}"}

    def submit(self, payload: Any, client: str = "anon",
               ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Handle one ``POST /jobs``.

        Returns ``(http_status, body, extra_headers)`` — 400 for
        invalid specs, 429/503 with ``Retry-After`` for admission
        rejections, 200 for jobs served entirely from the store, 202
        for accepted (queued/coalesced) jobs.
        """
        self.stats["submitted"] += 1
        if not self._accepting:
            self.stats["rejected_unavailable"] += 1
            return 503, _error_body(
                "unavailable", "server is shutting down"
            ), self._retry_after()
        try:
            spec = JobSpec.from_payload(payload)
        except JobValidationError as exc:
            self.stats["rejected_invalid"] += 1
            return 400, _error_body("invalid_spec", str(exc)), {}
        inflight = self._per_client.get(client, 0)
        if inflight >= self.config.per_client_limit:
            self.stats["rejected_client_limit"] += 1
            spans.emit_instant("serve/reject_429", client=client)
            return 429, _error_body(
                "client_limit",
                f"client {client!r} has {inflight} unfinished jobs "
                f"(cap {self.config.per_client_limit})"
            ), self._retry_after()
        key = spec.key()
        if (key not in self.coalesce
                and len(self.coalesce) >= self.config.queue_depth):
            self.stats["rejected_queue_full"] += 1
            spans.emit_instant("serve/reject_503", key=key)
            return 503, _error_body(
                "queue_full",
                f"{len(self.coalesce)} executions in flight "
                f"(cap {self.config.queue_depth})"
            ), self._retry_after()
        return self._admit(spec, client)

    def _admit(self, spec: JobSpec, client: str,
               ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Create a job for a validated, admitted spec."""
        assert self._loop is not None, "server not started"
        key = spec.key()
        job = Job(id=f"j{next(self._job_seq):06d}", spec=spec,
                  client=client)
        self.jobs[job.id] = job
        cached, tier = self.store.get(key)
        if cached is not None:
            job.finish_ok(cached, tier)
            self.stats[f"hits_{tier}"] += 1
            spans.emit_instant("serve/hit", tier=tier, key=key)
            spans.emit_span("serve/job", job.created_ts,
                            job=job.id, state=job.state, source=tier)
            return 200, job.to_payload(), {}
        future, leader = self.coalesce.join(key, self._loop.create_future)
        self.stats["accepted"] += 1
        self._per_client[client] = self._per_client.get(client, 0) + 1
        self._events[job.id] = asyncio.Event()
        if leader:
            self._inflight_specs[key] = spec
            task = self._loop.create_task(self._execute(key, spec))
            self._exec_tasks.add(task)
            task.add_done_callback(self._exec_tasks.discard)
        else:
            self.stats["coalesced"] += 1
            job.source = "coalesced"
            spans.emit_instant("serve/coalesced", key=key, job=job.id)
        future.add_done_callback(
            lambda fut, job=job: self._finalize_job(job, fut))
        return 202, job.to_payload(), {}

    async def submit_and_wait(self, payload: Any, client: str = "anon",
                              timeout: Optional[float] = None,
                              ) -> Tuple[int, Dict[str, Any]]:
        """Submit and await the terminal job payload (in-process API)."""
        status, body, _ = self.submit(payload, client)
        if status not in (200, 202):
            return status, body
        job_id = body["id"]
        if not self.jobs[job_id].finished:
            await asyncio.wait_for(
                self._events[job_id].wait(), timeout)
        return status, self.jobs[job_id].to_payload()

    def _finalize_job(self, job: Job, future: asyncio.Future) -> None:
        """Resolve one job from its (possibly shared) execution outcome."""
        outcome = future.result()  # executions always resolve with a dict
        if outcome["ok"]:
            job.finish_ok(outcome["payload"],
                          job.source or "computed",
                          attempts=outcome["attempts"])
        else:
            job.finish_error(outcome["reason"], outcome["error"],
                             attempts=outcome["attempts"])
        count = self._per_client.get(job.client, 0) - 1
        if count > 0:
            self._per_client[job.client] = count
        else:
            self._per_client.pop(job.client, None)
        spans.emit_span("serve/job", job.created_ts, job=job.id,
                        state=job.state, source=job.source)
        event = self._events.get(job.id)
        if event is not None:
            event.set()

    # ------------------------------------------------------------------
    # Execution (one task per distinct in-flight key)
    # ------------------------------------------------------------------
    async def _execute(self, key: str, spec: JobSpec) -> None:
        point = spec.to_point()
        policy = self.config.policy()
        self._queued_keys[key] = spec
        start_ts = time.time()
        outcome: Dict[str, Any]
        try:
            assert self._exec_sem is not None
            async with self._exec_sem:
                self._queued_keys.pop(key, None)
                attempt = 0
                while True:
                    result = await self._run_once(point, attempt)
                    if result["ok"]:
                        self.store.admit(key, result["payload"])
                        self.stats["computed"] += 1
                        outcome = {"ok": True,
                                   "payload": result["payload"],
                                   "attempts": attempt + 1}
                        break
                    self.stats[_FAIL_STATS[result["reason"]]] += 1
                    if (result["reason"] == "shutdown"
                            or attempt >= policy.max_retries):
                        self.stats["failed"] += 1
                        outcome = {"ok": False,
                                   "reason": result["reason"],
                                   "error": result["error"],
                                   "attempts": attempt + 1}
                        break
                    self.stats["retries"] += 1
                    delay = policy.backoff_delay(key, attempt)
                    spans.emit_instant("serve/backoff", key=key,
                                       attempt=attempt + 1,
                                       delay_seconds=delay)
                    await asyncio.sleep(delay)
                    attempt += 1
        finally:
            self._queued_keys.pop(key, None)
            self._inflight_specs.pop(key, None)
        spans.emit_span("serve/execute", start_ts, key=key,
                        point=point.label(), ok=outcome["ok"],
                        attempts=outcome["attempts"])
        future = self.coalesce.finish(key)
        if future is not None and not future.done():
            future.set_result(outcome)

    async def _run_once(self, point: SweepPoint,
                        attempt: int) -> Dict[str, Any]:
        if self._pool is not None:
            return await asyncio.to_thread(
                self._pool.run_point, point, attempt,
                self.config.timeout_seconds)

        def _inline() -> Dict[str, Any]:
            try:
                payload = execute_point(point).to_payload()
            except BaseException as exc:
                return {"ok": False, "reason": "error",
                        "error": repr(exc)}
            return {"ok": True, "payload": payload}

        return await asyncio.to_thread(_inline)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_payload(self) -> Dict[str, Any]:
        by_state: Dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "accepting": self._accepting,
            "workers": self.config.workers,
            "stats": {name: self.stats[name]
                      for name in sorted(self.stats)},
            "store": {**self.store.stats, **self.store.hit_rates(),
                      "l1_size": len(self.store.l1),
                      "l1_capacity": self.store.l1.capacity,
                      "l1_evictions": self.store.l1.evictions},
            "coalesce": {"inflight": len(self.coalesce),
                         "created": self.coalesce.created,
                         "joined": self.coalesce.joined},
            "jobs": {"total": len(self.jobs), "by_state": by_state},
        }

    def metrics_payload(self) -> Dict[str, Any]:
        """The ``GET /metrics`` document: one consistent snapshot.

        Built synchronously on the event loop with no awaits, so every
        counter in the response was read under the same "instant" — a
        scraper can difference two snapshots without seeing a torn
        mixture of old and new values (the same guarantee the response
        framing gives at the byte level).
        """
        store_stats = dict(self.store.stats)
        unfinished = sum(1 for job in self.jobs.values()
                         if not job.finished)
        return {
            "schema": 1,
            "accepting": self._accepting,
            "store": {
                **store_stats,
                **self.store.hit_rates(),
                "l1_size": len(self.store.l1),
                "l1_capacity": self.store.l1.capacity,
                "l1_evictions": self.store.l1.evictions,
            },
            "coalesce": {
                "inflight": len(self.coalesce),
                "leaders": self.coalesce.created,
                "riders": self.coalesce.joined,
            },
            "admission": {
                "rejected_client_limit":
                    self.stats["rejected_client_limit"],
                "rejected_queue_full":
                    self.stats["rejected_queue_full"],
                "rejected_invalid": self.stats["rejected_invalid"],
                "rejected_unavailable":
                    self.stats["rejected_unavailable"],
            },
            "queue": {
                "inflight_executions": len(self.coalesce),
                "queued_executions": len(self._queued_keys),
                "depth_limit": self.config.queue_depth,
                "workers": self.config.workers,
            },
            "jobs": {
                "total": len(self.jobs),
                "unfinished": unfinished,
                "submitted": self.stats["submitted"],
                "computed": self.stats["computed"],
                "failed": self.stats["failed"],
            },
        }

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await _read_request(reader)
            except _BadRequest as exc:
                await _respond(writer, exc.status,
                               _error_body("bad_request", str(exc)))
                return
            status, body, headers = await self._route(request, writer)
            await _respond(writer, status, body, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to salvage
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _route(self, request: Dict[str, Any],
                     writer: asyncio.StreamWriter,
                     ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        method = request["method"]
        path = request["path"]
        query = request["query"]
        client = request["headers"].get("x-client-id")
        if not client:
            peer = writer.get_extra_info("peername")
            client = peer[0] if peer else "anon"
        if path == "/jobs" and method == "POST":
            try:
                payload = json.loads(request["body"] or b"null")
            except ValueError:
                self.stats["submitted"] += 1
                self.stats["rejected_invalid"] += 1
                return 400, _error_body(
                    "invalid_json", "request body is not valid JSON"), {}
            return self.submit(payload, client)
        if path.startswith("/jobs/") and method == "GET":
            job = self.jobs.get(path[len("/jobs/"):])
            if job is None:
                return 404, _error_body("unknown_job",
                                        "no such job id"), {}
            wait = _parse_wait(query)
            if wait and not job.finished:
                event = self._events.get(job.id)
                if event is not None:
                    try:
                        await asyncio.wait_for(event.wait(), wait)
                    except asyncio.TimeoutError:
                        pass  # report current (unfinished) state
            return 200, job.to_payload(), {}
        if path == "/stats" and method == "GET":
            return 200, self.stats_payload(), {}
        if path == "/metrics" and method == "GET":
            return 200, self.metrics_payload(), {}
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok",
                         "accepting": self._accepting}, {}
        if path in ("/jobs", "/stats", "/metrics", "/healthz") \
                or path.startswith("/jobs/"):
            return 405, _error_body("method_not_allowed",
                                    f"{method} not supported here"), {}
        return 404, _error_body("not_found",
                                f"unknown path {path!r}"), {}


def _error_body(reason: str, message: str) -> Dict[str, Any]:
    return {"error": {"reason": reason, "message": message}}


def _parse_wait(query: Dict[str, str]) -> Optional[float]:
    raw = query.get("wait")
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return min(max(value, 0.0), 300.0) or None


class _BadRequest(Exception):
    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 1024 * 1024


async def _read_request(reader: asyncio.StreamReader) -> Dict[str, Any]:
    """Parse one HTTP/1.1 request (line + headers + sized body)."""
    try:
        line = await reader.readline()
    except ValueError:
        raise _BadRequest("request line too long") from None
    if not line:
        raise _BadRequest("empty request")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest("malformed request line")
    method, target = parts[0].upper(), parts[1]
    parsed = urllib.parse.urlsplit(target)
    query = dict(urllib.parse.parse_qsl(parsed.query))
    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise _BadRequest("headers too large", status=413)
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _BadRequest("bad Content-Length") from None
        if length > _MAX_BODY_BYTES:
            raise _BadRequest("body too large", status=413)
        body = await reader.readexactly(length)
    return {"method": method, "path": parsed.path, "query": query,
            "headers": headers, "body": body}


async def _respond(writer: asyncio.StreamWriter, status: int,
                   payload: Dict[str, Any],
                   extra_headers: Optional[Dict[str, str]] = None,
                   ) -> None:
    """Write one complete JSON response and flush it."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


# ----------------------------------------------------------------------
# Minimal HTTP client (stdlib-only; loadgen, tests, CLI smoke)
# ----------------------------------------------------------------------
async def http_request(host: str, port: int, method: str, path: str,
                       payload: Any = None,
                       headers: Optional[Dict[str, str]] = None,
                       ) -> Tuple[int, Dict[str, str], Any]:
    """One request against a running server; returns
    ``(status, headers, parsed-JSON body)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        lines = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}",
                 "Connection: close"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if body:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        response_headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        raw = await reader.read()
        if "content-length" in response_headers:
            raw = raw[:int(response_headers["content-length"])]
        parsed = json.loads(raw) if raw else None
        return status, response_headers, parsed
    finally:
        writer.close()


async def run_service(config: ServerConfig,
                      ready: Optional[asyncio.Event] = None) -> None:
    """Start a server and run until cancelled (the CLI entry point).

    Cancellation (SIGINT via ``asyncio.run`` KeyboardInterrupt, or an
    explicit task cancel) triggers the graceful path: drain, resolve,
    checkpoint.
    """
    server = JobServer(config)
    restored = await server.start()
    host, port = await server.start_http()
    print(f"repro serve: listening on http://{host}:{port} "
          f"(workers={config.workers}, queue_depth={config.queue_depth}"
          + (f", restored {restored} queued jobs" if restored else "")
          + ")")
    if ready is not None:
        ready.set()
    try:
        await asyncio.Event().wait()  # until cancelled
    except asyncio.CancelledError:
        pass
    finally:
        summary = await server.shutdown(drain=True)
        print(f"repro serve: drained {summary['drained']} in-flight "
              f"job(s), checkpointed {summary['checkpointed']}")
