"""Tests for the functional dataflow engines (paper Sec. 2.2 / Fig. 2)."""

import numpy as np
import pytest

from repro.baselines.dataflows import (
    DATAFLOWS,
    compare_dataflows,
    spgemm_gustavson,
    spgemm_inner_product,
    spgemm_outer_product,
)
from repro.matrices import generators
from repro.matrices.csr import CsrMatrix


def scipy_product(a, b):
    return (a.to_scipy() @ b.to_scipy()).toarray()


class TestCorrectness:
    @pytest.mark.parametrize("name", list(DATAFLOWS))
    def test_matches_scipy_square(self, name):
        a = generators.uniform_random(40, 40, 4.0, seed=1)
        b = generators.uniform_random(40, 40, 3.0, seed=2)
        c, _ = DATAFLOWS[name](a, b)
        np.testing.assert_allclose(c.to_dense(), scipy_product(a, b),
                                   atol=1e-9)

    @pytest.mark.parametrize("name", list(DATAFLOWS))
    def test_matches_scipy_rectangular(self, name):
        a = generators.uniform_random(25, 40, 3.0, seed=3)
        b = generators.uniform_random(40, 30, 4.0, seed=4)
        c, _ = DATAFLOWS[name](a, b)
        assert c.shape == (25, 30)
        np.testing.assert_allclose(c.to_dense(), scipy_product(a, b),
                                   atol=1e-9)

    @pytest.mark.parametrize("name", list(DATAFLOWS))
    def test_empty_inputs(self, name):
        a = CsrMatrix.from_rows([], 10)
        b = generators.uniform_random(10, 10, 2.0, seed=5)
        c, counts = DATAFLOWS[name](a, b)
        assert c.nnz == 0
        assert counts.effectual_multiplies == 0

    @pytest.mark.parametrize("name", list(DATAFLOWS))
    def test_dimension_check(self, name):
        a = generators.uniform_random(5, 6, 2.0, seed=6)
        b = generators.uniform_random(7, 5, 2.0, seed=7)
        with pytest.raises(ValueError, match="inner dimensions"):
            DATAFLOWS[name](a, b)


class TestWorkCounts:
    def test_effectual_work_identical_across_dataflows(self):
        """The useful multiplies are a property of the inputs, not the
        dataflow (Sec. 2.2)."""
        a = generators.power_law(60, 60, 5.0, seed=8)
        counts = compare_dataflows(a, a)
        effectual = {c.effectual_multiplies for c in counts.values()}
        assert len(effectual) == 1

    def test_inner_product_ineffectual_dominates_on_sparse(self):
        """The paper's core claim: on highly sparse inputs, inner product
        is dominated by ineffectual intersection work."""
        sparse = generators.uniform_random(150, 150, 2.0, seed=9)
        _, counts = spgemm_inner_product(sparse, sparse)
        assert (counts.ineffectual_comparisons
                > 5 * counts.effectual_multiplies)

    def test_inner_product_fine_when_dense(self):
        dense = generators.uniform_random(40, 40, 20.0, seed=10)
        _, counts = spgemm_inner_product(dense, dense)
        assert (counts.ineffectual_comparisons
                < 2.5 * counts.effectual_multiplies)

    def test_outer_product_intermediates_exceed_gustavson(self):
        """Outer product buffers whole partial matrices; Gustavson one
        row's accumulator."""
        a = generators.uniform_random(100, 100, 5.0, seed=11)
        _, outer = spgemm_outer_product(a, a)
        _, gustavson = spgemm_gustavson(a, a)
        assert (outer.intermediate_elements
                > 10 * gustavson.intermediate_elements)

    def test_outer_merge_volume_equals_products(self):
        a = generators.uniform_random(80, 80, 4.0, seed=12)
        _, counts = spgemm_outer_product(a, a)
        assert counts.merge_elements == counts.effectual_multiplies

    def test_gustavson_no_ineffectual_work(self):
        a = generators.uniform_random(80, 80, 4.0, seed=13)
        _, counts = spgemm_gustavson(a, a)
        assert counts.ineffectual_comparisons == 0

    def test_gustavson_intermediate_is_one_row(self):
        a = generators.uniform_random(80, 80, 4.0, seed=14)
        c, counts = spgemm_gustavson(a, a)
        assert counts.intermediate_elements <= int(
            c.row_lengths().max())

    def test_agrees_with_gamma_simulator_flops(self):
        from repro.matrices.stats import flops

        a = generators.uniform_random(60, 60, 4.0, seed=15)
        _, counts = spgemm_gustavson(a, a)
        assert counts.effectual_multiplies == flops(a, a)
