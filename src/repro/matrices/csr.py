"""Compressed sparse matrix containers built from scratch (paper Fig. 1).

``CsrMatrix`` stores a matrix as compressed rows: an offsets array plus
contiguous coordinate/value arrays. ``CscMatrix`` is its by-column twin, used
by the outer-product baselines. Both interoperate with ``scipy.sparse`` for
cross-checking only; all kernels in this repo run on these containers.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.config import ELEMENT_BYTES, OFFSET_BYTES
from repro.matrices.fiber import Fiber


class CsrMatrix:
    """A compressed-sparse-row matrix.

    Args:
        shape: (rows, cols).
        offsets: Row pointer array of length rows + 1.
        coords: Column coordinates, sorted within each row.
        values: Nonzero values aligned with ``coords``.
        check: Validate the structure (disable in hot paths).
    """

    __slots__ = ("shape", "offsets", "coords", "values")

    def __init__(
        self,
        shape: Tuple[int, int],
        offsets: Sequence[int] | np.ndarray,
        coords: Sequence[int] | np.ndarray,
        values: Sequence[float] | np.ndarray,
        check: bool = True,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.coords = np.asarray(coords, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if check:
            self._validate()

    def _validate(self) -> None:
        rows, cols = self.shape
        if rows < 0 or cols < 0:
            raise ValueError(f"negative shape {self.shape}")
        if len(self.offsets) != rows + 1:
            raise ValueError(
                f"offsets length {len(self.offsets)} != rows + 1 ({rows + 1})"
            )
        if len(self.coords) != len(self.values):
            raise ValueError("coords/values length mismatch")
        if rows and (self.offsets[0] != 0 or self.offsets[-1] != len(self.coords)):
            raise ValueError("offsets must span [0, nnz]")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        for row in range(rows):
            start, end = self.offsets[row], self.offsets[row + 1]
            row_coords = self.coords[start:end]
            if len(row_coords):
                if row_coords[0] < 0 or row_coords[-1] >= cols:
                    raise ValueError(f"row {row} has out-of-range coordinates")
                if len(row_coords) > 1 and np.any(np.diff(row_coords) <= 0):
                    raise ValueError(f"row {row} coordinates not strictly increasing")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_rows(rows: Sequence[Fiber], num_cols: int) -> "CsrMatrix":
        """Assemble a matrix from per-row fibers."""
        lengths = np.array([len(r) for r in rows], dtype=np.int64)
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if rows:
            coords = np.concatenate([r.coords for r in rows])
            values = np.concatenate([r.values for r in rows])
        else:
            coords = np.empty(0, dtype=np.int64)
            values = np.empty(0, dtype=np.float64)
        return CsrMatrix((len(rows), num_cols), offsets, coords, values,
                         check=False)

    @staticmethod
    def from_dense(dense: np.ndarray) -> "CsrMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("dense matrix must be 2-D")
        rows = []
        for row in dense:
            nz = np.nonzero(row)[0]
            rows.append(Fiber(nz, row[nz], check=False))
        return CsrMatrix.from_rows(rows, dense.shape[1])

    @staticmethod
    def from_scipy(matrix) -> "CsrMatrix":
        """Convert from any scipy.sparse matrix (cross-check helper)."""
        csr = matrix.tocsr()
        csr.sort_indices()
        return CsrMatrix(
            csr.shape,
            csr.indptr.astype(np.int64),
            csr.indices.astype(np.int64),
            csr.data.astype(np.float64),
            check=False,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.coords)

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    @property
    def nbytes(self) -> int:
        """Footprint in the paper's format: elements plus offsets array."""
        return self.nnz * ELEMENT_BYTES + len(self.offsets) * OFFSET_BYTES

    def row_nnz(self, row: int) -> int:
        return int(self.offsets[row + 1] - self.offsets[row])

    def row_lengths(self) -> np.ndarray:
        """nnz of every row as an array."""
        return np.diff(self.offsets)

    def row(self, row: int) -> Fiber:
        """The compressed fiber for one row."""
        start, end = self.offsets[row], self.offsets[row + 1]
        return Fiber(self.coords[start:end], self.values[start:end],
                     check=False)

    def iter_rows(self) -> Iterator[Tuple[int, Fiber]]:
        for row in range(self.num_rows):
            yield row, self.row(row)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CsrMatrix):
            return NotImplemented
        return bool(
            self.shape == other.shape
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.coords, other.coords)
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self) -> str:
        return (
            f"CsrMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.2e})"
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        for row in range(self.num_rows):
            start, end = self.offsets[row], self.offsets[row + 1]
            dense[row, self.coords[start:end]] = self.values[start:end]
        return dense

    def to_scipy(self):
        """Convert to scipy.sparse.csr_matrix (cross-check helper)."""
        from scipy import sparse

        return sparse.csr_matrix(
            (self.values.copy(), self.coords.copy(), self.offsets.copy()),
            shape=self.shape,
        )

    def transpose(self) -> "CsrMatrix":
        """Return the transpose, still in CSR (i.e., CSC of the original)."""
        rows, cols = self.shape
        counts = np.bincount(self.coords, minlength=cols)
        offsets = np.zeros(cols + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        new_coords = np.empty(self.nnz, dtype=np.int64)
        new_values = np.empty(self.nnz, dtype=np.float64)
        cursor = offsets[:-1].copy()
        for row in range(rows):
            start, end = self.offsets[row], self.offsets[row + 1]
            for idx in range(start, end):
                col = self.coords[idx]
                pos = cursor[col]
                new_coords[pos] = row
                new_values[pos] = self.values[idx]
                cursor[col] += 1
        return CsrMatrix((cols, rows), offsets, new_coords, new_values,
                         check=False)

    def permute_rows(self, permutation: Sequence[int]) -> "CsrMatrix":
        """Return a matrix whose row i is this matrix's row permutation[i]."""
        perm = np.asarray(permutation, dtype=np.int64)
        if len(perm) != self.num_rows:
            raise ValueError(
                f"permutation length {len(perm)} != rows {self.num_rows}"
            )
        if len(np.unique(perm)) != len(perm):
            raise ValueError("permutation contains duplicates")
        rows = [self.row(int(src)) for src in perm]
        return CsrMatrix.from_rows(rows, self.num_cols)

    def select_columns(self, lo: int, hi: int) -> "CsrMatrix":
        """Return the sub-matrix with columns in [lo, hi), same width."""
        rows: List[Fiber] = []
        for row in range(self.num_rows):
            start, end = self.offsets[row], self.offsets[row + 1]
            coords = self.coords[start:end]
            mask = (coords >= lo) & (coords < hi)
            rows.append(
                Fiber(coords[mask], self.values[start:end][mask], check=False)
            )
        return CsrMatrix.from_rows(rows, self.num_cols)


class CscMatrix:
    """A compressed-sparse-column matrix: a thin wrapper over a transposed CSR.

    Used by baselines whose dataflow traverses one operand by columns
    (inner-product's B, outer-product's A).
    """

    __slots__ = ("_transposed",)

    def __init__(self, transposed_csr: CsrMatrix) -> None:
        self._transposed = transposed_csr

    @staticmethod
    def from_csr(matrix: CsrMatrix) -> "CscMatrix":
        return CscMatrix(matrix.transpose())

    @property
    def shape(self) -> Tuple[int, int]:
        rows, cols = self._transposed.shape
        return (cols, rows)

    @property
    def nnz(self) -> int:
        return self._transposed.nnz

    @property
    def nbytes(self) -> int:
        return self._transposed.nbytes

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    def column(self, col: int) -> Fiber:
        """The compressed fiber for one column."""
        return self._transposed.row(col)

    def column_nnz(self, col: int) -> int:
        return self._transposed.row_nnz(col)

    def to_csr(self) -> CsrMatrix:
        return self._transposed.transpose()

    def __repr__(self) -> str:
        return f"CscMatrix(shape={self.shape}, nnz={self.nnz})"
