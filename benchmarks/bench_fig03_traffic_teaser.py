"""Fig. 3: off-chip traffic of IP/OS/S/G/GP on gupta2 and web-Google.

Paper claim: Gamma (especially with preprocessing) incurs the least
traffic on both a relatively dense matrix (gupta2) and a highly sparse
one (web-Google); inner product degrades on the sparse matrix, the
outer-product designs on the denser one.
"""


def test_fig3(run_figure):
    result = run_figure("fig3")
    rows = {(r["matrix"], r["design"]): r["total"] for r in result["rows"]}

    for matrix in ("gupta2", "web-Google"):
        # Gamma with preprocessing beats both outer-product designs.
        assert rows[(matrix, "GP")] < rows[(matrix, "OuterSPACE")]
        assert rows[(matrix, "GP")] < rows[(matrix, "SpArch")]
        # Even without preprocessing, the Gustavson dataflow wins.
        assert rows[(matrix, "G")] < rows[(matrix, "OuterSPACE")]

    # IP suffers on the highly sparse matrix far more than GP does.
    assert rows[("web-Google", "IP")] > 2 * rows[("web-Google", "GP")]
    # Outer-product partial outputs blow up on the denser matrix.
    assert rows[("gupta2", "OuterSPACE")] > 4 * rows[("gupta2", "GP")]
