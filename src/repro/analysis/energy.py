"""Parametric energy model (an extension beyond the paper's evaluation).

The paper argues from area and traffic; energy follows the same structure,
and spMspM's energy is dominated by data movement. This model charges
standard per-operation energies (45 nm-class values from the accelerator
literature: DRAM access energy two orders of magnitude above SRAM, FP ops
in between) against a :class:`~repro.core.result.SimulationResult`'s
counters. Constants are parametric — swap in your technology's numbers.

The headline it produces matches the paper's qualitative story: traffic
reduction is energy reduction, so Gamma's 2.2x traffic advantage over
prior accelerators translates directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import ELEMENT_BYTES, LINE_BYTES
from repro.core.result import SimulationResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants (picojoules), 45 nm-class defaults.

    Attributes:
        dram_pj_per_byte: Off-chip access energy per byte.
        sram_pj_per_access: FiberCache bank access (one line).
        fp_multiply_pj: 64-bit floating-point multiply.
        fp_add_pj: 64-bit floating-point add.
        merger_pj_per_element: Comparator-tree traversal per element.
        static_pj_per_cycle: Chip-wide leakage + clocking per cycle.
    """

    dram_pj_per_byte: float = 20.0
    sram_pj_per_access: float = 6.0
    fp_multiply_pj: float = 15.0
    fp_add_pj: float = 5.0
    merger_pj_per_element: float = 2.0
    static_pj_per_cycle: float = 50.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy by component, in picojoules."""

    dram_pj: float
    sram_pj: float
    compute_pj: float
    static_pj: float

    @property
    def total_pj(self) -> float:
        return (self.dram_pj + self.sram_pj + self.compute_pj
                + self.static_pj)

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    def fractions(self) -> Dict[str, float]:
        total = max(self.total_pj, 1e-12)
        return {
            "dram": self.dram_pj / total,
            "sram": self.sram_pj / total,
            "compute": self.compute_pj / total,
            "static": self.static_pj / total,
        }


def estimate_energy(
    result: SimulationResult,
    model: Optional[EnergyModel] = None,
) -> EnergyBreakdown:
    """Charge a simulation's counters against the energy model.

    SRAM accesses are estimated from the data the PEs stream through the
    FiberCache: every consumed input element is read from a bank, every
    partial output element is written to one (line-granular accesses).
    """
    model = model or EnergyModel()
    dram = result.total_traffic * model.dram_pj_per_byte
    # Input elements read through FiberCache banks + partials written.
    streamed_lines = result.flops * ELEMENT_BYTES / LINE_BYTES
    partial_lines = (
        result.traffic_bytes.get("partial_write", 0) / LINE_BYTES)
    sram = (streamed_lines + partial_lines) * model.sram_pj_per_access
    compute = result.flops * (
        model.fp_multiply_pj + model.fp_add_pj
        + model.merger_pj_per_element)
    static = result.cycles * model.static_pj_per_cycle
    return EnergyBreakdown(
        dram_pj=dram, sram_pj=sram, compute_pj=compute, static_pj=static)


def energy_per_flop_pj(result: SimulationResult,
                       model: Optional[EnergyModel] = None) -> float:
    """Average energy per multiply-accumulate."""
    breakdown = estimate_energy(result, model)
    return breakdown.total_pj / max(1, result.flops)
