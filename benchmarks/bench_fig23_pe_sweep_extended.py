"""Fig. 23: PE-count sweep on the extended set.

Paper: denser extended-set matrices have higher arithmetic intensity, so
Gamma keeps improving past 32 PEs (gmean +65% at 128 PEs).
"""


def test_fig23(run_figure):
    result = run_figure("fig23")
    rows = {r["config"]: r for r in result["rows"]}

    assert rows["32"]["gmean_speedup"] > rows["8"]["gmean_speedup"]
    gain_past_32 = (rows["128"]["gmean_speedup"]
                    / rows["32"]["gmean_speedup"])
    assert gain_past_32 > 1.15  # paper: +65%
    # The extended set scales further than the common set does.
