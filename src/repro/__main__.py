"""Command-line interface: list and run the reproduced experiments.

Usage::

    python -m repro list                 # every table/figure + its claim
    python -m repro run fig12            # regenerate one artifact
    python -m repro run fig12 table2 ... # several
    python -m repro suite                # the scaled matrix suites
    python -m repro export out/ fig12    # write .txt/.csv/.json artifacts
    python -m repro sweep                # pre-warm the disk cache in parallel
    python -m repro sweep --set common --models gamma,mkl --workers 8
    python -m repro sweep --metrics --trace-dir out/   # telemetry-enabled
    python -m repro report out/                        # render run report
    python -m repro figures --out figs/                # versioned figure set
    python -m repro figures --check                    # drift-check vs goldens
    python -m repro profile gamma wiki-Vote            # cycle-level report
    python -m repro profile gamma gupta2 --variant full --trace out.jsonl
    python -m repro profile gamma gupta2 --perfetto out.trace.json
    python -m repro serve --port 8077 --workers 4      # SpGEMM job API
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _cmd_list() -> int:
    from repro.experiments import EXPERIMENTS

    width = max(len(e.experiment_id) for e in EXPERIMENTS)
    for experiment in EXPERIMENTS:
        print(f"{experiment.experiment_id:<{width}}  {experiment.title}")
        print(f"{'':<{width}}  paper: {experiment.paper_claim}")
    return 0


def _cmd_run(ids: List[str]) -> int:
    from repro.experiments import all_experiment_ids, run_experiment

    if not ids:
        print("no experiment ids given; try: "
              f"{', '.join(all_experiment_ids())}", file=sys.stderr)
        return 2
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print(result["table"])
        print()
    return 0


def _cmd_export(directory: str, ids: List[str]) -> int:
    from repro.experiments import all_experiment_ids
    from repro.experiments.export import export_experiment

    targets = ids or all_experiment_ids()
    for experiment_id in targets:
        written = export_experiment(experiment_id, directory)
        for path in written:
            print(f"wrote {path}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.engine import (
        DEFAULT_MODELS,
        DEFAULT_VARIANTS,
        SweepPolicy,
        pending_points,
        plan_sweep,
        run_sweep,
    )
    from repro.matrices import suite
    from repro.obs import MetricsRegistry

    if args.matrices:
        matrices = [name for token in args.matrices
                    for name in token.split(",") if name]
        for name in matrices:
            try:
                suite.spec_by_name(name)
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 2
    elif args.set == "common":
        matrices = suite.common_set_names()
    elif args.set == "extended":
        matrices = suite.extended_set_names()
    else:
        matrices = suite.common_set_names() + suite.extended_set_names()
    models = (args.models.split(",") if args.models
              else list(DEFAULT_MODELS))
    models = [_apply_engine(model, args.engine) for model in models]
    variants = (args.variants.split(",") if args.variants
                else list(DEFAULT_VARIANTS))
    masks = args.masks.split(",") if args.masks else ["none"]
    try:
        points = plan_sweep(matrices, models=models, variants=variants,
                            masks=masks, operand=args.operand)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    misses = pending_points(points)
    print(f"sweep: {len(points)} points planned, "
          f"{len(points) - len(misses)} cached, {len(misses)} to run")
    if args.dry_run:
        for point in misses:
            print(f"  {point.label()}")
        return 0
    done = {"count": 0}

    def label_of(point):
        return point.label()

    def progress(point, record):
        done["count"] += 1
        print(f"[{done['count']}/{len(points)}] {label_of(point)}  "
              f"cycles={record.cycles:.0f}")

    computed_wall = {"total": 0.0}

    def executed(point, record, wall_seconds):
        computed_wall["total"] += wall_seconds
        print(f"  computed {label_of(point)}  "
              f"wall={wall_seconds:.2f}s  events={record.num_tasks}")

    policy = SweepPolicy(timeout_seconds=args.timeout,
                         max_retries=args.max_retries)
    metrics = MetricsRegistry()
    if args.trace_dir:
        from repro.obs import report, spans
        spans.enable(report.span_directory(args.trace_dir))
    sweep_start = time.perf_counter()
    try:
        result = run_sweep(points, workers=args.workers,
                           serial=args.serial,
                           on_result=progress, on_executed=executed,
                           policy=policy, metrics=metrics,
                           resume=args.resume,
                           collect_metrics=args.metrics)
    finally:
        if args.trace_dir:
            spans.disable()
    sweep_wall = time.perf_counter() - sweep_start
    if args.trace_dir:
        paths = report.finalize_sweep_telemetry(args.trace_dir, result)
        for kind, path in sorted(paths.items()):
            print(f"telemetry: wrote {kind} to {path}")
    from repro.engine import diskcache
    store = ("the disk cache" if diskcache.cache_enabled()
             else "memory only (disk cache disabled)")
    summary = (f"sweep complete: {len(result)}/{len(points)} records in "
               f"{store}; wall {sweep_wall:.2f}s "
               f"({computed_wall['total']:.2f}s in computed points)")
    fault_counts = {
        name: int(value)
        for name, value in sorted(
            metrics.counters_with_prefix("sweep/").items())
        if name in ("retries", "timeouts", "crashes", "errors",
                    "quarantined") and value
    }
    if fault_counts:
        summary += "; faults: " + ", ".join(
            f"{name}={value}" for name, value in fault_counts.items())
    trajectory = _hotpath_trajectory()
    if trajectory:
        summary += f"; hot-path wall before/after: {trajectory}"
    print(summary)
    if result.quarantined:
        print(f"QUARANTINED {len(result.quarantined)} point(s) — "
              "partial results; re-run with --resume to skip them, or "
              "without it to retry:", file=sys.stderr)
        for failure in result.quarantined.values():
            print(f"  {failure.point.label()}  {failure.reason} "
                  f"after {failure.attempts} attempts  {failure.error}",
                  file=sys.stderr)
        return 3
    return 0


def _hotpath_trajectory() -> str:
    """The recorded before/after aggregate from BENCH_hotpath.json, if any.

    ``scripts/bench_hotpath.py --combine`` pins the hot-path wall-clock
    trajectory of the simulator kernels; surfacing it next to the live
    sweep wall keeps perf regressions visible from the CLI.
    """
    import json
    from pathlib import Path

    candidates = [
        Path("BENCH_hotpath.json"),
        Path(__file__).resolve().parents[2] / "BENCH_hotpath.json",
    ]
    for path in candidates:
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        comparison = report.get("comparison") or {}
        before = comparison.get("before_wall_s_total")
        after = comparison.get("after_wall_s_total")
        speedup = comparison.get("aggregate_speedup")
        if before is None or after is None:
            continue
        text = f"{before:.2f}s -> {after:.2f}s"
        if speedup:
            text += f" ({speedup:.2f}x)"
        return text
    return ""


def _apply_engine(model: str, engine: str) -> str:
    """Resolve ``--engine`` to a registry model name.

    Only the Gamma simulator has selectable engines; other models pass
    through untouched. ``batched`` is the production default (``gamma``),
    ``ref`` the event-ordered reference core (``gamma-ref``).
    """
    from repro.engine.registry import GAMMA_ENGINES, GAMMA_MODELS

    if model in GAMMA_MODELS:
        return GAMMA_ENGINES[engine]
    return model


def _cmd_profile(args) -> int:
    from repro.matrices import suite
    from repro.obs import profile_point, render_report

    try:
        suite.spec_by_name(args.matrix)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    model = _apply_engine(args.model, args.engine)
    try:
        run = profile_point(args.matrix, model=model,
                            variant=args.variant, mask=args.mask,
                            operand=args.operand)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(run.record, run.trace, run.wall_seconds))
    if args.trace:
        lines = run.trace.to_jsonl(
            args.trace, model=model, matrix=args.matrix,
            variant=args.variant)
        print(f"wrote {lines} trace lines to {args.trace}")
    if args.perfetto:
        from repro.obs import (
            chrome_trace_from_execution_trace,
            write_chrome_trace,
        )
        trace = chrome_trace_from_execution_trace(
            run.trace, label=f"{model}:{args.matrix}")
        write_chrome_trace(args.perfetto, trace)
        print(f"wrote Perfetto trace ({len(trace['traceEvents'])} "
              f"events) to {args.perfetto}")
    return 0


def _cmd_report(args) -> int:
    from repro.obs import generate_report

    try:
        paths = generate_report(args.directory,
                                include_timing=args.include_timing,
                                output_dir=args.output,
                                include_figures=not args.no_figures)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for kind, path in sorted(paths.items()):
        print(f"wrote {kind} report to {path}")
    return 0


def _cmd_figures(args) -> int:
    from repro.figures import (
        FIGURE_GENERATORS,
        GOLDEN_FIGURES_DIR,
        SCOPES,
        check_figures,
        generate_figures,
    )

    if args.list:
        width = max(len(g.figure_id) for g in FIGURE_GENERATORS)
        for generator in FIGURE_GENERATORS:
            print(f"{generator.figure_id:<{width}}  {generator.title} "
                  f"({generator.paper_ref})")
        return 0
    only = args.only or None
    if only:
        known = {g.figure_id for g in FIGURE_GENERATORS}
        unknown = [figure_id for figure_id in only
                   if figure_id not in known]
        if unknown:
            print(f"error: unknown figure id(s): {', '.join(unknown)}; "
                  f"see 'repro figures --list'", file=sys.stderr)
            return 2
    if args.scope not in SCOPES:
        print(f"error: unknown scope {args.scope!r}; "
              f"choose from {', '.join(sorted(SCOPES))}", file=sys.stderr)
        return 2
    if args.check:
        golden = args.golden or GOLDEN_FIGURES_DIR
        drifts = check_figures(golden_dir=golden, only=only,
                               workdir=args.out)
        if drifts:
            print(f"figure drift against goldens in {golden}:",
                  file=sys.stderr)
            for drift in drifts:
                print(f"  {drift}", file=sys.stderr)
            return 1
        print(f"figures match goldens in {golden}")
        return 0
    out_dir = args.out or "figures"
    manifest = generate_figures(out_dir, scope=args.scope, only=only)
    for entry in manifest["figures"]:
        print(f"wrote {entry['id']}: {entry['spec']} + {entry['data']} "
              f"({entry['rows']} rows)")
    print(f"wrote manifest for {manifest['num_figures']} figure(s) "
          f"[scope {manifest['scope']}, inputs "
          f"{manifest['inputs_fingerprint'][:12]}] to {out_dir}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import ServerConfig, run_service

    config = ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth,
        per_client_limit=args.per_client_limit,
        timeout_seconds=args.timeout,
        l1_capacity=args.l1_capacity,
        drain_seconds=args.drain_seconds,
        checkpoint_tag=args.checkpoint_tag)
    if args.trace_dir:
        from repro.obs import report, spans
        spans.enable(report.span_directory(args.trace_dir))
    try:
        asyncio.run(run_service(config))
    except KeyboardInterrupt:
        pass  # run_service's finally already drained and checkpointed
    finally:
        if args.trace_dir:
            from repro.obs import spans
            spans.disable()
    return 0


def _cmd_suite() -> int:
    from repro.experiments import run_experiment

    for table in ("table3", "table4"):
        print(run_experiment(table)["table"])
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Gamma (ASPLOS'21) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list every reproduced table/figure")
    run_parser = sub.add_parser("run", help="regenerate artifacts")
    run_parser.add_argument("ids", nargs="*", help="experiment ids")
    export_parser = sub.add_parser(
        "export", help="write artifacts as .txt/.csv/.json")
    export_parser.add_argument("directory")
    export_parser.add_argument("ids", nargs="*",
                               help="experiment ids (default: all)")
    sub.add_parser("suite", help="print the scaled matrix suites")
    sweep_parser = sub.add_parser(
        "sweep",
        help="pre-warm the result cache with a parallel model sweep")
    sweep_parser.add_argument(
        "--set", choices=("common", "extended", "all"), default="all",
        help="matrix suite to sweep (default: all)")
    sweep_parser.add_argument(
        "--matrices", nargs="*", metavar="NAME",
        help="explicit suite matrix names, space- or comma-separated "
             "(overrides --set)")
    sweep_parser.add_argument(
        "--models", metavar="M1,M2",
        help="comma-separated registry models "
             "(default: gamma,ip,outerspace,sparch,mkl)")
    sweep_parser.add_argument(
        "--variants", metavar="V1,V2",
        help="comma-separated Gamma preprocessing variants "
             "(default: none,full)")
    sweep_parser.add_argument(
        "--masks", metavar="M1,M2",
        help="comma-separated mask modes for the Gamma SpGEMM points: "
             "none, structural, complement (default: none); masked "
             "points run C<M> = A*B with the deterministic default "
             "mask and the plain row dataflow")
    sweep_parser.add_argument(
        "--operand", default="matrix",
        choices=("matrix", "sparse-vector", "dense-vector"),
        help="vector operand shape for gamma-spmv points "
             "(default: matrix, which resolves to sparse-vector)")
    sweep_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: cpu count)")
    sweep_parser.add_argument(
        "--serial", action="store_true",
        help="run misses in-process (debugging/determinism checks)")
    sweep_parser.add_argument(
        "--dry-run", action="store_true",
        help="plan and report, but run nothing")
    sweep_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry any point exceeding this wall clock "
             "(parallel mode; default: no timeout)")
    sweep_parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries (with exponential backoff) before a failing "
             "point is quarantined (default: 2)")
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="pick up an interrupted sweep: skip cached results and "
             "previously quarantined points instead of retrying them")
    sweep_parser.add_argument(
        "--metrics", action="store_true",
        help="collect cycle-level MetricsRegistry blobs on gamma "
             "points (recomputes cached records lacking one)")
    sweep_parser.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="record cross-process telemetry and write run_log.jsonl, "
             "trace.json (Perfetto), and sweep.json into DIR")
    sweep_parser.add_argument(
        "--engine", choices=("batched", "ref"), default="batched",
        help="Gamma simulator core: the data-oriented epoch engine "
             "(default) or the event-ordered reference (bit-identical, "
             "slower; cached as the separate gamma-ref model)")
    report_parser = sub.add_parser(
        "report",
        help="render report.md + report.html from a sweep --trace-dir")
    report_parser.add_argument(
        "directory", help="sweep telemetry directory (has sweep.json)")
    report_parser.add_argument(
        "--include-timing", action="store_true",
        help="append the execution/timing appendix (not deterministic "
             "across serial vs parallel runs)")
    report_parser.add_argument(
        "--output", metavar="DIR", default=None,
        help="write reports here instead of into the sweep directory")
    report_parser.add_argument(
        "--no-figures", action="store_true",
        help="skip the embedded figure set (figures/ subdirectory with "
             "Vega-Lite specs + CSVs derived from the sweep summary)")
    figures_parser = sub.add_parser(
        "figures",
        help="emit the paper's figures as versioned Vega-Lite + CSV "
             "artifacts, or drift-check them against committed goldens")
    figures_parser.add_argument(
        "--out", metavar="DIR", default=None,
        help="output directory (default: figures/; with --check, a "
             "scratch directory for the regenerated set)")
    figures_parser.add_argument(
        "--scope", default="quick",
        help="matrix scope: quick, common, extended, or paper "
             "(default: quick — the committed golden scope)")
    figures_parser.add_argument(
        "--only", action="append", metavar="ID",
        help="restrict to one figure id (repeatable); see --list")
    figures_parser.add_argument(
        "--check", action="store_true",
        help="regenerate and byte-compare against the committed goldens; "
             "exit 1 naming each drifted figure")
    figures_parser.add_argument(
        "--golden", metavar="DIR", default=None,
        help="golden directory for --check "
             "(default: tests/golden/figures)")
    figures_parser.add_argument(
        "--list", action="store_true",
        help="list the figure catalog and exit")
    profile_parser = sub.add_parser(
        "profile",
        help="run one point instrumented and print the cycle-level report")
    profile_parser.add_argument(
        "model", help="registry model (metrics: gamma only)")
    profile_parser.add_argument("matrix", help="suite matrix name")
    profile_parser.add_argument(
        "--variant", default="none",
        help="Gamma preprocessing variant (default: none)")
    profile_parser.add_argument(
        "--mask", default="none",
        choices=("none", "structural", "complement"),
        help="masked product C<M> = A*B with the deterministic default "
             "mask (Gamma SpGEMM engines only; default: none)")
    profile_parser.add_argument(
        "--operand", default="matrix",
        choices=("matrix", "sparse-vector", "dense-vector"),
        help="vector operand shape for gamma-spmv (default: matrix)")
    profile_parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="also export the task event stream as JSONL")
    profile_parser.add_argument(
        "--perfetto", metavar="PATH", default=None,
        help="also export a Chrome trace-event JSON (PE lanes + phase "
             "windows) loadable at ui.perfetto.dev")
    profile_parser.add_argument(
        "--engine", choices=("batched", "ref"), default="batched",
        help="Gamma simulator core: data-oriented epoch engine "
             "(default) or the event-ordered reference")

    serve_parser = sub.add_parser(
        "serve",
        help="run the SpGEMM job API (POST /jobs, GET /jobs/<id>)")
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8077,
        help="listen port (0 = ephemeral; default: 8077)")
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes; 0 runs jobs inline without kill-based "
             "timeouts (default: 2)")
    serve_parser.add_argument(
        "--queue-depth", type=int, default=64,
        help="max distinct in-flight executions before 503 (default: 64)")
    serve_parser.add_argument(
        "--per-client-limit", type=int, default=16,
        help="max unfinished jobs per client before 429 (default: 16)")
    serve_parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="kill and retry any job exceeding this wall clock "
             "(default: 60)")
    serve_parser.add_argument(
        "--l1-capacity", type=int, default=256,
        help="in-process LRU result entries (default: 256)")
    serve_parser.add_argument(
        "--drain-seconds", type=float, default=30.0,
        help="graceful-shutdown budget for in-flight jobs (default: 30)")
    serve_parser.add_argument(
        "--checkpoint-tag", default="default",
        help="queue-checkpoint name; a restart with the same tag "
             "resumes interrupted jobs (default: 'default')")
    serve_parser.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="record serve/store span telemetry into DIR")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.ids)
    if args.command == "export":
        return _cmd_export(args.directory, args.ids)
    if args.command == "suite":
        return _cmd_suite()
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
