"""Fig. 22: PE-count sweep on the common set.

Paper: the common set is memory-bound at 32 PEs — performance stops
scaling beyond that, and traffic is insensitive to PE count.
"""


def test_fig22(run_figure):
    result = run_figure("fig22")
    rows = {r["config"]: r for r in result["rows"]}

    # More PEs never hurt much, and scaling saturates by 32.
    assert rows["32"]["gmean_speedup"] >= rows["8"]["gmean_speedup"]
    gain_past_32 = (rows["128"]["gmean_speedup"]
                    / rows["32"]["gmean_speedup"])
    assert gain_past_32 < 1.35  # memory-bound: little headroom
    # Traffic is a property of the cache, not the PE count.
    traffics = [r["mean_traffic"] for r in rows.values()]
    assert max(traffics) / min(traffics) < 1.4
