"""Lockstep differential tests: batched FiberCache vs the scalar oracle.

The batched range primitives (the tentpole of the array-kernel rewrite)
must be *bit-identical* to replaying the scalar primitives line by line.
:class:`~repro.core.fibercache_ref.ReferenceFiberCache` is that scalar
reference — the pre-rewrite dict-of-sets implementation, with its range
methods defined as per-line replay. Hypothesis drives both caches through
the same random interleavings of range operations and asserts, after
every single call:

* identical return values (miss lines, dirty-eviction deltas),
* identical aggregate stats and per-category occupancy / miss lines,
* identical per-bank access / hit / miss tables,
* identical last-eviction victims (address, category, dirtiness),
* identical residency and per-line replacement state for every address.

Run on a tiny multi-way cache so sets overflow constantly and the
SRRIP-aged eviction path dominates; a second config makes ranges span
more lines than there are sets, forcing ``fetch_read_range`` off its
fused single pass onto the two-pass fallback.
"""

from hypothesis import given, settings, strategies as st

from repro.config import GammaConfig
from repro.core.fibercache import FiberCache
from repro.core.fibercache_ref import ReferenceFiberCache

#: 4 sets x 4 ways: every long interleaving overflows sets repeatedly.
TINY = GammaConfig(
    num_pes=2, fibercache_bytes=1024, fibercache_ways=4,
    fibercache_banks=4,
)

#: 2 sets x 2 ways: ranges of >2 lines wrap sets, so the fused
#: fetch+read pass must fall back to explicit fetch-then-read passes.
WRAP = GammaConfig(
    num_pes=2, fibercache_bytes=256, fibercache_ways=2,
    fibercache_banks=2,
)

CATEGORIES = st.sampled_from(["B", "partial"])

RANGE_OPS = st.one_of(
    st.tuples(st.just("fetch_range"), st.integers(0, 40),
              st.integers(1, 20), CATEGORIES),
    st.tuples(st.just("read_range"), st.integers(0, 40),
              st.integers(1, 20), CATEGORIES),
    st.tuples(st.just("fetch_read_range"), st.integers(0, 40),
              st.integers(1, 20), CATEGORIES),
    st.tuples(st.just("write_range"), st.integers(0, 40),
              st.integers(1, 20), st.just("partial")),
    st.tuples(st.just("consume_range"), st.integers(0, 40),
              st.integers(1, 20), st.just("partial")),
    st.tuples(st.just("invalidate"), st.integers(0, 60),
              st.just(1), st.just("partial")),
)

MAX_ADDR = 64


def _apply(cache, op):
    kind, lo, span, category = op
    if kind == "invalidate":
        return cache.invalidate(lo)
    hi = lo + span
    if kind == "consume_range":
        return cache.consume_range(lo, hi)
    return getattr(cache, kind)(lo, hi, category)


def _stats_dict(cache):
    stats = cache.stats
    return {
        "fetch_hits": stats.fetch_hits,
        "fetch_misses": stats.fetch_misses,
        "read_hits": stats.read_hits,
        "read_misses": stats.read_misses,
        "writes": stats.writes,
        "consume_hits": stats.consume_hits,
        "consume_misses": stats.consume_misses,
        "dirty_evictions": stats.dirty_evictions,
        "clean_evictions": stats.clean_evictions,
    }


def _line_states(cache):
    states = {}
    for addr in range(MAX_ADDR):
        view = cache.line_state(addr)
        if view is not None:
            states[addr] = (view.category, view.priority, view.rrpv,
                            view.dirty)
    return states


def assert_lockstep(batched, reference, context):
    assert _stats_dict(batched) == _stats_dict(reference), context
    assert batched.occupancy == reference.occupancy, context
    assert batched.miss_lines == reference.miss_lines, context
    assert list(batched.bank_accesses) == list(reference.bank_accesses), \
        context
    assert list(batched.bank_hits) == list(reference.bank_hits), context
    assert list(batched.bank_misses) == list(reference.bank_misses), context
    assert (batched.last_victim_addr
            == reference.last_victim_addr), context
    assert (batched.last_victim_category
            == reference.last_victim_category), context
    assert (batched.last_victim_was_dirty
            == reference.last_victim_was_dirty), context
    assert _line_states(batched) == _line_states(reference), context


class TestLockstep:
    @given(st.lists(RANGE_OPS, max_size=80))
    @settings(max_examples=120, deadline=None)
    def test_range_interleavings_tiny(self, operations):
        batched = FiberCache(TINY)
        reference = ReferenceFiberCache(TINY)
        for step, op in enumerate(operations):
            assert _apply(batched, op) == _apply(reference, op), (step, op)
            assert_lockstep(batched, reference, (step, op))

    @given(st.lists(RANGE_OPS, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_range_interleavings_force_fused_fallback(self, operations):
        batched = FiberCache(WRAP)
        reference = ReferenceFiberCache(WRAP)
        for step, op in enumerate(operations):
            assert _apply(batched, op) == _apply(reference, op), (step, op)
            assert_lockstep(batched, reference, (step, op))

    @given(st.lists(
        st.tuples(st.just("fetch_read_range"), st.integers(0, 40),
                  st.integers(1, 4), st.just("B")),
        min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_fused_fetch_read_matches_two_passes(self, operations):
        """The fused single pass == explicit fetch pass then read pass."""
        fused = FiberCache(TINY)
        two_pass = FiberCache(TINY)
        for _, lo, span, category in operations:
            hi = lo + span
            got = fused.fetch_read_range(lo, hi, category)
            misses, dirty = two_pass.fetch_range(lo, hi, category)
            read_misses, read_dirty = two_pass.read_range(lo, hi, category)
            assert read_misses == 0  # the fetch pass made every read hit
            assert got == (misses, dirty + read_dirty)
        assert_lockstep(fused, two_pass, "fused vs two-pass")

    @given(st.lists(RANGE_OPS, max_size=40), st.lists(RANGE_OPS, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_lockstep_is_order_sensitive_but_deterministic(self, ops_a,
                                                           ops_b):
        """Same ops -> same state, for both implementations independently."""
        for ops in (ops_a, ops_b):
            first = FiberCache(TINY)
            second = FiberCache(TINY)
            for op in ops:
                assert _apply(first, op) == _apply(second, op)
            assert_lockstep(first, second, "replay determinism")
