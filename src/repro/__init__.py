"""Gamma reproduction: Gustavson-algorithm spMspM accelerator simulation.

Reproduces "Gamma: Leveraging Gustavson's Algorithm to Accelerate Sparse
Matrix Multiplication" (Zhang, Attaluri, Emer, Sanchez — ASPLOS 2021).

Quick start::

    from repro import GammaSimulator, GammaConfig
    from repro.matrices import generators

    a = generators.power_law(5000, 5000, 6.0, seed=1)
    result = GammaSimulator(GammaConfig()).run(a, a)
    print(result.output, result.cycles, result.normalized_traffic)
"""

from repro.config import CpuConfig, GammaConfig, PreprocessConfig
from repro.core import GammaSimulator, SimulationResult, multiply
from repro.matrices import CsrMatrix, Fiber
from repro.preprocessing import preprocess

__version__ = "1.0.0"

__all__ = [
    "CpuConfig",
    "CsrMatrix",
    "Fiber",
    "GammaConfig",
    "GammaSimulator",
    "PreprocessConfig",
    "SimulationResult",
    "multiply",
    "preprocess",
    "__version__",
]
