"""Experiment harness: every paper table and figure, regenerable."""

from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    all_experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.engine import RunRecord, SweepPoint, plan_sweep, run_sweep
from repro.experiments.runner import (
    MODEL_SCALE,
    RUNNER,
    ExperimentRunner,
    scaled_cpu_config,
    scaled_gamma_config,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentRunner",
    "MODEL_SCALE",
    "RUNNER",
    "RunRecord",
    "SweepPoint",
    "all_experiment_ids",
    "get_experiment",
    "plan_sweep",
    "run_experiment",
    "run_sweep",
    "scaled_cpu_config",
    "scaled_gamma_config",
]
