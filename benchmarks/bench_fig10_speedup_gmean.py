"""Fig. 10: gmean speedup over MKL on the common set.

Paper: Gamma-with-preprocessing is 38x over MKL, 2.1x over SpArch, and
7.7x over OuterSPACE; preprocessing adds ~16%.
"""


def test_fig10(run_figure):
    result = run_figure("fig10")
    speedups = {r["design"]: r["gmean_speedup"] for r in result["rows"]}

    # Every accelerator beats the CPU baseline comfortably.
    assert speedups["OuterSPACE"] > 2
    assert speedups["SpArch"] > speedups["OuterSPACE"]
    # Gamma beats both prior accelerators.
    assert speedups["G"] > speedups["SpArch"]
    assert speedups["GP"] >= speedups["G"]
    # Order-of-magnitude checks against the paper's bars.
    assert 10 < speedups["GP"] < 120  # paper: 38x
    assert speedups["GP"] / speedups["OuterSPACE"] > 3  # paper: 7.7x
