"""Command-line interface: list and run the reproduced experiments.

Usage::

    python -m repro list                 # every table/figure + its claim
    python -m repro run fig12            # regenerate one artifact
    python -m repro run fig12 table2 ... # several
    python -m repro suite                # the scaled matrix suites
    python -m repro export out/ fig12    # write .txt/.csv/.json artifacts
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_list() -> int:
    from repro.experiments import EXPERIMENTS

    width = max(len(e.experiment_id) for e in EXPERIMENTS)
    for experiment in EXPERIMENTS:
        print(f"{experiment.experiment_id:<{width}}  {experiment.title}")
        print(f"{'':<{width}}  paper: {experiment.paper_claim}")
    return 0


def _cmd_run(ids: List[str]) -> int:
    from repro.experiments import all_experiment_ids, run_experiment

    if not ids:
        print("no experiment ids given; try: "
              f"{', '.join(all_experiment_ids())}", file=sys.stderr)
        return 2
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print(result["table"])
        print()
    return 0


def _cmd_export(directory: str, ids: List[str]) -> int:
    from repro.experiments import all_experiment_ids
    from repro.experiments.export import export_experiment

    targets = ids or all_experiment_ids()
    for experiment_id in targets:
        written = export_experiment(experiment_id, directory)
        for path in written:
            print(f"wrote {path}")
    return 0


def _cmd_suite() -> int:
    from repro.experiments import run_experiment

    for table in ("table3", "table4"):
        print(run_experiment(table)["table"])
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Gamma (ASPLOS'21) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list every reproduced table/figure")
    run_parser = sub.add_parser("run", help="regenerate artifacts")
    run_parser.add_argument("ids", nargs="*", help="experiment ids")
    export_parser = sub.add_parser(
        "export", help="write artifacts as .txt/.csv/.json")
    export_parser.add_argument("directory")
    export_parser.add_argument("ids", nargs="*",
                               help="experiment ids (default: all)")
    sub.add_parser("suite", help="print the scaled matrix suites")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.ids)
    if args.command == "export":
        return _cmd_export(args.directory, args.ids)
    if args.command == "suite":
        return _cmd_suite()
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
