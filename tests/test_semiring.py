"""Tests for semiring-generalized spMspM."""

import numpy as np
import pytest

from repro.config import GammaConfig
from repro.core import GammaSimulator
from repro.matrices import generators
from repro.matrices.csr import CsrMatrix
from repro.matrices.fiber import Fiber, linear_combine
from repro.semiring import (
    ARITHMETIC,
    BOOLEAN,
    MAX_MIN,
    MAX_TIMES,
    STANDARD_SEMIRINGS,
    TROPICAL_MIN,
    by_name,
)


class TestSemiringDefinitions:
    _DOMAIN = {
        "arithmetic": (0.5, 1.0, 3.0),
        "boolean": (0.0, 1.0),  # boolean operates on {0, 1} only
        "tropical_min": (0.5, 1.0, 3.0),
        "max_min": (0.5, 1.0, 3.0),
        "max_times": (0.5, 0.9, 1.0),
    }

    @pytest.mark.parametrize("semiring", STANDARD_SEMIRINGS.values(),
                             ids=list(STANDARD_SEMIRINGS))
    def test_identities(self, semiring):
        for x in self._DOMAIN[semiring.name]:
            assert semiring.add(x, semiring.zero) == x
            assert semiring.mul(x, semiring.one) == x

    @pytest.mark.parametrize("semiring", STANDARD_SEMIRINGS.values(),
                             ids=list(STANDARD_SEMIRINGS))
    def test_commutativity(self, semiring):
        domain = self._DOMAIN[semiring.name]
        for x in domain:
            for y in domain:
                assert semiring.add(x, y) == semiring.add(y, x)
                assert semiring.mul(x, y) == semiring.mul(y, x)

    def test_lookup(self):
        assert by_name("tropical_min") is TROPICAL_MIN
        with pytest.raises(KeyError, match="unknown semiring"):
            by_name("quantum")

    def test_only_arithmetic_flagged(self):
        assert ARITHMETIC.is_arithmetic
        assert not BOOLEAN.is_arithmetic


class TestSemiringCombine:
    def test_boolean_or(self):
        a = Fiber([0, 2], [1.0, 1.0])
        b = Fiber([2, 3], [1.0, 1.0])
        out = linear_combine([a, b], [1.0, 1.0], semiring=BOOLEAN)
        assert list(out) == [(0, 1.0), (2, 1.0), (3, 1.0)]

    def test_tropical_min_plus(self):
        a = Fiber([1, 2], [5.0, 7.0])
        b = Fiber([2], [1.0])
        # scales act through mul = +: scale 2 means path extension by 2.
        out = linear_combine([a, b], [2.0, 3.0], semiring=TROPICAL_MIN)
        assert dict(out) == {1: 7.0, 2: min(9.0, 4.0)}

    def test_arithmetic_semiring_matches_default(self):
        rng = np.random.default_rng(1)
        fibers = [
            Fiber(np.sort(rng.choice(30, 8, replace=False)),
                  rng.random(8))
            for _ in range(4)
        ]
        scales = rng.random(4).tolist()
        default = linear_combine(fibers, scales)
        explicit = linear_combine(fibers, scales, semiring=ARITHMETIC)
        np.testing.assert_allclose(default.values, explicit.values)


class TestSemiringSimulation:
    def _graph(self, seed=3):
        base = generators.uniform_random(40, 40, 3.0, seed=seed)
        dense = (base.to_dense() > 0).astype(float)
        return CsrMatrix.from_dense(dense)

    def test_boolean_square_matches_reachability(self):
        adj = self._graph()
        sim = GammaSimulator(GammaConfig(), semiring=BOOLEAN)
        result = sim.run(adj, adj)
        expected = ((adj.to_dense() @ adj.to_dense()) > 0).astype(float)
        np.testing.assert_array_equal(result.output.to_dense(), expected)

    def test_tropical_square_matches_minplus(self):
        rng = np.random.default_rng(5)
        dense = rng.random((25, 25)) * (rng.random((25, 25)) < 0.25)
        weights = CsrMatrix.from_dense(dense)
        sim = GammaSimulator(GammaConfig(radix=4), semiring=TROPICAL_MIN)
        result = sim.run(weights, weights)
        # Dense min-plus reference over present entries only.
        inf = np.full((25, 25), np.inf)
        d = np.where(dense > 0, dense, inf)
        expected = np.min(d[:, :, None] + d[None, :, :], axis=1)
        got = np.full((25, 25), np.inf)
        for row in range(25):
            fiber = result.output.row(row)
            got[row, fiber.coords] = fiber.values
        np.testing.assert_allclose(got, expected)

    def test_max_times_reliability(self):
        rng = np.random.default_rng(7)
        dense = rng.uniform(0.1, 0.99, (20, 20)) * (
            rng.random((20, 20)) < 0.3)
        probs = CsrMatrix.from_dense(dense)
        sim = GammaSimulator(GammaConfig(), semiring=MAX_TIMES)
        result = sim.run(probs, probs)
        d = dense
        expected = np.max(d[:, :, None] * d[None, :, :], axis=1)
        got = np.zeros((20, 20))
        for row in range(20):
            fiber = result.output.row(row)
            got[row, fiber.coords] = fiber.values
        np.testing.assert_allclose(got, expected)

    def test_detailed_model_agrees_under_semiring(self):
        adj = self._graph(seed=9)
        fast = GammaSimulator(GammaConfig(radix=4),
                              semiring=BOOLEAN).run(adj, adj)
        detailed = GammaSimulator(
            GammaConfig(radix=4, detailed_pe_model=True),
            semiring=BOOLEAN).run(adj, adj)
        np.testing.assert_array_equal(
            fast.output.to_dense(), detailed.output.to_dense())

    def test_task_trees_respect_semiring_identity(self):
        """Partial fibers pass through with the semiring's `one`."""
        rng = np.random.default_rng(11)
        dense = rng.random((30, 30)) * (rng.random((30, 30)) < 0.6)
        weights = CsrMatrix.from_dense(dense)
        # Radix 2 forces deep task trees on every row.
        sim = GammaSimulator(GammaConfig(radix=2), semiring=TROPICAL_MIN)
        result = sim.run(weights, weights)
        inf = np.full((30, 30), np.inf)
        d = np.where(dense > 0, dense, inf)
        expected = np.min(d[:, :, None] + d[None, :, :], axis=1)
        got = np.full((30, 30), np.inf)
        for row in range(30):
            fiber = result.output.row(row)
            got[row, fiber.coords] = fiber.values
        np.testing.assert_allclose(got, expected)
