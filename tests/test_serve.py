"""Job-server suite: spec validation, lifecycle, tiers, admission,
coalescing, graceful shutdown, and the raw HTTP layer.

All async scenarios run through ``asyncio.run`` inside synchronous test
functions (the environment has no pytest-asyncio) and carry explicit
``pytest.mark.timeout`` ceilings so a deadlocked server fails loudly.

The coalescing proof is span-based, not stats-based: ``point/execute``
is emitted inside :func:`~repro.engine.sweep.execute_point` only when a
point is actually computed, so K duplicate submissions producing
exactly one such span *is* the guarantee, independent of any server
bookkeeping.
"""

import asyncio

import pytest

from repro.engine import diskcache
from repro.engine.record import RunRecord
from repro.engine.sweep import SweepPoint, execute_point, record_key
from repro.obs import spans
from repro.serve import (
    JobServer,
    JobSpec,
    JobValidationError,
    LruCache,
    ServerConfig,
    TieredStore,
    http_request,
)

#: Fast-failure knobs shared by every server the suite boots.
FAST = dict(backoff_base_seconds=0.01, backoff_max_seconds=0.05,
            retry_after_seconds=0.05, drain_seconds=5.0)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)


def serve(coro):
    """Run one async scenario to completion on a fresh loop."""
    return asyncio.run(coro)


async def booted(**overrides):
    config = ServerConfig(workers=0, **{**FAST, **overrides})
    server = JobServer(config)
    await server.start()
    return server


SPEC = {"matrix": "wiki-Vote", "model": "gamma"}


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_minimal_spec_roundtrips(self):
        spec = JobSpec.from_payload(SPEC)
        assert spec.key() == record_key(spec.to_point())
        assert JobSpec.from_checkpoint(spec.to_payload()) == spec

    def test_key_matches_engine_record_key(self):
        spec = JobSpec.from_payload(
            {"matrix": "poisson3Da", "model": "gamma",
             "variant": "reorder", "semiring": "boolean"})
        point = SweepPoint(model="gamma", matrix="poisson3Da",
                           variant="reorder", semiring="boolean")
        assert spec.key() == record_key(point)

    def test_masked_key_matches_engine_record_key(self):
        spec = JobSpec.from_payload(
            {"matrix": "wiki-Vote", "mask": "structural"})
        point = SweepPoint(model="gamma", matrix="wiki-Vote",
                           mask="structural")
        assert spec.key() == record_key(point)
        assert JobSpec.from_checkpoint(spec.to_payload()) == spec

    def test_spmv_key_matches_engine_record_key(self):
        spec = JobSpec.from_payload(
            {"matrix": "wiki-Vote", "model": "gamma-spmv",
             "operand": "dense-vector", "semiring": "boolean"})
        point = SweepPoint(model="gamma-spmv", matrix="wiki-Vote",
                           variant="none", semiring="boolean",
                           operand="dense-vector")
        assert spec.key() == record_key(point)
        assert JobSpec.from_checkpoint(spec.to_payload()) == spec

    @pytest.mark.parametrize("payload,fragment", [
        ("not-a-dict", "JSON object"),
        ({}, "required"),
        ({"matrix": "wiki-Vote", "zzz": 1}, "unknown field"),
        ({"matrix": "no-such-matrix"}, "no-such-matrix"),
        ({"matrix": "wiki-Vote", "model": "no-model"}, "unknown model"),
        ({"matrix": "wiki-Vote", "variant": "bogus"}, "variant"),
        ({"matrix": "wiki-Vote", "semiring": "bogus"}, "semiring"),
        ({"matrix": "wiki-Vote", "model": "mkl",
          "semiring": "boolean"}, "arithmetic"),
        ({"matrix": "wiki-Vote", "model": "mkl",
          "variant": "reorder"}, "no preprocessing"),
        ({"matrix": "wiki-Vote", "mask": "bogus"}, "mask"),
        ({"matrix": "wiki-Vote", "mask": "structural",
          "variant": "full"}, "do not compose"),
        ({"matrix": "wiki-Vote", "model": "mkl",
          "mask": "structural"}, "mask"),
        ({"matrix": "wiki-Vote", "operand": "dense-vector"}, "operand"),
        ({"matrix": "wiki-Vote", "model": "gamma-spmv",
          "operand": "bogus"}, "operand"),
        ({"matrix": "wiki-Vote", "multi_pe": "yes"}, "boolean"),
        ({"matrix": "wiki-Vote", "config": {"nope": 1}},
         "unknown config"),
        ({"matrix": "wiki-Vote", "config": {"num_pes": "many"}},
         "numeric"),
    ])
    def test_rejects_bad_payloads(self, payload, fragment):
        with pytest.raises(JobValidationError, match=fragment):
            JobSpec.from_payload(payload)

    def test_config_override_changes_key(self):
        base = JobSpec.from_payload(SPEC)
        tuned = JobSpec.from_payload(
            {**SPEC, "config": {"num_pes": 4}})
        assert tuned.config.num_pes == 4
        assert tuned.key() != base.key()
        assert JobSpec.from_checkpoint(tuned.to_payload()) == tuned


# ----------------------------------------------------------------------
# Lifecycle + tiers (in-process API)
# ----------------------------------------------------------------------
class TestLifecycle:
    @pytest.mark.timeout(120)
    def test_job_computes_and_matches_serial_run(self, tmp_path,
                                                 monkeypatch):
        async def scenario():
            server = await booted()
            status, body = await server.submit_and_wait(SPEC, client="t")
            await server.shutdown()
            return status, body

        status, body = serve(scenario())
        assert status == 202
        assert body["state"] == "done"
        assert body["source"] == "computed"
        # bit-identity against a clean serial run in a pristine cache
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
        clean = execute_point(SweepPoint(model="gamma",
                                         matrix="wiki-Vote"))
        assert body["fingerprint"] == clean.fingerprint()
        assert RunRecord.from_payload(body["result"]).fingerprint() \
            == clean.fingerprint()

    @pytest.mark.timeout(120)
    def test_masked_job_matches_direct_engine_run(self, tmp_path,
                                                  monkeypatch):
        """A masked job round-trips identical to the engine run."""
        payload = {"matrix": "wiki-Vote", "model": "gamma",
                   "mask": "structural"}

        async def scenario():
            server = await booted()
            status, body = await server.submit_and_wait(payload,
                                                        client="t")
            await server.shutdown()
            return status, body

        status, body = serve(scenario())
        assert status == 202
        assert body["state"] == "done"
        assert body["spec"]["mask"] == "structural"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
        clean = execute_point(SweepPoint(model="gamma",
                                         matrix="wiki-Vote",
                                         mask="structural"))
        assert body["fingerprint"] == clean.fingerprint()
        assert RunRecord.from_payload(body["result"]).fingerprint() \
            == clean.fingerprint()

    @pytest.mark.timeout(120)
    def test_spmv_job_matches_direct_engine_run(self, tmp_path,
                                                monkeypatch):
        payload = {"matrix": "wiki-Vote", "model": "gamma-spmv",
                   "operand": "dense-vector"}

        async def scenario():
            server = await booted()
            status, body = await server.submit_and_wait(payload,
                                                        client="t")
            await server.shutdown()
            return status, body

        status, body = serve(scenario())
        assert status == 202
        assert body["state"] == "done"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
        clean = execute_point(SweepPoint(model="gamma-spmv",
                                         matrix="wiki-Vote",
                                         variant="none",
                                         operand="dense-vector"))
        assert body["fingerprint"] == clean.fingerprint()

    @pytest.mark.timeout(120)
    def test_tiers_serve_repeat_submissions(self):
        async def scenario():
            server = await booted()
            await server.submit_and_wait(SPEC, client="a")
            s1, b1 = await server.submit_and_wait(SPEC, client="b")
            server.store.l1.clear()  # force the L2 path
            s2, b2 = await server.submit_and_wait(SPEC, client="c")
            s3, b3 = await server.submit_and_wait(SPEC, client="d")
            stats = server.stats_payload()
            await server.shutdown()
            return (s1, b1), (s2, b2), (s3, b3), stats

        (s1, b1), (s2, b2), (s3, b3), stats = serve(scenario())
        assert (s1, b1["source"]) == (200, "l1")
        assert (s2, b2["source"]) == (200, "l2")  # ...and promoted
        assert (s3, b3["source"]) == (200, "l1")
        assert b1["fingerprint"] == b2["fingerprint"] == b3["fingerprint"]
        assert stats["stats"]["computed"] == 1
        assert stats["stats"]["hits_l1"] == 2
        assert stats["stats"]["hits_l2"] == 1

    @pytest.mark.timeout(60)
    def test_invalid_spec_is_400(self):
        async def scenario():
            server = await booted()
            status, body, _ = server.submit({"matrix": "zzz"}, "t")
            await server.shutdown()
            return status, body

        status, body = serve(scenario())
        assert status == 400
        assert body["error"]["reason"] == "invalid_spec"


# ----------------------------------------------------------------------
# Coalescing (span-count proof)
# ----------------------------------------------------------------------
class TestCoalescing:
    @pytest.mark.timeout(120)
    def test_k_duplicates_cost_one_execution(self, tmp_path):
        span_dir = tmp_path / "spans"
        spans.enable(span_dir)
        try:
            async def scenario():
                server = await booted()
                results = await asyncio.gather(*[
                    server.submit_and_wait(SPEC, client=f"c{i}")
                    for i in range(8)
                ])
                stats = server.stats_payload()
                await server.shutdown()
                return results, stats

            results, stats = serve(scenario())
        finally:
            spans.disable()
        fingerprints = {body["fingerprint"] for _, body in results}
        assert all(status == 202 for status, _ in results)
        assert all(body["state"] == "done" for _, body in results)
        assert len(fingerprints) == 1
        # the proof: 8 submissions, exactly 1 computed point
        merged = spans.merge_directory(span_dir)
        counts = spans.count_by_name(merged["spans"])
        assert counts["point/execute"] == 1
        assert counts["serve/coalesced"] == 7
        assert stats["stats"]["coalesced"] == 7
        assert stats["stats"]["computed"] == 1
        sources = sorted(body["source"] for _, body in results)
        assert sources == ["coalesced"] * 7 + ["computed"]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    @pytest.mark.timeout(60)
    def test_per_client_cap_is_429_with_retry_after(self):
        async def scenario():
            server = await booted(per_client_limit=2)
            # submit without yielding: all three in flight at once
            r1 = server.submit(SPEC, "greedy")
            r2 = server.submit({**SPEC, "semiring": "boolean"}, "greedy")
            r3 = server.submit({**SPEC, "model": "mkl",
                                "semiring": "arithmetic",
                                "variant": "none"}, "greedy")
            other = server.submit({**SPEC, "matrix": "poisson3Da"},
                                  "patient")
            await server.shutdown()
            return r1, r2, r3, other

        r1, r2, r3, other = serve(scenario())
        assert r1[0] == 202 and r2[0] == 202
        assert r3[0] == 429
        assert r3[1]["error"]["reason"] == "client_limit"
        assert "Retry-After" in r3[2]
        assert other[0] == 202  # the cap is per client, not global

    @pytest.mark.timeout(60)
    def test_queue_depth_is_503_with_retry_after(self):
        async def scenario():
            server = await booted(queue_depth=1)
            r1 = server.submit(SPEC, "a")
            dup = server.submit(SPEC, "b")  # coalesces: rides free
            r2 = server.submit({**SPEC, "matrix": "poisson3Da"}, "c")
            await server.shutdown()
            return r1, dup, r2

        r1, dup, r2 = serve(scenario())
        assert r1[0] == 202
        assert dup[0] == 202  # duplicates never count against depth
        assert r2[0] == 503
        assert r2[1]["error"]["reason"] == "queue_full"
        assert "Retry-After" in r2[2]

    @pytest.mark.timeout(60)
    def test_draining_server_rejects_503(self):
        async def scenario():
            server = await booted()
            await server.shutdown()
            return server.submit(SPEC, "late")

        status, body, headers = serve(scenario())
        assert status == 503
        assert body["error"]["reason"] == "unavailable"
        assert "Retry-After" in headers


# ----------------------------------------------------------------------
# Graceful shutdown: drain + queue checkpoint + restore
# ----------------------------------------------------------------------
class TestShutdown:
    @pytest.mark.timeout(120)
    def test_undrained_jobs_error_cleanly_and_checkpoint(self):
        async def scenario():
            server = await booted(drain_seconds=0.1,
                                  checkpoint_tag="drain-test")

            async def stuck(point, attempt):
                await asyncio.sleep(60)

            server._run_once = stuck
            status, body, _ = server.submit(SPEC, "t")
            assert status == 202
            await asyncio.sleep(0.05)
            summary = await server.shutdown(drain=True)
            job = server.jobs[body["id"]].to_payload()
            return summary, job

        summary, job = serve(scenario())
        assert summary == {"drained": 0, "checkpointed": 1}
        assert job["state"] == "error"
        assert job["error"]["reason"] == "shutdown"

    @pytest.mark.timeout(180)
    def test_restart_restores_checkpointed_queue(self):
        async def interrupted():
            server = await booted(drain_seconds=0.1, checkpoint_tag="rr")

            async def stuck(point, attempt):
                await asyncio.sleep(60)

            server._run_once = stuck
            server.submit(SPEC, "t")
            await asyncio.sleep(0.05)
            await server.shutdown(drain=True)

        async def restarted():
            server = await booted(checkpoint_tag="rr")
            restored = server.stats["restored"]
            # restored jobs run like any other; wait for them to land
            for job in server.jobs.values():
                if not job.finished:
                    await asyncio.wait_for(
                        server._events[job.id].wait(), 120)
            payloads = [job.to_payload()
                        for job in server.jobs.values()]
            await server.shutdown()
            return restored, payloads

        serve(interrupted())
        restored, payloads = serve(restarted())
        assert restored == 1
        assert len(payloads) == 1
        assert payloads[0]["client"] == "restore"
        assert payloads[0]["state"] == "done"
        # checkpoint is consumed: a second restart restores nothing
        assert serve(restarted())[0] == 0


# ----------------------------------------------------------------------
# Tiered store basics (no server)
# ----------------------------------------------------------------------
class TestTieredStore:
    def test_put_is_write_through_and_get_promotes(self):
        store = TieredStore(l1_capacity=4)
        key = diskcache.cache_key("serve-test", k=1)
        store.put(key, {"v": 1})
        assert diskcache.load(key) == {"v": 1}  # L2 written first
        assert store.get(key) == ({"v": 1}, "l1")
        store.l1.clear()
        assert store.get(key) == ({"v": 1}, "l2")
        assert store.get(key) == ({"v": 1}, "l1")  # promoted

    def test_admit_fills_l1_only(self):
        store = TieredStore(l1_capacity=4)
        key = diskcache.cache_key("serve-test", k=2)
        store.admit(key, {"v": 2})
        assert store.get(key) == ({"v": 2}, "l1")
        assert diskcache.load(key) is None

    def test_zero_capacity_disables_l1(self):
        store = TieredStore(l1_capacity=0)
        key = diskcache.cache_key("serve-test", k=3)
        store.put(key, {"v": 3})
        assert store.get(key) == ({"v": 3}, "l2")
        assert len(store.l1) == 0

    def test_lru_eviction_order(self):
        cache = LruCache(2)
        assert cache.put("a", 1) == []
        assert cache.put("b", 2) == []
        cache.get("a")  # refresh: b is now least recent
        assert cache.put("c", 3) == ["b"]
        assert cache.keys() == ["a", "c"]
        assert cache.evictions == 1

    def test_hit_rates(self):
        store = TieredStore(l1_capacity=4)
        key = diskcache.cache_key("serve-test", k=4)
        assert store.hit_rates()["overall_hit_rate"] is None
        store.get(key)           # full miss
        store.admit(key, {})
        store.get(key)           # l1 hit
        rates = store.hit_rates()
        assert rates["l1_hit_rate"] == 0.5
        assert rates["overall_hit_rate"] == 0.5


# ----------------------------------------------------------------------
# Metrics snapshot (GET /metrics)
# ----------------------------------------------------------------------
class TestMetrics:
    @pytest.mark.timeout(120)
    def test_snapshot_covers_store_coalesce_and_admission(self):
        async def scenario():
            server = await booted(per_client_limit=1, queue_depth=1)
            # one computed execution with a coalesced rider
            lead, ride = await asyncio.gather(
                server.submit_and_wait(SPEC, client="a"),
                server.submit_and_wait(SPEC, client="b"))
            # L2 hit -> promotion back into L1, then an L1 hit
            server.store.l1.clear()
            await server.submit_and_wait(SPEC, client="c")
            await server.submit_and_wait(SPEC, client="c2")
            # admission rejections: 429 (client cap) and 503 (depth)
            server._per_client["greedy"] = 1
            r429 = server.submit(SPEC, "greedy")
            server.coalesce.join("held", dict)  # occupy the queue slot
            r503 = server.submit({**SPEC, "matrix": "poisson3Da"}, "d")
            server.coalesce.finish("held")
            metrics = server.metrics_payload()
            await server.shutdown()
            return lead, ride, r429[0], r503[0], metrics

        lead, ride, s429, s503, metrics = serve(scenario())
        assert lead[1]["state"] == ride[1]["state"] == "done"
        assert (s429, s503) == (429, 503)
        assert metrics["schema"] == 1
        store = metrics["store"]
        assert store["promotions"] == store["l2_hits"] == 1
        assert store["l1_hits"] >= 1
        assert store["l1_size"] >= 1
        coalesce = metrics["coalesce"]
        assert coalesce["leaders"] >= 1
        assert coalesce["riders"] == 1
        admission = metrics["admission"]
        assert admission["rejected_client_limit"] == 1
        assert admission["rejected_queue_full"] == 1
        queue = metrics["queue"]
        assert queue["depth_limit"] == 1
        assert queue["inflight_executions"] == 0
        assert metrics["jobs"]["unfinished"] == 0
        assert metrics["jobs"]["computed"] == 1

    def test_snapshot_is_single_and_consistent(self):
        """The payload is a plain dict built with no awaits: mutating
        the server after the call must not change the snapshot."""
        async def scenario():
            server = await booted()
            before = server.metrics_payload()
            await server.submit_and_wait(SPEC, client="a")
            after = server.metrics_payload()
            await server.shutdown()
            return before, after

        before, after = serve(scenario())
        assert before["jobs"]["submitted"] == 0
        assert before["store"]["l2_misses"] == 0
        assert after["jobs"]["submitted"] == 1
        assert after["store"]["l2_misses"] == 1


# ----------------------------------------------------------------------
# HTTP layer (real sockets)
# ----------------------------------------------------------------------
class TestHttp:
    @pytest.mark.timeout(120)
    def test_full_http_surface(self):
        async def scenario():
            server = await booted(per_client_limit=1)
            host, port = await server.start_http()
            out = {}
            out["health"] = await http_request(host, port, "GET",
                                               "/healthz")
            out["post"] = await http_request(
                host, port, "POST", "/jobs", payload=SPEC,
                headers={"X-Client-Id": "h"})
            job_id = out["post"][2]["id"]
            out["get"] = await http_request(
                host, port, "GET", f"/jobs/{job_id}?wait=60")
            out["missing"] = await http_request(host, port, "GET",
                                                "/jobs/zzz")
            out["method"] = await http_request(host, port, "DELETE",
                                               "/jobs")
            out["path"] = await http_request(host, port, "GET", "/nope")
            out["stats"] = await http_request(host, port, "GET",
                                              "/stats")
            # raw bad-JSON body -> 400
            reader, writer = await asyncio.open_connection(host, port)
            raw = (b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                   b"Content-Length: 4\r\nConnection: close\r\n\r\n{{{{")
            writer.write(raw)
            await writer.drain()
            line = await reader.readline()
            out["badjson_status"] = int(line.split()[1])
            writer.close()
            await server.shutdown()
            return out

        out = serve(scenario())
        assert out["health"][0] == 200
        assert out["health"][2]["status"] == "ok"
        assert out["post"][0] == 202
        status, headers, body = out["get"]
        assert (status, body["state"]) == (200, "done")
        assert headers["content-type"] == "application/json"
        assert out["missing"][0] == 404
        assert out["method"][0] == 405
        assert out["path"][0] == 404
        assert out["stats"][0] == 200
        assert out["stats"][2]["stats"]["computed"] == 1
        assert out["badjson_status"] == 400

    @pytest.mark.timeout(120)
    def test_http_metrics_endpoint(self):
        async def scenario():
            server = await booted()
            host, port = await server.start_http()
            out = {}
            await server.submit_and_wait(SPEC, client="m")
            out["metrics"] = await http_request(host, port, "GET",
                                               "/metrics")
            out["method"] = await http_request(host, port, "DELETE",
                                               "/metrics")
            await server.shutdown()
            return out

        out = serve(scenario())
        status, headers, body = out["metrics"]
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert body["schema"] == 1
        assert body["store"]["l2_misses"] >= 1
        assert body["coalesce"]["leaders"] == 1
        assert body["queue"]["depth_limit"] == 64
        assert out["method"][0] == 405

    @pytest.mark.timeout(120)
    def test_http_429_carries_retry_after_header(self):
        async def scenario():
            server = await booted(per_client_limit=0)
            host, port = await server.start_http()
            result = await http_request(
                host, port, "POST", "/jobs", payload=SPEC,
                headers={"X-Client-Id": "h"})
            await server.shutdown()
            return result

        status, headers, body = serve(scenario())
        assert status == 429
        assert "retry-after" in headers
        assert body["error"]["reason"] == "client_limit"
