"""Sparse matrix substrate: fibers, CSR/CSC containers, generators, suites."""

from repro.matrices.builder import CooBuilder, matrix_from_coo
from repro.matrices.csr import CscMatrix, CsrMatrix
from repro.matrices.fiber import Fiber, linear_combine
from repro.matrices.io import (
    MatrixMarketError,
    matrix_market_string,
    read_matrix_market,
    write_matrix_market,
)
from repro.matrices.stats import MatrixStats, flops, matrix_affinity, window_size

__all__ = [
    "CooBuilder",
    "CscMatrix",
    "CsrMatrix",
    "Fiber",
    "MatrixMarketError",
    "MatrixStats",
    "flops",
    "linear_combine",
    "matrix_affinity",
    "matrix_from_coo",
    "matrix_market_string",
    "read_matrix_market",
    "window_size",
    "write_matrix_market",
]
