"""Applications built on accelerated spMspM (the paper's Sec. 1-2 domains)."""

from repro.apps.apsp import all_pairs_shortest_paths
from repro.apps.bfs import bfs_levels
from repro.apps.chain import ChainCostReport, matrix_chain, matrix_power

__all__ = [
    "ChainCostReport",
    "all_pairs_shortest_paths",
    "bfs_levels",
    "matrix_chain",
    "matrix_power",
]
