"""Chaos suite for the job server: deterministic faults under live load.

Reuses the engine's :mod:`repro.engine.faults` plans (the
``REPRO_FAULT_PLAN`` environment variable travels into the server's
worker processes exactly as it does into sweep workers) and asserts the
serving invariant: **every accepted job resolves** — either bit-identical
to a clean serial run in a pristine cache, or as a well-formed
structured error — never torn, never lost, no matter which worker died
or which cache entry rotted underneath it.

Scenarios needing a killable worker (hard death, hang-past-timeout) run
in pool mode (``workers>=1``); the corrupt-cache scenario runs inline —
the checksum validation it exercises lives in the disk cache, not the
worker.
"""

import asyncio

import pytest

from repro.engine import diskcache, faults
from repro.engine.sweep import SweepPoint, execute_point
from repro.obs import spans
from repro.serve import JobServer, ServerConfig, build_schedule, \
    run_schedule, summarize_results

#: Near-instant retries + short drain so scenarios stay quick.
FAST = dict(backoff_base_seconds=0.01, backoff_max_seconds=0.05,
            retry_after_seconds=0.05, drain_seconds=10.0)

SPEC = {"matrix": "wiki-Vote", "model": "gamma"}
POINT = SweepPoint(model="gamma", matrix="wiki-Vote")


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    yield
    faults.clear_plan()


def clean_fingerprint(tmp_path, monkeypatch, point=POINT):
    """Fingerprint of a clean serial run in a separate pristine cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
    try:
        return execute_point(point).fingerprint()
    finally:
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def arm(tmp_path, *specs):
    return faults.FaultPlan.load(
        faults.install_plan(list(specs), tmp_path / "faults"))


def serve(coro):
    return asyncio.run(coro)


class TestWorkerDeath:
    @pytest.mark.timeout(180)
    def test_kill_mid_job_is_retried_bit_identical(self, tmp_path,
                                                   monkeypatch):
        """A worker os._exit-ing mid-job costs a retry, not the job."""
        clean = clean_fingerprint(tmp_path, monkeypatch)
        plan = arm(tmp_path, faults.FaultSpec(
            kind="kill", model="gamma", matrix="wiki-Vote"))

        async def scenario():
            server = JobServer(ServerConfig(workers=1, max_retries=2,
                                            timeout_seconds=60, **FAST))
            await server.start()
            status, body = await server.submit_and_wait(
                SPEC, client="t", timeout=120)
            stats = dict(server.stats)
            await server.shutdown()
            return status, body, stats

        status, body, stats = serve(scenario())
        assert (status, body["state"]) == (202, "done")
        assert body["fingerprint"] == clean
        assert body["attempts"] == 2
        assert stats["crashes"] == 1
        assert stats["retries"] == 1
        assert plan.triggered(0) == 1

    @pytest.mark.timeout(180)
    def test_hung_worker_is_killed_past_timeout(self, tmp_path,
                                                monkeypatch):
        """A hang longer than the job timeout gets the worker killed,
        the slot respawned, and the job retried to the clean result."""
        clean = clean_fingerprint(tmp_path, monkeypatch)
        plan = arm(tmp_path, faults.FaultSpec(
            kind="hang", model="gamma", matrix="wiki-Vote",
            hang_seconds=30.0))

        async def scenario():
            server = JobServer(ServerConfig(workers=1, max_retries=2,
                                            timeout_seconds=1.0, **FAST))
            await server.start()
            status, body = await server.submit_and_wait(
                SPEC, client="t", timeout=120)
            stats = dict(server.stats)
            await server.shutdown()
            return status, body, stats

        status, body, stats = serve(scenario())
        assert (status, body["state"]) == (202, "done")
        assert body["fingerprint"] == clean
        assert stats["timeouts"] == 1
        assert stats["retries"] == 1
        assert plan.triggered(0) == 1

    @pytest.mark.timeout(180)
    def test_exhausted_retries_resolve_as_structured_error(self,
                                                           tmp_path):
        """A job that cannot succeed still terminates: a well-formed
        error payload, never a hang or a torn response."""
        arm(tmp_path, faults.FaultSpec(
            kind="crash", model="gamma", matrix="wiki-Vote", times=10))

        async def scenario():
            server = JobServer(ServerConfig(workers=1, max_retries=1,
                                            timeout_seconds=60, **FAST))
            await server.start()
            status, body = await server.submit_and_wait(
                SPEC, client="t", timeout=120)
            await server.shutdown()
            return status, body

        status, body = serve(scenario())
        assert (status, body["state"]) == (202, "error")
        assert body["error"]["reason"] == "error"
        assert "InjectedFault" in body["error"]["message"]
        assert body["attempts"] == 2


class TestCorruptCache:
    @pytest.mark.timeout(180)
    def test_corrupt_l2_entry_recomputes_for_coalesced_group(
            self, tmp_path, monkeypatch):
        """A checksum-invalid L2 entry reads as a miss; the whole
        coalesced group gets one clean recomputation, not torn bytes."""
        from repro.engine.sweep import record_key

        clean = clean_fingerprint(tmp_path, monkeypatch)
        # arm first: the corruption fires on the entry's write, so the
        # point's L2 entry lands on disk already torn
        plan = arm(tmp_path, faults.FaultSpec(
            kind="corrupt_cache", model="gamma", matrix="wiki-Vote"))
        execute_point(POINT)
        key = record_key(POINT)
        assert plan.triggered(0) == 1
        assert diskcache.entry_path(key).exists()

        span_dir = tmp_path / "spans"
        spans.enable(span_dir)
        try:
            async def scenario():
                server = JobServer(ServerConfig(workers=0, **FAST))
                await server.start()
                results = await asyncio.gather(*[
                    server.submit_and_wait(SPEC, client=f"c{i}",
                                           timeout=120)
                    for i in range(5)
                ])
                store_stats = dict(server.store.stats)
                await server.shutdown()
                return results, store_stats

            results, store_stats = serve(scenario())
        finally:
            spans.disable()
            faults.clear_plan()
        assert all(body["state"] == "done" for _, body in results)
        assert {body["fingerprint"] for _, body in results} == {clean}
        # the corrupt entry read as a miss, and the group coalesced
        # into exactly one recomputation
        assert store_stats["l2_misses"] >= 1
        merged = spans.merge_directory(span_dir)
        counts = spans.count_by_name(merged["spans"])
        assert counts["point/execute"] == 1
        assert counts["serve/coalesced"] == 4


class TestChaosUnderLoad:
    @pytest.mark.timeout(600)
    @pytest.mark.slow
    def test_live_load_with_worker_kills_never_loses_a_job(
            self, tmp_path, monkeypatch):
        """The headline invariant: a seeded zipf load with workers
        dying underneath it — every accepted job resolves bit-identical
        to a clean serial run or as a well-formed error (and with this
        fault budget, they all succeed)."""
        schedule = build_schedule(
            seed=11, requests=40, clients=10, zipf_s=1.2,
            mean_gap_ms=0.0, matrices=("wiki-Vote",),
            models=("gamma", "mkl"), variants=("none", "reorder"),
            semirings=("arithmetic", "boolean"))
        # clean fingerprints for every distinct spec, pristine cache
        from repro.serve import JobSpec
        distinct = {}
        for entry in schedule["requests"]:
            spec = JobSpec.from_payload(entry["spec"])
            distinct[spec.key()] = spec
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
        clean = {key: execute_point(spec.to_point()).fingerprint()
                 for key, spec in sorted(distinct.items())}
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        # wildcard faults: hit whichever job a worker picks up next
        arm(tmp_path, faults.FaultSpec(
            kind="kill", model="gamma", matrix="*", times=2),
            faults.FaultSpec(
            kind="flaky", model="mkl", matrix="*", times=1))

        async def scenario():
            server = JobServer(ServerConfig(
                workers=2, max_retries=3, timeout_seconds=60,
                queue_depth=32, per_client_limit=16, **FAST))
            await server.start()
            results = await run_schedule(server, schedule,
                                         time_scale=0.0,
                                         job_timeout=300.0)
            unfinished = [job.id for job in server.jobs.values()
                          if not job.finished]
            stats = dict(server.stats)
            await server.shutdown()
            return results, unfinished, stats

        results, unfinished, stats = serve(scenario())
        assert unfinished == []  # no job lost
        assert len(results) == 40
        summary = summarize_results(results)
        assert set(summary["statuses"]) <= {"200", "202"}
        assert summary["states"] == {"done": 40}
        for result in results:
            assert result["fingerprint"] == clean[result["key"]], result
        # the faults actually fired and were absorbed by retries
        assert stats["crashes"] == 2
        assert stats["errors"] == 1
        assert stats["retries"] == 3
        assert stats["failed"] == 0
