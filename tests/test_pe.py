"""Unit tests for PE, accumulator, and task trees."""

import numpy as np
import pytest

from repro.core.accumulator import Accumulator, accumulate
from repro.core.pe import ProcessingElement
from repro.core.tasks import Task, TaskInput, build_task_tree, tree_stats
from repro.matrices.fiber import Fiber, linear_combine


class TestAccumulator:
    def test_sums_runs(self):
        out = accumulate([(1, 2.0), (1, 3.0), (4, 1.0)])
        assert list(out) == [(1, 5.0), (4, 1.0)]

    def test_empty(self):
        assert len(accumulate([])) == 0

    def test_rejects_out_of_order(self):
        acc = Accumulator()
        acc.push(5, 1.0)
        with pytest.raises(ValueError, match="nondecreasing"):
            acc.push(3, 1.0)

    def test_flush_resets(self):
        acc = Accumulator()
        acc.push(2, 1.0)
        first = acc.flush()
        assert list(first) == [(2, 1.0)]
        acc.push(0, 4.0)
        assert list(acc.flush()) == [(0, 4.0)]

    def test_keeps_cancelled_zeros(self):
        # The hardware emits whatever sum it buffered, even 0.0.
        out = accumulate([(3, 1.0), (3, -1.0)])
        assert list(out) == [(3, 0.0)]


class TestProcessingElement:
    def test_fig5_example(self):
        # Paper Fig. 5: A row a1 = {3: a13, 5: a15}; combine B3 and B5.
        b3 = Fiber([2, 4], [0.7, 1.0])
        b5 = Fiber([1, 4], [0.5, 2.0])
        pe = ProcessingElement(radix=64)
        result = pe.combine([b3, b5], [2.0, 3.0])
        assert list(result.output) == [(1, 1.5), (2, 1.4), (4, 8.0)]
        assert result.multiplies == 4

    def test_detailed_matches_fast(self):
        rng = np.random.default_rng(21)
        pe = ProcessingElement(radix=16)
        fibers = []
        for _ in range(10):
            coords = np.unique(rng.choice(100, size=15))
            fibers.append(Fiber(coords, rng.normal(size=len(coords))))
        scales = rng.normal(size=10).tolist()
        fast = pe.combine(fibers, scales)
        detailed = pe.combine_detailed(fibers, scales)
        np.testing.assert_array_equal(fast.output.coords,
                                      detailed.output.coords)
        np.testing.assert_allclose(fast.output.values,
                                   detailed.output.values, atol=1e-12)
        assert fast.cycles == detailed.cycles
        assert fast.multiplies == detailed.multiplies

    def test_cycles_are_input_bound(self):
        pe = ProcessingElement(radix=4)
        fibers = [Fiber([1, 2, 3], [1.0] * 3), Fiber([4, 5], [1.0] * 2)]
        result = pe.combine(fibers, [1.0, 1.0])
        assert result.cycles == 5  # one consumed input element per cycle
        assert result.unpipelined_cycles > result.cycles

    def test_radix_enforced(self):
        pe = ProcessingElement(radix=2)
        fibers = [Fiber([i], [1.0]) for i in range(3)]
        with pytest.raises(ValueError, match="exceed PE radix"):
            pe.combine(fibers, [1.0] * 3)

    def test_detailed_scale_mismatch(self):
        pe = ProcessingElement(radix=4)
        with pytest.raises(ValueError, match="scaling factors"):
            pe.combine_detailed([Fiber([1], [1.0])], [1.0, 2.0])


class TestTaskTree:
    def test_single_task_when_under_radix(self):
        tasks = build_task_tree(0, [1, 2, 3], [1.0, 2.0, 3.0], radix=4)
        assert len(tasks) == 1
        assert tasks[0].is_final
        assert tasks[0].level == 0
        assert [i.index for i in tasks[0].inputs] == [1, 2, 3]

    def test_paper_example_4096_at_radix_64(self):
        # Sec. 3: 4096 fibers with radix-64 PEs -> 65 invocations, depth 2.
        tasks = build_task_tree(
            0, list(range(4096)), [1.0] * 4096, radix=64)
        count, depth = tree_stats(tasks)
        assert count == 65
        assert depth == 2

    def test_fig9_example_18_at_radix_3(self):
        # Fig. 9: 18 fibers at radix 3 -> full top levels, slack at bottom.
        tasks = build_task_tree(0, list(range(18)), [1.0] * 18, radix=3)
        root = tasks[-1]
        assert root.is_final
        assert root.num_inputs == 3  # top level full
        # All 18 leaves are covered exactly once.
        b_inputs = [
            inp.index for t in tasks for inp in t.inputs if inp.kind == "B"
        ]
        assert sorted(b_inputs) == list(range(18))

    def test_children_before_parents(self):
        tasks = build_task_tree(0, list(range(100)), [1.0] * 100, radix=8)
        seen = set()
        for task in tasks:
            for child in task.children:
                assert child.task_id in seen
            seen.add(task.task_id)

    def test_only_root_final(self):
        tasks = build_task_tree(7, list(range(50)), [1.0] * 50, radix=4)
        finals = [t for t in tasks if t.is_final]
        assert len(finals) == 1
        assert finals[0] is tasks[-1]
        assert all(t.row == 7 for t in tasks)

    def test_emit_final_false(self):
        tasks = build_task_tree(0, [1, 2], [1.0, 1.0], radix=4,
                                emit_final=False)
        assert not tasks[-1].is_final

    def test_scales_preserved(self):
        tasks = build_task_tree(0, [5, 9], [2.5, -1.0], radix=64)
        scales = {i.index: i.scale for i in tasks[0].inputs}
        assert scales == {5: 2.5, 9: -1.0}

    def test_partial_inputs_scale_one(self):
        tasks = build_task_tree(0, list(range(20)), [2.0] * 20, radix=4)
        root = tasks[-1]
        for inp in root.inputs:
            if inp.kind == "partial":
                assert inp.scale == 1.0

    def test_no_inputs_rejected(self):
        with pytest.raises(ValueError, match="no inputs"):
            build_task_tree(0, [], [], radix=4)

    def test_mismatched_scales_rejected(self):
        with pytest.raises(ValueError, match="scales"):
            build_task_tree(0, [1, 2], [1.0], radix=4)

    def test_bad_radix_rejected(self):
        with pytest.raises(ValueError, match="radix"):
            build_task_tree(0, [1], [1.0], radix=1)

    def test_input_kind_validation(self):
        with pytest.raises(ValueError, match="unknown input kind"):
            TaskInput("bogus", 0, 1.0)

    def test_priority_orders_rows_then_levels(self):
        t_row0_leaf = Task(1, row=0, level=0, inputs=[], is_final=False,
                           row_order=0)
        t_row0_root = Task(2, row=0, level=2, inputs=[], is_final=True,
                           row_order=0)
        t_row1_leaf = Task(3, row=1, level=0, inputs=[], is_final=True,
                           row_order=1)
        keys = sorted([t_row1_leaf, t_row0_leaf, t_row0_root],
                      key=lambda t: t.priority_key())
        assert keys[0] is t_row0_root  # higher level first within a row
        assert keys[-1] is t_row1_leaf  # later rows last

    def test_tree_functional_equivalence(self):
        # Executing the tree bottom-up must equal one flat combination.
        rng = np.random.default_rng(31)
        fibers = []
        for _ in range(30):
            coords = np.unique(rng.choice(80, size=10))
            fibers.append(Fiber(coords, rng.normal(size=len(coords))))
        scales = rng.normal(size=30)
        tasks = build_task_tree(0, list(range(30)), scales.tolist(), radix=4)
        partials = {}
        for task in tasks:
            ins, sc = [], []
            for inp in task.inputs:
                if inp.kind == "B":
                    ins.append(fibers[inp.index])
                else:
                    ins.append(partials[inp.index])
                sc.append(inp.scale)
            partials[task.task_id] = linear_combine(ins, sc)
        tree_out = partials[tasks[-1].task_id]
        flat_out = linear_combine(fibers, scales.tolist())
        np.testing.assert_array_equal(tree_out.coords, flat_out.coords)
        np.testing.assert_allclose(tree_out.values, flat_out.values,
                                   atol=1e-10)
