"""The unified, serializable result record every model produces.

``RunRecord`` replaces the old split between :class:`SimulationResult`
(Gamma) and :class:`BaselineResult` (the traffic models) at the experiment
layer: one dataclass, one schema, one (de)serialization path shared by the
in-memory memo, the disk cache, and the parallel sweep workers. The core
simulator and the baseline models keep their own richer/leaner result types
for direct use; :meth:`RunRecord.from_simulation` and
:meth:`RunRecord.from_baseline` adapt them.

The record carries every derived metric both old types exposed, so code
written against either keeps working when handed a record by the
experiment facade.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.config import CpuConfig, ELEMENT_BYTES, GammaConfig, OFFSET_BYTES

#: Bump to invalidate every cached record (part of each disk-cache key).
SCHEMA_VERSION = 2

_CONFIG_KINDS = {"gamma": GammaConfig, "cpu": CpuConfig}


def derive_c_nnz(compulsory_c_bytes: int, num_rows: int) -> int:
    """Recover the output nonzero count from compulsory C traffic.

    Compulsory C traffic is ``c_nnz * ELEMENT_BYTES + num_rows *
    OFFSET_BYTES`` (values+coords plus the row-pointer array), so the count
    can be back-derived for legacy cache entries that predate the explicit
    ``c_nnz`` field.
    """
    return (compulsory_c_bytes - num_rows * OFFSET_BYTES) // ELEMENT_BYTES


def _config_payload(config: Union[GammaConfig, CpuConfig, None]):
    if config is None:
        return None
    for kind, cls in _CONFIG_KINDS.items():
        if isinstance(config, cls):
            return {"kind": kind, **dataclasses.asdict(config)}
    raise TypeError(f"unsupported config type {type(config).__name__}")


def _config_from_payload(payload) -> Union[GammaConfig, CpuConfig, None]:
    if payload is None:
        return None
    params = dict(payload)
    cls = _CONFIG_KINDS[params.pop("kind")]
    return cls(**params)


@dataclass(frozen=True)
class RunRecord:
    """One (model, matrix, variant, config) evaluation, fully serializable.

    Attributes:
        model: Registry key of the model that produced it ('gamma', 'mkl',
            'ip', 'outerspace', 'sparch', 'matraptor').
        matrix: Suite matrix name (or a caller-chosen label).
        variant: Preprocessing variant for Gamma runs; '' for baselines.
        cycles: Execution time in the model's clock cycles.
        frequency_hz: The model's clock.
        traffic_bytes: DRAM bytes by category
            (A / B / C / partial_read / partial_write).
        compulsory_bytes: Minimum possible traffic by category (A / B / C).
        flops: Multiply-accumulate operations.
        c_nnz: Nonzeros of the output matrix (explicit — no magic-number
            back-derivation needed by consumers).
        pe_busy_cycles / num_tasks / num_partial_fibers /
        cache_utilization: Gamma-only detail metrics (zero/empty for
            baselines).
        config: The simulated system (GammaConfig, or CpuConfig for MKL).
        multi_pe: Whether Gamma used multi-PE-per-row scheduling.
        metrics: Serialized :class:`~repro.obs.MetricsRegistry` blob when
            the run was instrumented; None otherwise (the default —
            sweeps never collect metrics, so cached records stay small).
        dispatch: Execution-path split ``{"scalar": n, "epoch": m}`` of
            the producing engine (Gamma only). Engine diagnostics, not
            behavior — excluded from the fingerprint like ``metrics``.
    """

    model: str
    matrix: str
    variant: str
    cycles: float
    frequency_hz: float
    traffic_bytes: Dict[str, int]
    compulsory_bytes: Dict[str, int]
    flops: int
    c_nnz: int
    pe_busy_cycles: float = 0.0
    num_tasks: int = 0
    num_partial_fibers: int = 0
    cache_utilization: Dict[str, float] = field(default_factory=dict)
    config: Union[GammaConfig, CpuConfig, None] = None
    multi_pe: bool = True
    metrics: Optional[Dict[str, Any]] = None
    dispatch: Optional[Dict[str, int]] = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_simulation(cls, result, *, model: str = "gamma",
                        matrix: str = "", variant: str = "none",
                        multi_pe: bool = True) -> "RunRecord":
        """Adapt a :class:`repro.core.SimulationResult`."""
        c_nnz = getattr(result, "c_nnz", None)
        if c_nnz is None:
            raise ValueError(
                "SimulationResult lacks c_nnz; run it through "
                "GammaSimulator (which sets it) or pass the field")
        return cls(
            model=model, matrix=matrix, variant=variant,
            cycles=result.cycles,
            frequency_hz=result.config.frequency_hz,
            traffic_bytes=dict(result.traffic_bytes),
            compulsory_bytes=dict(result.compulsory_bytes),
            flops=result.flops,
            c_nnz=c_nnz,
            pe_busy_cycles=result.pe_busy_cycles,
            num_tasks=result.num_tasks,
            num_partial_fibers=result.num_partial_fibers,
            cache_utilization=dict(result.cache_utilization),
            config=result.config,
            multi_pe=multi_pe,
            metrics=getattr(result, "metrics", None),
            dispatch=getattr(result, "dispatch", None),
        )

    @classmethod
    def from_baseline(cls, result, *, model: str, matrix: str = "",
                      compulsory_bytes: Optional[Dict[str, int]] = None,
                      config: Union[GammaConfig, CpuConfig, None] = None,
                      c_nnz: Optional[int] = None) -> "RunRecord":
        """Adapt a :class:`repro.baselines.BaselineResult`."""
        if c_nnz is None:
            c_nnz = getattr(result, "c_nnz", None) or 0
        return cls(
            model=model, matrix=matrix, variant="",
            cycles=result.cycles,
            frequency_hz=result.frequency_hz,
            traffic_bytes=dict(result.traffic_bytes),
            compulsory_bytes=dict(compulsory_bytes or {}),
            flops=result.flops,
            c_nnz=c_nnz,
            config=config,
        )

    # -- serialization --------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """A JSON-compatible dict (the disk-cache representation)."""
        payload = dataclasses.asdict(self)
        payload["config"] = _config_payload(self.config)
        payload["schema"] = SCHEMA_VERSION
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_payload` output.

        Tolerates legacy entries lacking ``c_nnz`` by back-deriving it
        from compulsory C traffic via the element/offset size constants.
        """
        params = {k: v for k, v in payload.items() if k != "schema"}
        params["config"] = _config_from_payload(params.get("config"))
        if params.get("c_nnz") is None:
            compulsory = params.get("compulsory_bytes") or {}
            num_rows = params.pop("num_rows", 0)
            params["c_nnz"] = derive_c_nnz(compulsory.get("C", 0), num_rows)
        params.pop("num_rows", None)
        return cls(**params)

    def fingerprint(self) -> str:
        """Stable digest of the record's behavioral content.

        Hashes the canonical JSON payload minus the ``metrics`` blob and
        the ``dispatch`` split (instrumentation/engine detail, not
        behavior). Two runs of the same point are bit-identical exactly
        when their fingerprints match — the equality the chaos suite and
        the golden-fingerprint regression test pin.
        """
        import hashlib
        import json

        payload = self.to_payload()
        payload.pop("metrics", None)
        payload.pop("dispatch", None)
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def summary_row(self) -> Dict[str, Any]:
        """A deterministic, JSON-compatible digest of this record.

        The fleet roll-up and the run report are built from these rows:
        everything here is a pure function of the record (no wall clock,
        no environment), which is what keeps a report byte-identical
        across serial and parallel runs of the same plan.
        """
        return {
            "model": self.model,
            "matrix": self.matrix,
            "variant": self.variant,
            "cycles": self.cycles,
            "runtime_seconds": self.runtime_seconds,
            "c_nnz": self.c_nnz,
            "flops": self.flops,
            "total_traffic_bytes": self.total_traffic,
            "normalized_traffic": self.normalized_traffic,
            "pe_utilization": self.pe_utilization,
            "operational_intensity": self.operational_intensity,
            "gflops": self.gflops,
            "fingerprint": self.fingerprint(),
            "has_metrics": self.metrics is not None,
            "scalar_dispatch_fraction": self.scalar_dispatch_fraction,
        }

    # -- derived metrics (superset of both legacy result types) ---------
    @property
    def scalar_dispatch_fraction(self) -> Optional[float]:
        """Fraction of tasks dispatched on the scalar path (None if unknown)."""
        if not self.dispatch:
            return None
        total = (self.dispatch.get("scalar", 0)
                 + self.dispatch.get("epoch", 0))
        if not total:
            return None
        return self.dispatch.get("scalar", 0) / total

    @property
    def total_traffic(self) -> int:
        return sum(self.traffic_bytes.values())

    @property
    def total_compulsory(self) -> int:
        return sum(self.compulsory_bytes.values())

    @property
    def normalized_traffic(self) -> float:
        """Traffic relative to compulsory (1.0 = perfect, paper's y-axis)."""
        return self.total_traffic / max(1, self.total_compulsory)

    def normalized_breakdown(self) -> Dict[str, float]:
        """Per-category traffic normalized to total compulsory bytes."""
        compulsory = max(1, self.total_compulsory)
        return {
            category: count / compulsory
            for category, count in self.traffic_bytes.items()
        }

    @property
    def noncompulsory_bytes(self) -> int:
        return max(0, self.total_traffic - self.total_compulsory)

    @property
    def runtime_seconds(self) -> float:
        return self.cycles / self.frequency_hz

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of peak DRAM bandwidth used over the run."""
        if self.cycles <= 0 or self.config is None:
            return 0.0
        bytes_per_cycle = (self.config.memory_bandwidth_bytes_per_s
                           / self.frequency_hz)
        peak = self.cycles * bytes_per_cycle
        return min(1.0, self.total_traffic / peak)

    @property
    def pe_utilization(self) -> float:
        if self.cycles <= 0 or not isinstance(self.config, GammaConfig):
            return 0.0
        return self.pe_busy_cycles / (self.cycles * self.config.num_pes)

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s (one MAC = one FLOP, Sec. 6.5)."""
        seconds = self.runtime_seconds
        return self.flops / seconds / 1e9 if seconds > 0 else 0.0

    @property
    def operational_intensity(self) -> float:
        """FLOPs per DRAM byte — the roofline x-axis (Fig. 21)."""
        return self.flops / max(1, self.total_traffic)
