"""Tiered result store and request coalescing for the job server.

Gamma's FiberCache thesis is that reuse capture should be *explicitly
decoupled* into a hierarchy — capture what is hot close to the consumer,
keep the long tail one level further out — and the serving tier applies
the same shape to results:

* **L1** — :class:`LruCache`, an in-process LRU over complete
  :class:`~repro.engine.record.RunRecord` payloads keyed by the point's
  disk-cache key (matrix fingerprint + model + variant + config +
  semiring, via :func:`repro.engine.sweep.record_key`). Hits cost a
  dictionary move-to-end; nothing is deserialized twice.
* **L2** — the existing checksum-validated disk cache
  (:mod:`repro.engine.diskcache`). Entries survive server restarts and
  are shared with sweeps; a corrupt entry fails its checksum on load,
  is unlinked, and reads as a miss — the server recomputes instead of
  serving torn bytes.

Both tiers publish their outcomes into the span stream
(:mod:`repro.obs.spans`): ``store/l1_hit``, ``store/l1_miss``,
``store/l2_hit``, ``store/l2_miss``, ``store/admit`` — and the L2 calls
additionally emit the cache's own ``cache/*`` instants. With telemetry
off each hook is one environment lookup.

:class:`CoalescingMap` is the serving analogue of Gamma merging partial
fibers instead of refetching them: N concurrent identical jobs share one
in-flight execution future; the first requester is the *leader* that
actually runs the simulation, the rest attach to its result. In-flight
entries live here — never in L1 — so LRU eviction cannot drop a job that
is still being computed (a property the Hypothesis suite pins).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine import diskcache
from repro.obs import spans


class LruCache:
    """A bounded least-recently-used map (the L1 result tier).

    ``capacity <= 0`` disables the cache (every ``get`` misses, ``put``
    is a no-op) — useful for tests that want to force the L2 path.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> List[str]:
        return list(self._entries)

    def get(self, key: str) -> Optional[Any]:
        """The cached value (refreshing its recency), or None."""
        if key not in self._entries:
            return None
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: str, value: Any) -> List[str]:
        """Insert/refresh an entry; returns the keys evicted to fit it."""
        if self.capacity <= 0:
            return []
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return []
        self._entries[key] = value
        evicted = []
        while len(self._entries) > self.capacity:
            old_key, _ = self._entries.popitem(last=False)
            evicted.append(old_key)
            self.evictions += 1
        return evicted

    def invalidate(self, key: str) -> bool:
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()


class CoalescingMap:
    """Key -> shared in-flight entry for identical concurrent jobs.

    The entry object itself is caller-provided (the server uses an
    ``asyncio.Future``); this map only guarantees the *sharing
    discipline*: between a key's first :meth:`join` and its
    :meth:`finish`, every join returns the same entry and exactly one
    caller is told it is the leader. The leader runs the execution and
    resolves the entry; :meth:`finish` removes the key so later
    requests start a fresh execution (by then the result store answers
    them anyway).
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, Any] = {}
        self.created = 0
        self.joined = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, key: str) -> bool:
        return key in self._inflight

    def keys(self) -> List[str]:
        return list(self._inflight)

    def join(self, key: str,
             factory: Callable[[], Any]) -> Tuple[Any, bool]:
        """Attach to ``key``'s in-flight entry, creating it if absent.

        Returns ``(entry, is_leader)``; ``is_leader`` is True exactly
        once per in-flight window of a key.
        """
        if key in self._inflight:
            self.joined += 1
            return self._inflight[key], False
        entry = factory()
        self._inflight[key] = entry
        self.created += 1
        return entry, True

    def get(self, key: str) -> Optional[Any]:
        return self._inflight.get(key)

    def finish(self, key: str) -> Optional[Any]:
        """Close a key's in-flight window; returns the entry, if any."""
        return self._inflight.pop(key, None)


class DiskBackend:
    """The default L2: the engine's checksum-validated disk cache."""

    def load(self, key: str) -> Optional[Dict]:
        return diskcache.load(key)

    def store(self, key: str, payload: Dict) -> None:
        diskcache.store(key, payload)

    def contains(self, key: str) -> bool:
        return diskcache.contains(key)

    def invalidate(self, key: str) -> bool:
        return diskcache.invalidate(key)


class TieredStore:
    """L1 in-process LRU over the L2 checksum-validated disk cache.

    The write discipline is strict write-through: :meth:`put` stores to
    L2 *before* inserting into L1, so an L1 hit implies the L2 entry
    exists (containment — bit-rot aside, which the L2 checksum catches
    on read). The server's hot path uses :meth:`admit` instead, because
    there the engine's ``execute_point`` has already been the single L2
    writer; admit only fills L1.

    ``stats`` counts every outcome; :meth:`hit_rates` derives the
    L1/L2/overall rates the bench report and ``/stats`` endpoint expose.
    """

    def __init__(self, l1_capacity: int = 256, l2=None) -> None:
        self.l1 = LruCache(l1_capacity)
        self.l2 = l2 if l2 is not None else DiskBackend()
        self.stats: Dict[str, int] = {
            "l1_hits": 0, "l1_misses": 0,
            "l2_hits": 0, "l2_misses": 0,
            "puts": 0, "admits": 0, "promotions": 0,
        }

    def get(self, key: str) -> Tuple[Optional[Dict], Optional[str]]:
        """Look a key up through the tiers.

        Returns ``(payload, tier)`` with tier ``'l1'``, ``'l2'`` (the
        payload is promoted into L1), or ``(None, None)`` on a full
        miss.
        """
        value = self.l1.get(key)
        if value is not None:
            self.stats["l1_hits"] += 1
            spans.emit_instant("store/l1_hit", key=key)
            return value, "l1"
        self.stats["l1_misses"] += 1
        spans.emit_instant("store/l1_miss", key=key)
        payload = self.l2.load(key)
        if payload is not None:
            self.stats["l2_hits"] += 1
            self.stats["promotions"] += 1
            spans.emit_instant("store/l2_hit", key=key)
            self.l1.put(key, payload)
            return payload, "l2"
        self.stats["l2_misses"] += 1
        spans.emit_instant("store/l2_miss", key=key)
        return None, None

    def put(self, key: str, payload: Dict) -> None:
        """Write-through store: L2 first, then L1 (containment)."""
        self.stats["puts"] += 1
        self.l2.store(key, payload)
        self.l1.put(key, payload)

    def admit(self, key: str, payload: Dict) -> None:
        """Fill L1 with a payload whose L2 entry already exists.

        The execution path lands here: ``execute_point`` stored the
        record to the disk cache in whichever process computed it, so
        re-storing would only re-serialize — and would *heal* an entry
        a chaos plan just corrupted, hiding exactly the scenario the
        checksum validation exists for.
        """
        self.stats["admits"] += 1
        spans.emit_instant("store/admit", key=key)
        self.l1.put(key, payload)

    def invalidate(self, key: str) -> None:
        self.l1.invalidate(key)
        self.l2.invalidate(key)

    def hit_rates(self) -> Dict[str, Optional[float]]:
        """Derived L1 / L2 / overall hit rates (None before any lookup)."""
        lookups = self.stats["l1_hits"] + self.stats["l1_misses"]
        l2_lookups = self.stats["l2_hits"] + self.stats["l2_misses"]
        hits = self.stats["l1_hits"] + self.stats["l2_hits"]
        return {
            "l1_hit_rate":
                self.stats["l1_hits"] / lookups if lookups else None,
            "l2_hit_rate":
                self.stats["l2_hits"] / l2_lookups if l2_lookups else None,
            "overall_hit_rate": hits / lookups if lookups else None,
        }
