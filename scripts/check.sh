#!/usr/bin/env bash
# Lint + tier-1 test gate. Run from the repository root:
#
#   scripts/check.sh          # ruff (if installed) + pytest
#   scripts/check.sh --fast   # lint only
#
# ruff is optional tooling (the runtime environment may not ship it);
# when absent the lint step is skipped with a warning instead of failing,
# so the gate still works in minimal containers.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== bytecode hygiene =="
bytecode="$( { git ls-files; git diff --cached --name-only; } \
    | grep -E '(^|/)__pycache__(/|$)|\.pyc$' | sort -u || true)"
if [[ -n "$bytecode" ]]; then
    echo "ERROR: compiled bytecode is tracked or staged:" >&2
    echo "$bytecode" >&2
    echo "unstage it (git rm -r --cached <path>); .gitignore covers" \
         "__pycache__/ and *.pyc" >&2
    exit 1
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "== ruff (module) =="
    python -m ruff check src tests benchmarks examples
else
    echo "WARNING: ruff not installed; skipping lint" >&2
fi

if [[ "${1:-}" == "--fast" ]]; then
    exit 0
fi

echo "== tier-1 tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q
