"""Simulation outcome containers and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import GammaConfig
from repro.matrices.csr import CsrMatrix


@dataclass
class SimulationResult:
    """Everything one Gamma simulation produces.

    Attributes:
        output: The computed C matrix (functional result).
        cycles: Total execution time in clock cycles.
        traffic_bytes: DRAM bytes by category
            (A / B / C / partial_read / partial_write).
        compulsory_bytes: Minimum possible traffic by category
            (A / B / C), as with unbounded on-chip storage.
        flops: Multiply-accumulate operations performed.
        pe_busy_cycles: Sum of busy cycles across PEs.
        num_tasks: PE invocations executed.
        num_partial_fibers: Partial output fibers produced.
        cache_utilization: Time-averaged FiberCache occupancy fractions
            ('B' / 'partial' / 'unused').
        config: The simulated system.
        c_nnz: Nonzeros of the output matrix (known even when the output
            itself is discarded with ``keep_output=False``).
        metrics: Serialized :class:`~repro.obs.MetricsRegistry` blob when
            the run was instrumented (``GammaSimulator(metrics=...)``);
            None otherwise. See :mod:`repro.obs`.
        dispatch: Execution-path split ``{"scalar": n, "epoch": m}`` —
            tasks dispatched one-at-a-time vs inside a batched epoch.
            Engine diagnostics, not behavior: the reference engine is
            all-scalar by construction and the lockstep suite excludes
            this field from its equality set.
    """

    output: Optional[CsrMatrix]
    cycles: float
    traffic_bytes: Dict[str, int]
    compulsory_bytes: Dict[str, int]
    flops: int
    pe_busy_cycles: float
    num_tasks: int
    num_partial_fibers: int
    cache_utilization: Dict[str, float]
    config: GammaConfig
    c_nnz: Optional[int] = None
    metrics: Optional[Dict] = None
    dispatch: Optional[Dict[str, int]] = None

    @property
    def scalar_dispatch_fraction(self) -> Optional[float]:
        """Fraction of tasks that ran on the scalar path (None if unknown)."""
        if not self.dispatch:
            return None
        total = (self.dispatch.get("scalar", 0)
                 + self.dispatch.get("epoch", 0))
        if not total:
            return None
        return self.dispatch.get("scalar", 0) / total

    @property
    def total_traffic(self) -> int:
        return sum(self.traffic_bytes.values())

    @property
    def total_compulsory(self) -> int:
        return sum(self.compulsory_bytes.values())

    @property
    def normalized_traffic(self) -> float:
        """Traffic relative to compulsory (1.0 = perfect, paper's y-axis)."""
        return self.total_traffic / max(1, self.total_compulsory)

    def normalized_breakdown(self) -> Dict[str, float]:
        """Per-category traffic normalized to total compulsory bytes."""
        compulsory = max(1, self.total_compulsory)
        return {
            category: count / compulsory
            for category, count in self.traffic_bytes.items()
        }

    @property
    def noncompulsory_bytes(self) -> int:
        return max(0, self.total_traffic - self.total_compulsory)

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of peak DRAM bandwidth used over the run."""
        if self.cycles <= 0:
            return 0.0
        peak = self.cycles * self.config.bytes_per_cycle
        return min(1.0, self.total_traffic / peak)

    @property
    def pe_utilization(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.pe_busy_cycles / (self.cycles * self.config.num_pes)

    @property
    def runtime_seconds(self) -> float:
        return self.cycles / self.config.frequency_hz

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s (one MAC = one FLOP, Sec. 6.5)."""
        seconds = self.runtime_seconds
        return self.flops / seconds / 1e9 if seconds > 0 else 0.0

    @property
    def operational_intensity(self) -> float:
        """FLOPs per DRAM byte — the roofline x-axis (Fig. 21)."""
        return self.flops / max(1, self.total_traffic)
