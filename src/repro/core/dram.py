"""Main-memory model: traffic accounting plus a bandwidth-limited server.

Traffic is tracked by data structure — A reads, B reads, C writes, and
partial-output reads/writes — matching the breakdowns of the paper's traffic
figures (Figs. 3, 12, 16, 19, 20). Timing uses a serial server at the
configured bandwidth: each request occupies the channel for bytes/BW cycles,
which is how a fully pipelined HBM interface behaves at saturation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Dict

#: Traffic categories reported by the paper's breakdowns.
CATEGORIES = ("A", "B", "C", "partial_read", "partial_write")

_gap_end = itemgetter(1)


@dataclass
class TrafficCounter:
    """Byte counters per data structure."""

    bytes_by_category: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in CATEGORIES}
    )

    def add(self, category: str, num_bytes: int) -> None:
        if category not in self.bytes_by_category:
            raise ValueError(f"unknown traffic category {category!r}")
        if num_bytes < 0:
            raise ValueError("negative traffic")
        self.bytes_by_category[category] += num_bytes

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())

    @property
    def partial_bytes(self) -> int:
        return (self.bytes_by_category["partial_read"]
                + self.bytes_by_category["partial_write"])

    def breakdown(self) -> Dict[str, int]:
        return dict(self.bytes_by_category)

    def normalized(self, compulsory_bytes: int) -> Dict[str, float]:
        """Traffic relative to the compulsory minimum (paper's y-axes)."""
        if compulsory_bytes <= 0:
            raise ValueError("compulsory traffic must be positive")
        return {
            category: count / compulsory_bytes
            for category, count in self.bytes_by_category.items()
        }


class MemoryInterface:
    """Bandwidth-limited memory channel with traffic accounting.

    Args:
        bytes_per_cycle: Aggregate bandwidth (128 GB/s at 1 GHz -> 128 B/cyc).
        latency_cycles: Access latency added to the first byte of a request.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; when set,
            every transfer publishes a per-stream byte counter
            (``dram/bytes/<category>``) and a time-series sample
            (``dram/stream/<category>``).
    """

    def __init__(self, bytes_per_cycle: float,
                 latency_cycles: int = 80, metrics=None) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency_cycles = latency_cycles
        self.metrics = metrics
        self.traffic = TrafficCounter()
        self._busy_until = 0.0
        #: Idle intervals [start, end) earlier than _busy_until, available
        #: to requests that arrive out of time order (a work-conserving
        #: channel serves whoever has data ready). Kept sorted and
        #: non-overlapping: splits preserve order and the tail gap opened
        #: by a beyond-horizon request starts at the old horizon, past
        #: every existing gap — so consumption can binary-search the
        #: first usable gap and splice only the touched span.
        self._gaps: list = []

    def request(self, category: str, num_bytes: int, now: float) -> float:
        """Issue a transfer at time ``now``; returns its completion time.

        The channel is work-conserving: a request arriving while later
        traffic is already booked slots into earlier idle gaps when
        possible, so simulation-order artifacts cannot fabricate
        serialization. A saturating stream completes exactly at
        ``bytes_per_cycle``.

        Access latency is not added to the completion time: Gamma's
        decoupled fetch (and the baselines' prefetching) issue requests
        ahead of use, so only bandwidth limits progress (Sec. 3.2).
        """
        self.traffic.add(category, num_bytes)
        if self.metrics is not None:
            self.metrics.counter(f"dram/bytes/{category}").inc(num_bytes)
            self.metrics.series(f"dram/stream/{category}").sample(
                now, num_bytes)
        if num_bytes == 0:
            return max(now, min(self._busy_until, now))
        remaining = num_bytes / self.bytes_per_cycle
        finish = now
        gaps = self._gaps
        if gaps and gaps[-1][1] > now:
            # Gaps ending at or before ``now`` are unusable for this
            # request but stay for out-of-order later ones; the sorted
            # invariant makes them a prefix we can skip wholesale.
            i = bisect_right(gaps, now, key=_gap_end)
            j = i
            n = len(gaps)
            replacement = []
            while j < n and remaining > 0:
                gap_start, gap_end = gaps[j]
                usable_start = max(gap_start, now)
                take = min(gap_end - usable_start, remaining)
                remaining -= take
                finish = usable_start + take
                if gap_start < usable_start:
                    replacement.append((gap_start, usable_start))
                if usable_start + take < gap_end:
                    replacement.append((usable_start + take, gap_end))
                j += 1
            gaps[i:j] = replacement
        if remaining > 0:
            tail_start = max(now, self._busy_until)
            if tail_start > self._busy_until:
                gaps.append((self._busy_until, tail_start))
            self._busy_until = tail_start + remaining
            finish = self._busy_until
        return finish

    def request_epoch(self, requests) -> None:
        """Issue a deferred batch of transfers whose finish times are unused.

        The batched simulator core queues result-less charges — C-row
        writes and partial-writeback traffic — as ``(category, bytes,
        issue_time)`` tuples and flushes them here, in original issue
        order, before any request whose completion time feeds back into
        task timing. The channel state (gaps, busy horizon, counters)
        therefore evolves exactly as if each request had been issued
        individually at its recorded time — the hot path below is
        :meth:`request` inlined minus the completion-time bookkeeping
        no caller reads.
        """
        if self.metrics is not None:
            for category, num_bytes, now in requests:
                self.request(category, num_bytes, now)
            return
        counters = self.traffic.bytes_by_category
        bytes_per_cycle = self.bytes_per_cycle
        gaps = self._gaps
        busy = self._busy_until
        for category, num_bytes, now in requests:
            counters[category] += num_bytes
            if num_bytes == 0:
                continue
            remaining = num_bytes / bytes_per_cycle
            if gaps and gaps[-1][1] > now:
                i = bisect_right(gaps, now, key=_gap_end)
                j = i
                n = len(gaps)
                replacement = []
                while j < n and remaining > 0:
                    gap_start, gap_end = gaps[j]
                    usable_start = gap_start if gap_start > now else now
                    take = gap_end - usable_start
                    if take > remaining:
                        take = remaining
                    remaining -= take
                    if gap_start < usable_start:
                        replacement.append((gap_start, usable_start))
                    if usable_start + take < gap_end:
                        replacement.append((usable_start + take, gap_end))
                    j += 1
                gaps[i:j] = replacement
            if remaining > 0:
                tail_start = now if now > busy else busy
                if tail_start > busy:
                    gaps.append((busy, tail_start))
                busy = tail_start + remaining
        self._gaps = gaps
        self._busy_until = busy

    def account(self, category: str, num_bytes: int) -> None:
        """Count traffic without timing (for pure traffic models)."""
        self.traffic.add(category, num_bytes)
        if self.metrics is not None:
            self.metrics.counter(f"dram/bytes/{category}").inc(num_bytes)

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def bandwidth_utilization(self, total_cycles: float) -> float:
        """Fraction of peak bandwidth used over the run."""
        if total_cycles <= 0:
            return 0.0
        peak = total_cycles * self.bytes_per_cycle
        return min(1.0, self.traffic.total_bytes / peak)
