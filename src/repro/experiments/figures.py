"""One function per paper table/figure, producing its data and a text table.

Every function returns a dict with at least:

* ``rows`` — structured per-matrix (or per-config) records, and
* ``table`` — a rendered monospace table matching the paper's artifact.

The benchmarks call these and print the tables; EXPERIMENTS.md records the
measured values against the paper's.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.area import (
    gamma_area,
    pe_area,
    pe_component_fractions,
    merger_area,
    sparch_merger_area_ratio,
)
from repro.analysis.charts import (
    hbar_chart,
    scatter_plot,
    stacked_hbar_chart,
)
from repro.analysis.metrics import amean, gmean
from repro.analysis.report import render_table
from repro.analysis.roofline import ridge_intensity, roofline_point, roofline_series
from repro.config import GammaConfig
from repro.experiments.runner import (
    MODEL_SCALE,
    RUNNER,
    SCALED_FIBERCACHE_BYTES,
    scaled_gamma_config,
)
from repro.matrices import suite
from repro.matrices.stats import MatrixStats

_TRAFFIC_CATEGORIES = ("A", "B", "C", "partial_read", "partial_write")


def _breakdown(name: str, traffic: Dict[str, int]) -> Dict[str, float]:
    compulsory = RUNNER.compulsory_total(name)
    return {k: traffic.get(k, 0) / compulsory for k in _TRAFFIC_CATEGORIES}


def _gamma_breakdown(name: str, variant: str) -> Dict[str, float]:
    return _breakdown(name, RUNNER.gamma(name, variant).traffic_bytes)


def _traffic_row(name: str) -> Dict:
    """Per-matrix O/S/G/GP normalized traffic (Figs. 12 and 16)."""
    row = {"matrix": name}
    row["OuterSPACE"] = sum(_breakdown(
        name, RUNNER.baseline("outerspace", name).traffic_bytes).values())
    row["SpArch"] = sum(_breakdown(
        name, RUNNER.baseline("sparch", name).traffic_bytes).values())
    row["G"] = RUNNER.gamma(name, "none").normalized_traffic
    row["GP"] = RUNNER.gamma(name, "full").normalized_traffic
    return row


def _traffic_figure(names: Sequence[str], figure: str) -> Dict:
    rows = [_traffic_row(name) for name in names]
    rows.append({
        "matrix": "gmean",
        **{
            key: gmean([r[key] for r in rows])
            for key in ("OuterSPACE", "SpArch", "G", "GP")
        },
    })
    table = render_table(
        ["matrix", "OuterSPACE", "SpArch", "G", "GP"],
        [[r["matrix"], r["OuterSPACE"], r["SpArch"], r["G"], r["GP"]]
         for r in rows],
        title=f"{figure}: off-chip traffic normalized to compulsory "
              "(lower is better)",
    )
    gmeans = rows[-1]
    chart = hbar_chart(
        ["OuterSPACE", "SpArch", "G", "GP"],
        [gmeans[k] for k in ("OuterSPACE", "SpArch", "G", "GP")],
        title=f"{figure} gmean traffic (x compulsory, lower is better)",
    )
    return {"rows": rows, "table": table, "chart": chart}


def _speedup_figure(names: Sequence[str], figure: str) -> Dict:
    rows = []
    for name in names:
        gp = RUNNER.gamma(name, "full")
        rows.append({
            "matrix": name,
            "speedup": RUNNER.speedup_over_mkl(name, gp.runtime_seconds),
        })
    rows.append({
        "matrix": "gmean",
        "speedup": gmean([r["speedup"] for r in rows]),
    })
    table = render_table(
        ["matrix", "speedup vs MKL"],
        [[r["matrix"], r["speedup"]] for r in rows],
        precision=1,
        title=f"{figure}: Gamma (with preprocessing) speedup over MKL",
    )
    chart = hbar_chart(
        [r["matrix"] for r in rows],
        [r["speedup"] for r in rows],
        value_format="{:.1f}x",
        title=f"{figure} speedup over MKL",
    )
    return {"rows": rows, "table": table, "chart": chart}


def _bandwidth_figure(names: Sequence[str], figure: str) -> Dict:
    rows = []
    for name in names:
        rows.append({
            "matrix": name,
            "G": RUNNER.gamma(name, "none").bandwidth_utilization,
            "GP": RUNNER.gamma(name, "full").bandwidth_utilization,
        })
    rows.append({
        "matrix": "mean",
        "G": amean([r["G"] for r in rows]),
        "GP": amean([r["GP"] for r in rows]),
    })
    table = render_table(
        ["matrix", "G", "GP"],
        [[r["matrix"], r["G"], r["GP"]] for r in rows],
        title=f"{figure}: memory bandwidth utilization",
    )
    chart = hbar_chart(
        [r["matrix"] for r in rows],
        [r["GP"] for r in rows],
        max_value=1.0,
        title=f"{figure} bandwidth utilization (GP), 1.0 = saturated",
    )
    return {"rows": rows, "table": table, "chart": chart}


def _cache_util_figure(names: Sequence[str], figure: str) -> Dict:
    rows = []
    for name in names:
        util_g = RUNNER.gamma(name, "none").cache_utilization
        util_gp = RUNNER.gamma(name, "full").cache_utilization
        rows.append({
            "matrix": name,
            "G_B": util_g["B"], "G_partial": util_g["partial"],
            "GP_B": util_gp["B"], "GP_partial": util_gp["partial"],
        })
    table = render_table(
        ["matrix", "G:B", "G:partial", "GP:B", "GP:partial"],
        [[r["matrix"], r["G_B"], r["G_partial"], r["GP_B"], r["GP_partial"]]
         for r in rows],
        title=f"{figure}: FiberCache utilization by fiber type",
    )
    return {"rows": rows, "table": table}


# ----------------------------------------------------------------------
# Individual figures
# ----------------------------------------------------------------------
def fig3() -> Dict:
    """Fig. 3: traffic of IP/OS/S/G/GP on gupta2 and web-Google."""
    rows = []
    for name in ("gupta2", "web-Google"):
        for label, traffic in (
            ("IP", RUNNER.baseline("ip", name).traffic_bytes),
            ("OuterSPACE", RUNNER.baseline("outerspace", name).traffic_bytes),
            ("SpArch", RUNNER.baseline("sparch", name).traffic_bytes),
            ("G", RUNNER.gamma(name, "none").traffic_bytes),
            ("GP", RUNNER.gamma(name, "full").traffic_bytes),
        ):
            breakdown = _breakdown(name, traffic)
            rows.append({
                "matrix": name, "design": label, **breakdown,
                "total": sum(breakdown.values()),
            })
    table = render_table(
        ["matrix", "design", "A", "B", "C", "partial", "total"],
        [[r["matrix"], r["design"], r["A"], r["B"], r["C"],
          r["partial_read"] + r["partial_write"], r["total"]]
         for r in rows],
        title="Fig. 3: normalized off-chip traffic (lower is better)",
    )
    chart = stacked_hbar_chart(
        [f"{r['matrix']}/{r['design']}" for r in rows],
        [{"A": r["A"], "B": r["B"], "C": r["C"],
          "partial": r["partial_read"] + r["partial_write"]}
         for r in rows],
        ["A", "B", "C", "partial"],
        title="Fig. 3: traffic breakdown (x compulsory)",
    )
    return {"rows": rows, "table": table, "chart": chart}


def fig10() -> Dict:
    """Fig. 10: gmean speedup over MKL on the common set."""
    designs = {
        "OuterSPACE": lambda n: RUNNER.baseline(
            "outerspace", n).runtime_seconds,
        "SpArch": lambda n: RUNNER.baseline("sparch", n).runtime_seconds,
        "G": lambda n: RUNNER.gamma(n, "none").runtime_seconds,
        "GP": lambda n: RUNNER.gamma(n, "full").runtime_seconds,
    }
    names = suite.common_set_names()
    rows = []
    for label, runtime in designs.items():
        speedups = [
            RUNNER.speedup_over_mkl(name, runtime(name)) for name in names
        ]
        rows.append({"design": label, "gmean_speedup": gmean(speedups)})
    table = render_table(
        ["design", "gmean speedup vs MKL"],
        [[r["design"], r["gmean_speedup"]] for r in rows],
        precision=1,
        title="Fig. 10: gmean speedup over MKL, common set",
    )
    chart = hbar_chart(
        [r["design"] for r in rows],
        [r["gmean_speedup"] for r in rows],
        value_format="{:.1f}x",
        title="Fig. 10: gmean speedup over MKL",
    )
    return {"rows": rows, "table": table, "chart": chart}


def fig11() -> Dict:
    return _speedup_figure(suite.common_set_names(), "Fig. 11")


def fig12() -> Dict:
    return _traffic_figure(suite.common_set_names(), "Fig. 12")


def fig13() -> Dict:
    return _bandwidth_figure(suite.common_set_names(), "Fig. 13")


def fig14() -> Dict:
    return _cache_util_figure(suite.common_set_names(), "Fig. 14")


def fig15() -> Dict:
    return _speedup_figure(suite.extended_set_names(), "Fig. 15")


def fig16() -> Dict:
    return _traffic_figure(suite.extended_set_names(), "Fig. 16")


def fig17() -> Dict:
    return _bandwidth_figure(suite.extended_set_names(), "Fig. 17")


def fig18() -> Dict:
    return _cache_util_figure(suite.extended_set_names(), "Fig. 18")


def fig19() -> Dict:
    """Fig. 19: preprocessing ablation on Maragal_7 and sme3Db."""
    variants = (
        ("G", "none"),
        ("+R", "reorder"),
        ("+R+T", "reorder_tile_all"),
        ("+R+ST", "full"),
    )
    rows = []
    for name in ("Maragal_7", "sme3Db"):
        for label, variant in variants:
            breakdown = _gamma_breakdown(name, variant)
            rows.append({
                "matrix": name, "variant": label, **breakdown,
                "total": sum(breakdown.values()),
            })
    table = render_table(
        ["matrix", "variant", "A", "B", "C", "partial", "total"],
        [[r["matrix"], r["variant"], r["A"], r["B"], r["C"],
          r["partial_read"] + r["partial_write"], r["total"]]
         for r in rows],
        title="Fig. 19: preprocessing ablations, normalized traffic",
    )
    chart = stacked_hbar_chart(
        [f"{r['matrix']}/{r['variant']}" for r in rows],
        [{"A": r["A"], "B": r["B"], "C": r["C"],
          "partial": r["partial_read"] + r["partial_write"]}
         for r in rows],
        ["A", "B", "C", "partial"],
        title="Fig. 19: traffic breakdown (x compulsory)",
    )
    return {"rows": rows, "table": table, "chart": chart}


def fig20() -> Dict:
    """Fig. 20: multi-PE vs single-PE-per-row scheduling on email-Enron."""
    name = "email-Enron"
    multi = RUNNER.gamma(name, "none", multi_pe=True)
    single = RUNNER.gamma(name, "none", multi_pe=False)
    rows = []
    for label, result in (("multi-PE", multi), ("single-PE", single)):
        breakdown = _breakdown(name, result.traffic_bytes)
        rows.append({
            "scheduler": label, **breakdown,
            "total": sum(breakdown.values()),
            "cycles": result.cycles,
        })
    speedup = single.cycles / multi.cycles
    table = render_table(
        ["scheduler", "A", "B", "C", "partial", "total", "cycles"],
        [[r["scheduler"], r["A"], r["B"], r["C"],
          r["partial_read"] + r["partial_write"], r["total"],
          int(r["cycles"])] for r in rows],
        title=(f"Fig. 20: scheduling ablation on {name} "
               f"(multi-PE is {speedup:.2f}x faster)"),
    )
    return {"rows": rows, "table": table, "speedup": speedup}


def fig21() -> Dict:
    """Fig. 21: roofline placement of every matrix, G and GP."""
    points = []
    for name in suite.common_set_names() + suite.extended_set_names():
        for variant in ("none", "full"):
            result = RUNNER.gamma(name, variant)
            point = roofline_point(f"{name}:{variant}", result)
            points.append(point)
    series = roofline_series(points)
    on_roof = sum(1 for p in points if p.efficiency > 0.8)
    table = render_table(
        ["matrix", "intensity", "GFLOP/s", "roof", "efficiency"],
        [[s["name"], s["intensity"], s["gflops"], s["roof"],
          s["efficiency"]] for s in series],
        precision=3,
        title=(f"Fig. 21: roofline (ridge at "
               f"{ridge_intensity(scaled_gamma_config()):.2f} FLOP/byte; "
               f"{on_roof}/{len(points)} points within 80% of the roof)"),
    )
    from repro.analysis.roofline import roof_at

    config = scaled_gamma_config()
    intensities = sorted(p.intensity for p in points)
    roof_curve = [
        (x, roof_at(x, config))
        for x in intensities
    ]
    chart = scatter_plot(
        [(p.intensity, max(p.gflops, 1e-3)) for p in points],
        curve=roof_curve,
        log_x=True, log_y=True,
        title="Fig. 21: roofline — * matrices, - roof",
    )
    return {"rows": series, "table": table, "points": points,
            "chart": chart}


def _sweep_figure(names: Sequence[str], figure: str,
                  configs: Dict[str, GammaConfig]) -> Dict:
    rows = []
    for label, config in configs.items():
        speedups, traffic, bandwidth = [], [], []
        for name in names:
            result = RUNNER.gamma(name, "full", config=config)
            speedups.append(
                RUNNER.speedup_over_mkl(name, result.runtime_seconds))
            traffic.append(result.normalized_traffic)
            bandwidth.append(result.bandwidth_utilization)
        rows.append({
            "config": label,
            "gmean_speedup": gmean(speedups),
            "mean_traffic": amean(traffic),
            "mean_bandwidth": amean(bandwidth),
        })
    table = render_table(
        ["config", "gmean speedup", "mean traffic", "mean bw util"],
        [[r["config"], r["gmean_speedup"], r["mean_traffic"],
          r["mean_bandwidth"]] for r in rows],
        title=figure,
    )
    chart = hbar_chart(
        [r["config"] for r in rows],
        [r["gmean_speedup"] for r in rows],
        value_format="{:.1f}x",
        title=f"{figure} — gmean speedup vs MKL",
    )
    return {"rows": rows, "table": table, "chart": chart}


def _pe_sweep(names: Sequence[str], figure: str) -> Dict:
    configs = {
        str(pes): scaled_gamma_config(num_pes=pes)
        for pes in (8, 16, 32, 64, 128)
    }
    return _sweep_figure(names, f"{figure}: PE-count sweep", configs)


def _cache_sweep(names: Sequence[str], figure: str) -> Dict:
    # Paper sizes 0.75 / 1.5 / 3 / 6 / 12 MB, divided by the model scale.
    configs = {}
    for paper_mb in (0.75, 1.5, 3.0, 6.0, 12.0):
        scaled = int(paper_mb * 1024 * 1024 / MODEL_SCALE)
        configs[f"{paper_mb}MB"] = scaled_gamma_config(
            fibercache_bytes=scaled)
    return _sweep_figure(names, f"{figure}: FiberCache-size sweep", configs)


def fig22() -> Dict:
    return _pe_sweep(suite.common_set_names(), "Fig. 22 (common set)")


def fig23() -> Dict:
    return _pe_sweep(suite.extended_set_names(), "Fig. 23 (extended set)")


def fig24() -> Dict:
    return _cache_sweep(suite.common_set_names(), "Fig. 24 (common set)")


def fig25() -> Dict:
    return _cache_sweep(suite.extended_set_names(), "Fig. 25 (extended set)")


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1() -> Dict:
    """Table 1: the evaluated configuration (and its scaled twin)."""
    paper = GammaConfig()
    scaled = scaled_gamma_config()
    rows = [
        ["PEs", paper.num_pes, scaled.num_pes],
        ["PE radix", paper.radix, scaled.radix],
        ["FiberCache (KB)", paper.fibercache_bytes // 1024,
         scaled.fibercache_bytes // 1024],
        ["FiberCache ways", paper.fibercache_ways, scaled.fibercache_ways],
        ["Banks", paper.fibercache_banks, scaled.fibercache_banks],
        ["Frequency (GHz)", paper.frequency_hz / 1e9,
         scaled.frequency_hz / 1e9],
        ["Memory BW (GB/s)", paper.memory_bandwidth_bytes_per_s / 1e9,
         scaled.memory_bandwidth_bytes_per_s / 1e9],
    ]
    table = render_table(
        ["parameter", "paper", "scaled model"], rows,
        title=f"Table 1: configuration (model scale 1/{MODEL_SCALE})",
    )
    return {"rows": rows, "table": table}


def table2() -> Dict:
    """Table 2: area breakdown from the analytic model vs published."""
    breakdown = gamma_area()
    published = {
        "PEs": 4.8, "Scheduler": 0.11, "FiberCache": 22.6,
        "Crossbars": 3.1, "Total": 30.6,
    }
    model = breakdown.as_dict()
    rows = [
        [component, model[component], published[component]]
        for component in published
    ]
    fractions = pe_component_fractions()
    pe_rows = [
        ["Merger", merger_area(64), fractions["Merger"]],
        ["FP Mul", 0.082, fractions["FP Mul"]],
        ["FP Add", 0.015, fractions["FP Add"]],
        ["Others", 0.008, fractions["Others"]],
        ["PE total", pe_area(), 1.0],
    ]
    table = (
        render_table(["component", "model mm^2", "paper mm^2"], rows,
                     title="Table 2: Gamma area at 45 nm")
        + "\n\n"
        + render_table(["PE component", "mm^2", "fraction"], pe_rows,
                       precision=3)
        + f"\n\nSpArch merger / FP multiplier area ratio: "
          f"{sparch_merger_area_ratio():.0f}x (paper: ~38x)"
    )
    return {"rows": rows, "pe_rows": pe_rows, "table": table}


def _suite_table(specs, title: str) -> Dict:
    rows = []
    for spec in specs:
        matrix = suite.load(spec.name)
        stats = MatrixStats.of(matrix)
        rows.append([
            spec.name,
            spec.paper_rows,
            round(spec.paper_npr, 2),
            stats.rows,
            round(stats.nnz_per_row_mean, 2),
            stats.nnz,
        ])
    table = render_table(
        ["matrix", "paper rows", "paper nnz/row", "rows", "nnz/row", "nnz"],
        rows, title=title,
    )
    return {"rows": rows, "table": table}


def table3() -> Dict:
    return _suite_table(
        suite.COMMON_SET,
        f"Table 3: common set (scaled stand-ins, 1/{MODEL_SCALE} rows)")


def table4() -> Dict:
    return _suite_table(
        suite.EXTENDED_SET,
        f"Table 4: extended set (scaled stand-ins)")


# ----------------------------------------------------------------------
# Extensions beyond the paper's figures
# ----------------------------------------------------------------------
def ext_matraptor() -> Dict:
    """Sec. 7 discussion, quantified: MatRaptor vs Gamma on the common set.

    The paper argues MatRaptor (a concurrent Gustavson accelerator that
    does not reuse B fibers) improves on OuterSPACE by only 1.8x, while
    Gamma achieves 6.6x even without preprocessing.
    """
    from repro.baselines.matraptor import run_matraptor_model
    from repro.experiments.runner import scaled_gamma_config
    from repro.matrices import suite as matrix_suite

    names = matrix_suite.common_set_names()
    rows = []
    for name in names:
        a, b = matrix_suite.operands(name)
        c_nnz = RUNNER.c_nnz(name)
        matraptor = run_matraptor_model(
            a, b, scaled_gamma_config(), c_nnz)
        outerspace = RUNNER.baseline("outerspace", name)
        gamma = RUNNER.gamma(name, "none")
        mkl = RUNNER.baseline("mkl", name)
        rows.append({
            "matrix": name,
            "matraptor_vs_os": (outerspace.runtime_seconds
                                / matraptor.runtime_seconds),
            "gamma_vs_os": (outerspace.runtime_seconds
                            / gamma.runtime_seconds),
            "matraptor_traffic": (matraptor.total_traffic
                                  / RUNNER.compulsory_total(name)),
            "gamma_traffic": gamma.normalized_traffic,
        })
    summary = {
        "matrix": "gmean",
        "matraptor_vs_os": gmean([r["matraptor_vs_os"] for r in rows]),
        "gamma_vs_os": gmean([r["gamma_vs_os"] for r in rows]),
        "matraptor_traffic": gmean([r["matraptor_traffic"] for r in rows]),
        "gamma_traffic": gmean([r["gamma_traffic"] for r in rows]),
    }
    rows.append(summary)
    table = render_table(
        ["matrix", "MatRaptor vs OS", "Gamma vs OS",
         "MatRaptor traffic", "Gamma traffic"],
        [[r["matrix"], r["matraptor_vs_os"], r["gamma_vs_os"],
          r["matraptor_traffic"], r["gamma_traffic"]] for r in rows],
        title=("Extension (Sec. 7): MatRaptor, a Gustavson design without "
               "B reuse"),
    )
    return {"rows": rows, "table": table}


def ext_dataflows() -> Dict:
    """Sec. 2.2 quantified: per-dataflow work on a sparse vs denser input.

    Executes all three dataflows functionally and counts effectual
    multiplies, ineffectual intersection comparisons, and intermediate
    footprints — the algorithmic properties Fig. 2's comparison rests on.
    """
    from repro.baselines.dataflows import compare_dataflows
    from repro.matrices import suite as matrix_suite

    rows = []
    for name in ("p2p-Gnutella31", "wiki-Vote", "poisson3Da"):
        a, b = matrix_suite.operands(name)
        for dataflow, counts in compare_dataflows(a, b).items():
            rows.append({
                "matrix": name,
                "dataflow": dataflow,
                "effectual": counts.effectual_multiplies,
                "ineffectual": counts.ineffectual_comparisons,
                "merge": counts.merge_elements,
                "intermediate": counts.intermediate_elements,
            })
    table = render_table(
        ["matrix", "dataflow", "effectual", "ineffectual", "merge",
         "peak intermediate"],
        [[r["matrix"], r["dataflow"], r["effectual"], r["ineffectual"],
          r["merge"], r["intermediate"]] for r in rows],
        precision=0,
        title=("Extension (Sec. 2.2): work counts of the three spMspM "
               "dataflows"),
    )
    return {"rows": rows, "table": table}


def ext_energy() -> Dict:
    """Extension: energy comparison across designs (parametric model).

    The paper argues from traffic; energy follows it, since spMspM's
    energy is data-movement dominated. Charges the per-operation energy
    model (``repro.analysis.energy``) against each design's simulated
    counters on the common set.
    """
    from repro.analysis.energy import estimate_energy
    from repro.matrices import suite as matrix_suite

    designs = {
        "OuterSPACE": lambda n: RUNNER.baseline("outerspace", n),
        "SpArch": lambda n: RUNNER.baseline("sparch", n),
        "Gamma": lambda n: RUNNER.gamma(n, "none"),
        "Gamma+pre": lambda n: RUNNER.gamma(n, "full"),
    }
    names = matrix_suite.common_set_names()
    rows = []
    for label, fetch in designs.items():
        energies = []
        dram_shares = []
        for name in names:
            result = fetch(name)
            breakdown = estimate_energy(result)
            energies.append(breakdown.total_uj)
            dram_shares.append(breakdown.fractions()["dram"])
        rows.append({
            "design": label,
            "gmean_energy_uj": gmean(energies),
            "mean_dram_share": amean(dram_shares),
        })
    baseline = rows[0]["gmean_energy_uj"]
    for row in rows:
        row["relative"] = row["gmean_energy_uj"] / baseline
    table = render_table(
        ["design", "gmean energy (uJ)", "vs OuterSPACE",
         "DRAM share"],
        [[r["design"], r["gmean_energy_uj"], r["relative"],
          r["mean_dram_share"]] for r in rows],
        title=("Extension: energy across designs, common set "
               "(parametric 45 nm-class model)"),
    )
    chart = hbar_chart(
        [r["design"] for r in rows],
        [r["gmean_energy_uj"] for r in rows],
        title="Extension: gmean energy per spMspM (uJ, lower is better)",
    )
    return {"rows": rows, "table": table, "chart": chart}
