"""Execution tracing for the Gamma simulator.

Attach an :class:`ExecutionTrace` to a :class:`~repro.core.GammaSimulator`
to record one event per executed task — which PE ran it, when, how long,
and what it cost in cache misses. The trace offers the analyses an
architect reaches for first: per-PE utilization, dispatch-gap hunting,
and a phase timeline (the memory-bound vs compute-bound alternation the
paper's roofline discussion describes for gupta2/Ge87H76).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TaskEvent:
    """One executed task.

    Attributes:
        task_id: Unique task id.
        row: Output row the task contributes to.
        level: Task-tree level (0 = leaf).
        is_final: Whether the task emitted a final C row.
        pe: PE the task ran on.
        start: Dispatch time (cycles).
        finish: Completion time (cycles).
        busy_cycles: PE busy time (input elements consumed).
        b_miss_lines: FiberCache misses on B lines this task caused.
        partial_miss_lines: Misses on partial-fiber lines (spill reads).
    """

    task_id: int
    row: int
    level: int
    is_final: bool
    pe: int
    start: float
    finish: float
    busy_cycles: int
    b_miss_lines: int
    partial_miss_lines: int

    @property
    def stall_cycles(self) -> float:
        """Time the task occupied its PE beyond pure compute."""
        return max(0.0, (self.finish - self.start) - self.busy_cycles)


@dataclass
class ExecutionTrace:
    """Recorder plus post-run analyses."""

    events: List[TaskEvent] = field(default_factory=list)

    def record(self, event: TaskEvent) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def makespan(self) -> float:
        return max((e.finish for e in self.events), default=0.0)

    def pe_busy_cycles(self) -> Dict[int, float]:
        """Total busy cycles per PE."""
        busy: Dict[int, float] = {}
        for event in self.events:
            busy[event.pe] = busy.get(event.pe, 0.0) + event.busy_cycles
        return busy

    def pe_utilization(self, num_pes: Optional[int] = None) -> Dict[int, float]:
        """Busy fraction per PE over the makespan."""
        span = max(self.makespan, 1e-12)
        busy = self.pe_busy_cycles()
        pes = range(num_pes) if num_pes else sorted(busy)
        return {pe: busy.get(pe, 0.0) / span for pe in pes}

    def load_imbalance(self) -> float:
        """max/mean busy cycles across PEs (1.0 = perfectly balanced)."""
        busy = list(self.pe_busy_cycles().values())
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean else 1.0

    def total_stall_cycles(self) -> float:
        return sum(e.stall_cycles for e in self.events)

    def tasks_by_level(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for event in self.events:
            counts[event.level] = counts.get(event.level, 0) + 1
        return counts

    def phase_timeline(self, num_windows: int = 20) -> List[Dict]:
        """Windowed compute vs memory activity over the run.

        Splits the makespan into windows; for each, reports busy PE-cycles
        and cache-miss lines attributed by task finish time. Reveals the
        alternating memory-/compute-bound phases of Sec. 6.5.
        """
        if num_windows < 1:
            raise ValueError("need at least one window")
        span = self.makespan
        if span <= 0:
            return []
        width = span / num_windows
        windows = [
            {"start": i * width, "end": (i + 1) * width,
             "busy_cycles": 0.0, "miss_lines": 0, "tasks": 0}
            for i in range(num_windows)
        ]
        for event in self.events:
            index = min(num_windows - 1, int(event.finish / width))
            window = windows[index]
            window["busy_cycles"] += event.busy_cycles
            window["miss_lines"] += (
                event.b_miss_lines + event.partial_miss_lines)
            window["tasks"] += 1
        return windows

    def longest_tasks(self, count: int = 10) -> List[TaskEvent]:
        return sorted(self.events, key=lambda e: e.busy_cycles,
                      reverse=True)[:count]

    def to_jsonl(self, destination, **header_extras) -> int:
        """Export as a schema-versioned JSON-lines event stream.

        One header record followed by one ``task`` record per event; see
        :mod:`repro.obs.events` for the schema and the reader/validator.
        Returns the number of lines written.
        """
        from repro.obs.events import write_jsonl

        return write_jsonl(self, destination, **header_extras)

    def to_rows(self) -> List[Tuple]:
        """Flatten to tuples for CSV export."""
        return [
            (e.task_id, e.row, e.level, int(e.is_final), e.pe, e.start,
             e.finish, e.busy_cycles, e.b_miss_lines,
             e.partial_miss_lines)
            for e in self.events
        ]

    CSV_HEADER = ("task_id", "row", "level", "is_final", "pe", "start",
                  "finish", "busy_cycles", "b_miss_lines",
                  "partial_miss_lines")
