"""High-radix merger: the heart of a Gamma PE (paper Sec. 3.1, Fig. 7).

The hardware is a balanced binary tree of comparator units that consumes one
input element and produces one output element per cycle in steady state.
``HighRadixMerger`` models it at per-element granularity: it emits the
(coordinate, way) stream exactly as the hardware would, and reports the cycle
count from the 1-element/cycle law plus pipeline fill.

``merge_cycles`` is the closed-form timing used by the fast simulator; the
tests assert it matches the detailed model.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np


class MergerRadixError(ValueError):
    """Raised when more input streams are supplied than the merger's radix."""


class HighRadixMerger:
    """A radix-R, 1-element/cycle coordinate merger.

    Args:
        radix: Maximum number of input streams (64 in the paper's design).
    """

    def __init__(self, radix: int = 64) -> None:
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        self.radix = radix

    @property
    def pipeline_depth(self) -> int:
        """Stages in the balanced binary comparator tree: ceil(log2(radix))."""
        return max(1, math.ceil(math.log2(self.radix)))

    def merge(
        self, streams: Sequence[Sequence[int] | np.ndarray]
    ) -> List[Tuple[int, int]]:
        """Merge sorted coordinate streams into one sorted stream with repeats.

        Mirrors the hardware element by element: each cycle the tree selects
        the minimum head coordinate and emits it with its way index. Ties
        resolve to the lowest way, as a left-biased comparator tree does.

        Args:
            streams: Up to ``radix`` strictly-increasing coordinate lists.

        Returns:
            List of (coordinate, way_index) in nondecreasing coordinate order.

        Raises:
            MergerRadixError: If more than ``radix`` streams are given.
        """
        if len(streams) > self.radix:
            raise MergerRadixError(
                f"{len(streams)} streams exceed radix {self.radix}"
            )
        heads = [0] * len(streams)
        output: List[Tuple[int, int]] = []
        while True:
            best_way = -1
            best_coord = None
            for way, stream in enumerate(streams):
                pos = heads[way]
                if pos >= len(stream):
                    continue
                coord = int(stream[pos])
                if best_coord is None or coord < best_coord:
                    best_coord = coord
                    best_way = way
            if best_way < 0:
                return output
            output.append((best_coord, best_way))
            heads[best_way] += 1

    def cycles(self, streams: Sequence[Sequence[int] | np.ndarray]) -> int:
        """Cycle count for merging these streams on this hardware."""
        return merge_cycles(
            sum(len(s) for s in streams), self.pipeline_depth
        )


def merge_cycles(total_input_elements: int, pipeline_depth: int = 6) -> int:
    """Closed-form merge timing: 1 element per cycle plus pipeline fill.

    The merger consumes one input element per cycle in steady state
    (Sec. 3.1); the comparator tree adds ``pipeline_depth`` cycles of fill
    before the first output emerges. An empty merge still costs the fill.
    """
    if total_input_elements < 0:
        raise ValueError("negative element count")
    return total_input_elements + pipeline_depth


def is_sorted_with_repeats(coords: Iterable[int]) -> bool:
    """True when a merged coordinate stream is nondecreasing (test helper)."""
    coords = list(coords)
    return all(a <= b for a, b in zip(coords, coords[1:]))
