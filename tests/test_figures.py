"""Golden snapshot suite for the versioned figure pipeline (tier-1).

The paper's figures are emitted as diffable artifacts — a Vega-Lite
spec (``<id>.vl.json``) plus the tidy ``<id>.csv`` it references, under
a checksummed ``figures_manifest.json`` — and this suite pins the whole
set at the ``quick`` scope as golden files in ``tests/golden/figures``.
Any change that moves a number in any figure fails here *naming the
figure*, so evaluation drift is reviewed as an artifact diff instead of
discovered downstream.

Also pinned: the Vega-Lite spec contract (marks/channels/types the
builders are allowed to emit) in ``tests/golden/vega_lite_schema.json``,
and the repr-stable number formatting that keeps every CSV/JSON byte
identical across runs, platforms, and numpy scalar types.

If a change is *intentional*, regenerate with::

    PYTHONPATH=src python tests/test_figures.py --regenerate

and justify the new goldens in the commit message.
"""

import json
import pathlib
import shutil
import sys

import numpy as np
import pytest

if __package__ in (None, ""):  # invoked as a script for --regenerate
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from repro.analysis.charts import (
    VEGA_LITE_CONTRACT,
    validate_vega_lite_spec,
)
from repro.figures import (
    GOLDEN_SCOPE,
    MANIFEST_FILENAME,
    check_figures,
    figure_ids,
    generate_figures,
    load_manifest,
    validate_manifest,
)
from repro.figures.pipeline import csv_bytes, spec_bytes
from repro.obs.numfmt import canonical, canonical_number, format_cell

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "figures"
SCHEMA_PATH = (pathlib.Path(__file__).parent / "golden"
               / "vega_lite_schema.json")


# ----------------------------------------------------------------------
# The pinned spec contract
# ----------------------------------------------------------------------
class TestSpecContract:
    def test_contract_matches_pinned_schema(self):
        """The builders' Vega-Lite vocabulary is itself golden: adding
        a mark/channel/type is a reviewed schema change, not drift."""
        pinned = json.loads(SCHEMA_PATH.read_text())
        assert pinned == json.loads(json.dumps(VEGA_LITE_CONTRACT)), (
            "VEGA_LITE_CONTRACT diverged from "
            "tests/golden/vega_lite_schema.json; if intentional, "
            "regenerate with PYTHONPATH=src python "
            "tests/test_figures.py --regenerate")

    def test_every_golden_spec_validates(self):
        specs = sorted(GOLDEN_DIR.glob("*.vl.json"))
        assert specs, f"no golden specs in {GOLDEN_DIR}"
        for path in specs:
            spec = json.loads(path.read_text())
            assert validate_vega_lite_spec(spec) > 0, path.name


# ----------------------------------------------------------------------
# The golden figure set
# ----------------------------------------------------------------------
class TestGoldenSet:
    def test_manifest_checksums_hold(self):
        """Every committed artifact matches its manifest checksum."""
        assert validate_manifest(GOLDEN_DIR) == []

    def test_manifest_covers_the_catalog(self):
        manifest = load_manifest(GOLDEN_DIR)
        assert manifest["scope"] == GOLDEN_SCOPE
        assert [e["id"] for e in manifest["figures"]] \
            == sorted(figure_ids())

    @pytest.mark.timeout(900)
    def test_regenerated_set_matches_goldens(self, tmp_path):
        """The drift guard itself: regenerate the full quick-scope set
        and byte-compare (specs, CSVs, manifest) against the goldens."""
        drifts = check_figures(golden_dir=GOLDEN_DIR,
                               workdir=tmp_path / "fresh")
        assert drifts == [], (
            "figure drift vs tests/golden/figures: "
            + "; ".join(drifts)
            + " — if intentional, regenerate with PYTHONPATH=src "
            "python tests/test_figures.py --regenerate")

    def test_check_names_the_perturbed_figure(self, tmp_path):
        """Perturbing one golden byte fails naming that figure id."""
        perturbed = tmp_path / "golden"
        shutil.copytree(GOLDEN_DIR, perturbed)
        target = perturbed / "gmean_speedup.csv"
        target.write_bytes(target.read_bytes() + b"9")
        drifts = check_figures(golden_dir=perturbed,
                               only=["gmean_speedup"],
                               workdir=tmp_path / "fresh")
        assert any(d.startswith("gmean_speedup:") and "data drifted" in d
                   for d in drifts), drifts

    def test_check_reports_missing_golden_file(self, tmp_path):
        perturbed = tmp_path / "golden"
        shutil.copytree(GOLDEN_DIR, perturbed)
        (perturbed / "gmean_speedup.vl.json").unlink()
        drifts = check_figures(golden_dir=perturbed,
                               only=["gmean_speedup"],
                               workdir=tmp_path / "fresh")
        assert any(d.startswith("gmean_speedup:") and "missing" in d
                   for d in drifts), drifts

    def test_check_without_goldens_says_so(self, tmp_path):
        drifts = check_figures(golden_dir=tmp_path / "empty")
        assert len(drifts) == 1
        assert "no golden manifest" in drifts[0]


# ----------------------------------------------------------------------
# repr-stable numbers (the formatter every artifact byte routes through)
# ----------------------------------------------------------------------
class TestNumberFormatting:
    def test_numpy_scalars_match_python_floats(self):
        """Mixed float32/float64/int rows must produce the same bytes
        as their plain-Python equivalents — no dtype leaks into CSVs."""
        third = 1.0 / 3.0
        mixed = [{"label": "a", "value": np.float64(third),
                  "count": np.int64(7)},
                 {"label": "b", "value": float(np.float32(third)),
                  "count": 7}]
        plain = [{"label": "a", "value": third, "count": 7},
                 {"label": "b", "value": float(np.float32(third)),
                  "count": 7}]
        assert csv_bytes(mixed) == csv_bytes(plain)
        assert b"np." not in csv_bytes(mixed)

    def test_float32_precision_noise_is_truncated(self):
        """A float32 round-trip carries ~8 significant digits of real
        information; canonicalization keeps its 12-digit prefix stable
        instead of exposing 17-digit repr noise."""
        noisy = float(np.float32(0.1))  # 0.10000000149011612
        assert canonical_number(np.float32(0.1)) == 0.100000001490
        assert format_cell(canonical_number(noisy)) == "0.10000000149"

    def test_canonicalization_is_idempotent(self):
        payload = {"a": [np.float64(1.0) / 3, np.float32(2.5)],
                   "b": {"x": 1e-17, "y": True, "z": None}}
        once = canonical(payload)
        assert canonical(once) == once
        assert json.dumps(once, sort_keys=True) \
            == json.dumps(canonical(once), sort_keys=True)

    def test_spec_bytes_are_stable(self):
        spec = {"b": 2.0000000000001, "a": [1.5, {"c": np.float64(0.2)}]}
        first = spec_bytes(canonical(spec))
        assert first == spec_bytes(canonical(json.loads(first)))


# ----------------------------------------------------------------------
# Report embedding: figures ride the deterministic summary
# ----------------------------------------------------------------------
def _small_sweep_report(tele_dir, cache_dir, monkeypatch, **kwargs):
    from repro.engine.sweep import SweepPoint, run_sweep
    from repro.obs import report

    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    plan = [SweepPoint("gamma", "wiki-Vote", "none"),
            SweepPoint("gamma", "wiki-Vote", "full"),
            SweepPoint("mkl", "wiki-Vote"),
            SweepPoint("ip", "wiki-Vote")]
    result = run_sweep(plan, **kwargs)
    report.finalize_sweep_telemetry(tele_dir, result)
    return report.generate_report(tele_dir)


class TestReportFigures:
    @pytest.mark.timeout(300)
    def test_serial_and_parallel_reports_identical_with_figures(
            self, tmp_path, monkeypatch):
        """The acceptance bar: reports *and* every figure artifact are
        byte-identical between a serial and a two-worker run."""
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        _small_sweep_report(serial, tmp_path / "cache_s", monkeypatch,
                            serial=True)
        _small_sweep_report(parallel, tmp_path / "cache_p", monkeypatch,
                            workers=2)
        compared = 0
        for name in ("report.md", "report.html"):
            assert (serial / name).read_bytes() \
                == (parallel / name).read_bytes(), name
        for path in sorted((serial / "figures").iterdir()):
            twin = parallel / "figures" / path.name
            assert path.read_bytes() == twin.read_bytes(), path.name
            compared += 1
        assert compared >= 4  # manifest + at least one spec/CSV pair

    @pytest.mark.timeout(300)
    def test_report_embeds_and_links_figures(self, tmp_path,
                                             monkeypatch):
        tele = tmp_path / "tele"
        paths = _small_sweep_report(tele, tmp_path / "cache",
                                    monkeypatch, serial=True)
        assert paths["figures"] == tele / "figures"
        assert validate_manifest(tele / "figures") == []
        md = (tele / "report.md").read_text()
        assert "## Figure: " in md
        assert "figures/sweep_speedup.vl.json" in md
        html = (tele / "report.html").read_text()
        assert "<pre>" in html and "figures/sweep_speedup.csv" in html
        assert "<script" not in html  # still static, self-contained
        for block_file in ("sweep_speedup.vl.json", "sweep_speedup.csv",
                           MANIFEST_FILENAME):
            assert (tele / "figures" / block_file).is_file()

    @pytest.mark.timeout(300)
    def test_no_figures_opt_out(self, tmp_path, monkeypatch):
        from repro.obs import report

        tele = tmp_path / "tele"
        _small_sweep_report(tele, tmp_path / "cache", monkeypatch,
                            serial=True)
        shutil.rmtree(tele / "figures")
        paths = report.generate_report(tele, include_figures=False)
        assert "figures" not in paths
        assert not (tele / "figures").exists()
        assert "## Figure: " not in (tele / "report.md").read_text()


# ----------------------------------------------------------------------
# Regeneration entry point (the committed-golden convention)
# ----------------------------------------------------------------------
def regenerate():
    SCHEMA_PATH.write_text(
        json.dumps(json.loads(json.dumps(VEGA_LITE_CONTRACT)),
                   sort_keys=True, indent=1) + "\n")
    print(f"wrote spec contract to {SCHEMA_PATH}")
    if GOLDEN_DIR.exists():
        shutil.rmtree(GOLDEN_DIR)
    manifest = generate_figures(GOLDEN_DIR, scope=GOLDEN_SCOPE)
    print(f"wrote {manifest['num_figures']} golden figure pairs "
          f"[scope {manifest['scope']}, inputs "
          f"{manifest['inputs_fingerprint'][:12]}] to {GOLDEN_DIR}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
