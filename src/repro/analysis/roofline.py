"""Roofline model for Gamma (paper Sec. 6.5, Fig. 21)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import GammaConfig
from repro.core.result import SimulationResult


@dataclass(frozen=True)
class RooflinePoint:
    """One matrix's position on the roofline plot.

    Attributes:
        name: Matrix name.
        intensity: Operational intensity in FLOPs per DRAM byte (x-axis).
        gflops: Achieved performance (y-axis).
        roof_gflops: The roofline value at this intensity.
    """

    name: str
    intensity: float
    gflops: float
    roof_gflops: float

    @property
    def efficiency(self) -> float:
        """Fraction of the roofline achieved (1.0 = on the roof)."""
        return self.gflops / self.roof_gflops if self.roof_gflops else 0.0


def roof_at(intensity: float, config: Optional[GammaConfig] = None) -> float:
    """The roofline in GFLOP/s at a given operational intensity.

    The sloped segment is memory bandwidth x intensity; the flat segment
    is PE throughput (32 GFLOP/s for the paper's 32-PE system).
    """
    config = config or GammaConfig()
    bandwidth_roof = config.memory_bandwidth_bytes_per_s * intensity
    compute_roof = config.peak_flops
    return min(bandwidth_roof, compute_roof) / 1e9


def ridge_intensity(config: Optional[GammaConfig] = None) -> float:
    """Intensity where the sloped and flat roofs meet."""
    config = config or GammaConfig()
    return config.peak_flops / config.memory_bandwidth_bytes_per_s


def roofline_point(name: str, result) -> RooflinePoint:
    """Place one run on the roofline.

    Accepts a :class:`~repro.core.result.SimulationResult` or a
    :class:`~repro.engine.record.RunRecord` — anything exposing
    ``operational_intensity``, ``gflops``, and ``config``.
    """
    intensity = result.operational_intensity
    return RooflinePoint(
        name=name,
        intensity=intensity,
        gflops=result.gflops,
        roof_gflops=roof_at(intensity, result.config),
    )


def phase_windows(metrics, config: Optional[GammaConfig] = None,
                  num_windows: int = 12) -> List[dict]:
    """Per-phase roofline placement from an instrumented run's timelines.

    Splits the run into time windows and places each on the roofline
    using the *measured* per-window compute (``timeline/busy`` — one
    multiply per busy cycle) and DRAM miss bytes (``timeline/miss_bytes``)
    instead of whole-run aggregates. This exposes the alternating
    memory-/compute-bound phases of the paper's Sec. 6.5 discussion.

    Because timelines are decimated samplers, window totals are
    stride-corrected estimates, not exact counts.

    Args:
        metrics: A :class:`~repro.obs.MetricsRegistry` or serialized blob.
        config: System parameters for the roof; defaults to the blob's
            recorded system, else the paper configuration.
        num_windows: Number of equal time windows.

    Returns:
        One dict per non-empty-run window: start/end cycles, estimated
        busy cycles and miss bytes, intensity, gflops, the roof, and
        which resource binds (``"memory"``/``"compute"``).
    """
    from repro.obs.metrics import as_registry

    registry = as_registry(metrics)
    if registry is None:
        raise ValueError("no metrics attached to this run")
    if num_windows < 1:
        raise ValueError("need at least one window")
    system = registry.info("system", {})
    if config is None:
        config = GammaConfig()
        if system:
            config = GammaConfig(
                num_pes=system.get("num_pes", config.num_pes),
                frequency_hz=system.get(
                    "frequency_hz", config.frequency_hz),
                memory_bandwidth_bytes_per_s=(
                    system.get("bytes_per_cycle", config.bytes_per_cycle)
                    * system.get("frequency_hz", config.frequency_hz)),
            )
    busy = registry.series("timeline/busy")
    miss = registry.series("timeline/miss_bytes")
    span = registry.gauge("run/cycles").value or max(busy.xs, default=0.0)
    if span <= 0 or not len(busy):
        return []
    width = span / num_windows
    windows = [
        {"start": i * width, "end": (i + 1) * width,
         "busy_cycles": 0.0, "miss_bytes": 0.0}
        for i in range(num_windows)
    ]

    def fold(series, key):
        for x, y in zip(series.xs, series.ys):
            index = min(num_windows - 1, int(x / width))
            windows[index][key] += y * series.stride

    fold(busy, "busy_cycles")
    fold(miss, "miss_bytes")
    seconds = width / config.frequency_hz
    for window in windows:
        flops = window["busy_cycles"]  # one multiply per busy cycle
        window["intensity"] = flops / max(1.0, window["miss_bytes"])
        window["gflops"] = flops / seconds / 1e9 if seconds > 0 else 0.0
        window["roof_gflops"] = roof_at(window["intensity"], config)
        bandwidth_roof = (config.memory_bandwidth_bytes_per_s
                          * window["intensity"])
        window["bound"] = ("memory" if bandwidth_roof < config.peak_flops
                           else "compute")
    return windows


def roofline_series(points: List[RooflinePoint]) -> List[dict]:
    """Rows for rendering/printing the Fig. 21 scatter."""
    return [
        {
            "name": p.name,
            "intensity": round(p.intensity, 4),
            "gflops": round(p.gflops, 3),
            "roof": round(p.roof_gflops, 3),
            "efficiency": round(p.efficiency, 3),
        }
        for p in points
    ]
