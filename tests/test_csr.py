"""Unit tests for CsrMatrix / CscMatrix containers."""

import numpy as np
import pytest

from repro.matrices.builder import CooBuilder
from repro.matrices.csr import CscMatrix, CsrMatrix
from repro.matrices.fiber import Fiber


@pytest.fixture
def small():
    # The matrix from paper Fig. 1.
    return CsrMatrix.from_dense(np.array([
        [1.2, 0.0, 0.3, 1.4],
        [0.0, 0.0, 0.7, 0.0],
        [0.0, 0.0, 0.0, 2.5],
    ]))


class TestCsrBasics:
    def test_shape_nnz(self, small):
        assert small.shape == (3, 4)
        assert small.nnz == 5

    def test_offsets_match_figure1(self, small):
        np.testing.assert_array_equal(small.offsets, [0, 3, 4, 5])

    def test_row_fibers(self, small):
        assert list(small.row(0)) == [(0, 1.2), (2, 0.3), (3, 1.4)]
        assert list(small.row(1)) == [(2, 0.7)]
        assert list(small.row(2)) == [(3, 2.5)]

    def test_row_nnz(self, small):
        assert [small.row_nnz(r) for r in range(3)] == [3, 1, 1]
        np.testing.assert_array_equal(small.row_lengths(), [3, 1, 1])

    def test_density(self, small):
        assert small.density == pytest.approx(5 / 12)

    def test_nbytes(self, small):
        assert small.nbytes == 5 * 12 + 4 * 4

    def test_round_trip_dense(self, small):
        np.testing.assert_array_equal(
            CsrMatrix.from_dense(small.to_dense()).to_dense(),
            small.to_dense(),
        )

    def test_iter_rows(self, small):
        rows = dict(small.iter_rows())
        assert len(rows) == 3
        assert len(rows[0]) == 3

    def test_equality(self, small):
        other = CsrMatrix.from_dense(small.to_dense())
        assert small == other
        assert small != CsrMatrix.from_rows([], 4)


class TestCsrValidation:
    def test_bad_offsets_length(self):
        with pytest.raises(ValueError, match="offsets length"):
            CsrMatrix((2, 2), [0, 1], [0], [1.0])

    def test_offsets_do_not_span_nnz(self):
        with pytest.raises(ValueError, match="span"):
            CsrMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_decreasing_interior_offsets(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CsrMatrix((3, 2), [0, 2, 1, 2], [0, 1], [1.0, 2.0])

    def test_out_of_range_coord(self):
        with pytest.raises(ValueError, match="out-of-range"):
            CsrMatrix((1, 2), [0, 1], [5], [1.0])

    def test_unsorted_row(self):
        with pytest.raises(ValueError, match="not strictly increasing"):
            CsrMatrix((1, 4), [0, 2], [2, 0], [1.0, 2.0])


class TestTranspose:
    def test_matches_figure1_csc(self, small):
        # Fig. 1's CSC: offsets [0, 1, 1, 3, 5].
        t = small.transpose()
        np.testing.assert_array_equal(t.offsets, [0, 1, 1, 3, 5])
        assert list(t.row(2)) == [(0, 0.3), (1, 0.7)]

    def test_involution(self, small):
        np.testing.assert_array_equal(
            small.transpose().transpose().to_dense(), small.to_dense()
        )

    def test_random_matches_numpy(self):
        rng = np.random.default_rng(3)
        dense = rng.random((20, 13)) * (rng.random((20, 13)) < 0.2)
        m = CsrMatrix.from_dense(dense)
        np.testing.assert_allclose(m.transpose().to_dense(), dense.T)


class TestPermuteSelect:
    def test_permute_rows(self, small):
        p = small.permute_rows([2, 0, 1])
        assert list(p.row(0)) == [(3, 2.5)]
        assert list(p.row(1)) == [(0, 1.2), (2, 0.3), (3, 1.4)]

    def test_permute_rejects_duplicates(self, small):
        with pytest.raises(ValueError, match="duplicates"):
            small.permute_rows([0, 0, 1])

    def test_permute_rejects_wrong_length(self, small):
        with pytest.raises(ValueError, match="length"):
            small.permute_rows([0, 1])

    def test_select_columns(self, small):
        sub = small.select_columns(2, 4)
        assert sub.shape == small.shape
        assert list(sub.row(0)) == [(2, 0.3), (3, 1.4)]
        assert sub.nnz == 4


class TestScipyInterop:
    def test_from_to_scipy(self, small):
        sp = small.to_scipy()
        back = CsrMatrix.from_scipy(sp)
        assert back == small

    def test_from_scipy_coo(self):
        from scipy import sparse

        coo = sparse.coo_matrix(
            ([1.0, 2.0], ([0, 1], [1, 0])), shape=(2, 2)
        )
        m = CsrMatrix.from_scipy(coo)
        assert m.nnz == 2


class TestCsc:
    def test_columns(self, small):
        csc = CscMatrix.from_csr(small)
        assert csc.shape == (3, 4)
        assert list(csc.column(3)) == [(0, 1.4), (2, 2.5)]
        assert csc.column_nnz(1) == 0

    def test_round_trip(self, small):
        csc = CscMatrix.from_csr(small)
        np.testing.assert_array_equal(
            csc.to_csr().to_dense(), small.to_dense()
        )


class TestCooBuilder:
    def test_duplicates_summed(self):
        b = CooBuilder(2, 2)
        b.add(0, 1, 1.0)
        b.add(0, 1, 2.0)
        m = b.build()
        assert m.nnz == 1
        assert list(m.row(0)) == [(1, 3.0)]

    def test_zero_merge_dropped(self):
        b = CooBuilder(1, 2)
        b.add(0, 0, 1.0)
        b.add(0, 0, -1.0)
        assert b.build().nnz == 0
        b2 = CooBuilder(1, 2)
        b2.add(0, 0, 1.0)
        b2.add(0, 0, -1.0)
        assert b2.build(drop_zeros=False).nnz == 1

    def test_out_of_range(self):
        b = CooBuilder(2, 2)
        with pytest.raises(IndexError):
            b.add(2, 0, 1.0)
        with pytest.raises(IndexError):
            b.add(0, -1, 1.0)

    def test_empty_build(self):
        m = CooBuilder(3, 4).build()
        assert m.shape == (3, 4)
        assert m.nnz == 0

    def test_add_many_matches_add(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 10, 50)
        cols = rng.integers(0, 10, 50)
        vals = rng.random(50)
        b1, b2 = CooBuilder(10, 10), CooBuilder(10, 10)
        b1.add_many(rows, cols, vals)
        for r, c, v in zip(rows, cols, vals):
            b2.add(int(r), int(c), float(v))
        assert b1.build() == b2.build()

    def test_from_rows(self):
        m = CsrMatrix.from_rows(
            [Fiber([1], [2.0]), Fiber.empty(), Fiber([0, 2], [1.0, 3.0])], 3
        )
        assert m.shape == (3, 3)
        assert m.nnz == 3
        assert m.row_nnz(1) == 0
