"""Sparse fibers: the unit of data Gamma streams and merges.

A fiber is an ordered list of (coordinate, value) pairs — a compressed row or
column of a sparse matrix, or a partial output produced by a PE (paper Fig. 1
and Sec. 2.1). Coordinates are strictly increasing.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.config import ELEMENT_BYTES


class Fiber:
    """An immutable sorted list of (coordinate, value) pairs.

    Args:
        coords: Strictly increasing integer coordinates.
        values: Nonzero values, same length as ``coords``.
        check: Validate sortedness and shapes (disable in hot paths).
    """

    __slots__ = ("coords", "values")

    def __init__(
        self,
        coords: Sequence[int] | np.ndarray,
        values: Sequence[float] | np.ndarray,
        check: bool = True,
    ) -> None:
        self.coords = np.asarray(coords, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if check:
            if self.coords.ndim != 1 or self.values.ndim != 1:
                raise ValueError("coords and values must be 1-D")
            if len(self.coords) != len(self.values):
                raise ValueError(
                    f"length mismatch: {len(self.coords)} coords vs "
                    f"{len(self.values)} values"
                )
            if len(self.coords) > 1 and not np.all(np.diff(self.coords) > 0):
                raise ValueError("coordinates must be strictly increasing")
            if len(self.coords) and self.coords[0] < 0:
                raise ValueError("coordinates must be non-negative")

    @staticmethod
    def empty() -> "Fiber":
        return _EMPTY

    @staticmethod
    def from_pairs(pairs: Iterable[Tuple[int, float]]) -> "Fiber":
        """Build a fiber from (coord, value) pairs in any order.

        Duplicate coordinates are summed, and resulting zeros are kept
        (explicit zeros are representable, as in CSR).
        """
        items = sorted(pairs)
        coords: List[int] = []
        values: List[float] = []
        for coord, value in items:
            if coords and coords[-1] == coord:
                values[-1] += value
            else:
                coords.append(coord)
                values.append(value)
        return Fiber(coords, values, check=False)

    def __len__(self) -> int:
        return len(self.coords)

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return zip(self.coords.tolist(), self.values.tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fiber):
            return NotImplemented
        return bool(
            len(self) == len(other)
            and np.array_equal(self.coords, other.coords)
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self) -> str:
        preview = ", ".join(
            f"({c}, {v:g})" for c, v in list(self)[:4]
        )
        suffix = ", ..." if len(self) > 4 else ""
        return f"Fiber([{preview}{suffix}], nnz={len(self)})"

    @property
    def nbytes(self) -> int:
        """Footprint in the paper's storage format (12 B per element)."""
        return len(self) * ELEMENT_BYTES

    def scale(self, factor: float) -> "Fiber":
        """Return this fiber with every value multiplied by ``factor``."""
        return Fiber(self.coords, self.values * factor, check=False)

    def drop_zeros(self, tol: float = 0.0) -> "Fiber":
        """Return a fiber without entries whose |value| <= tol."""
        keep = np.abs(self.values) > tol
        if keep.all():
            return self
        return Fiber(self.coords[keep], self.values[keep], check=False)

    def dot(self, other: "Fiber") -> float:
        """Sparse dot product (the inner-product dataflow's intersection).

        Coordinates are strictly increasing, so the intersection comes
        from one ``np.intersect1d`` call with indices; the products are
        then summed left-to-right in coordinate order, bit-identical to
        the classic two-pointer walk this replaces.
        """
        if not len(self.coords) or not len(other.coords):
            return 0.0
        _, ia, ib = np.intersect1d(
            self.coords, other.coords,
            assume_unique=True, return_indices=True,
        )
        if not len(ia):
            return 0.0
        return float(sum((self.values[ia] * other.values[ib]).tolist()))


_EMPTY = Fiber(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64),
               check=False)


def _make_fiber(coords: np.ndarray, values: np.ndarray) -> Fiber:
    """Hot-path Fiber constructor: trusted pre-typed arrays, no checks."""
    fiber = Fiber.__new__(Fiber)
    fiber.coords = coords
    fiber.values = values
    return fiber


def linear_combine(fibers: Sequence[Fiber],
                   scales: Sequence[float],
                   semiring=None) -> Fiber:
    """Linearly combine fibers: the functional job of one Gamma PE pass.

    Computes ``add_i mul(scales[i], fibers[i])`` as a new fiber whose
    coordinates are the union of the inputs' coordinates (Sec. 3:
    C_m = sum_k a_mk * B_k in the arithmetic semiring).

    Args:
        fibers: Input fibers (rows of B or partial output fibers).
        scales: One scaling factor per fiber (a_mk for B rows, the
            semiring's multiplicative identity for partial outputs).
        semiring: Scalar algebra; None selects ordinary (+, x).

    Returns:
        The combined output fiber. Entries that cancel to exactly the
        semiring's zero are kept, matching hardware behaviour (the
        accumulator emits whatever sum it holds when the coordinate
        changes).
    """
    if len(fibers) != len(scales):
        raise ValueError(
            f"{len(fibers)} fibers but {len(scales)} scaling factors"
        )
    if semiring is not None and not semiring.is_arithmetic:
        if (semiring.add_ufunc is not None
                and sum(len(f.coords) for f in fibers)
                >= _SEMIRING_VECTOR_MIN):
            return _combine_semiring_vectorized(fibers, scales, semiring)
        return _combine_semiring(fibers, scales, semiring)
    nonempty = [(f, s) for f, s in zip(fibers, scales) if len(f.coords)]
    if not nonempty:
        return Fiber.empty()
    if len(nonempty) == 1:
        fiber, scale = nonempty[0]
        return fiber.scale(scale)
    total = sum(len(f.coords) for f, _ in nonempty)
    if total <= _DICT_PATH_MAX:
        # Small merges (the common case for sparse rows) are faster with a
        # plain dict accumulator than with numpy set machinery. Skipping
        # the multiply at scale 1.0 (partial fibers) is bit-safe: IEEE
        # 1.0 * x == x for every x.
        accumulator: dict = {}
        get = accumulator.get
        for fiber, scale in nonempty:
            coords = fiber.coords.tolist()
            values = fiber.values.tolist()
            if scale == 1.0:
                for coord, value in zip(coords, values):
                    accumulator[coord] = get(coord, 0.0) + value
            else:
                for coord, value in zip(coords, values):
                    accumulator[coord] = get(coord, 0.0) + scale * value
        merged_coords = sorted(accumulator)
        return _make_fiber(
            np.asarray(merged_coords, dtype=np.int64),
            np.asarray([accumulator[c] for c in merged_coords],
                       dtype=np.float64),
        )
    # Large merges: stable-sort the concatenation, find group boundaries
    # with one comparison pass (cheaper than np.unique's second sort), and
    # reduce each coordinate group with np.bincount-over-inverse — the
    # same per-coordinate left-to-right accumulation order as the dict
    # path and the old np.add.at scatter, so results are bit-identical.
    all_coords = np.concatenate([f.coords for f, _ in nonempty])
    all_values = np.concatenate(
        [f.values if s == 1.0 else f.values * s for f, s in nonempty]
    )
    order = np.argsort(all_coords, kind="stable")
    sorted_coords = all_coords[order]
    sorted_values = all_values[order]
    flags = np.empty(len(sorted_coords), dtype=bool)
    flags[0] = True
    np.not_equal(sorted_coords[1:], sorted_coords[:-1], out=flags[1:])
    inverse = np.cumsum(flags)
    inverse -= 1
    summed = np.bincount(inverse, weights=sorted_values)
    return _make_fiber(sorted_coords[flags], summed)


#: Largest total element count routed to the dict accumulator; tuned
#: against the array kernel on this interpreter (scripts/bench_hotpath.py
#: tracks the crossover).
_DICT_PATH_MAX = 48
#: Smallest total element count routed to the reduceat kernel for
#: non-arithmetic semirings (below it the scalar dict loop wins).
_SEMIRING_VECTOR_MIN = 48


def _combine_semiring(fibers: Sequence[Fiber], scales: Sequence[float],
                      semiring) -> Fiber:
    """Generic linear combination under an arbitrary semiring.

    The scalar oracle: one ``mul`` per element, one ``add`` per duplicate
    coordinate, folded in fiber order. Works for any semiring; the
    vectorized kernel below must match it bit-for-bit whenever
    ``add_ufunc`` is declared.
    """
    accumulator: dict = {}
    add, mul = semiring.add, semiring.mul
    for fiber, scale in zip(fibers, scales):
        for coord, value in zip(fiber.coords.tolist(),
                                fiber.values.tolist()):
            product = mul(scale, value)
            if coord in accumulator:
                accumulator[coord] = add(accumulator[coord], product)
            else:
                accumulator[coord] = product
    coords = sorted(accumulator)
    return Fiber(
        np.asarray(coords, dtype=np.int64),
        np.asarray([accumulator[c] for c in coords], dtype=np.float64),
        check=False,
    )


def _combine_semiring_vectorized(fibers: Sequence[Fiber],
                                 scales: Sequence[float],
                                 semiring) -> Fiber:
    """Array kernel for semirings whose ``add`` is a true ufunc.

    Products come from one ``mul_array`` call per fiber; coordinate
    groups of the stable-sorted concatenation are reduced with a single
    ``add_ufunc.reduceat`` (e.g. ``np.minimum`` for tropical,
    ``np.maximum`` as the any-reduction for boolean 0/1 values).
    Group-internal order equals fiber order, so the fold sequence —
    hence the result, bit-for-bit — matches ``_combine_semiring``.
    """
    mul_array = semiring.mul_array
    coord_parts = []
    value_parts = []
    for fiber, scale in zip(fibers, scales):
        if len(fiber.coords):
            coord_parts.append(fiber.coords)
            value_parts.append(np.asarray(
                mul_array(scale, fiber.values), dtype=np.float64))
    if not coord_parts:
        return Fiber.empty()
    all_coords = np.concatenate(coord_parts)
    all_values = np.concatenate(value_parts)
    order = np.argsort(all_coords, kind="stable")
    sorted_coords = all_coords[order]
    sorted_values = all_values[order]
    flags = np.empty(len(sorted_coords), dtype=bool)
    flags[0] = True
    np.not_equal(sorted_coords[1:], sorted_coords[:-1], out=flags[1:])
    starts = np.flatnonzero(flags)
    reduced = semiring.add_ufunc.reduceat(sorted_values, starts)
    return _make_fiber(sorted_coords[flags],
                       np.asarray(reduced, dtype=np.float64))
