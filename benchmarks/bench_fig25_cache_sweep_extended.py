"""Fig. 25: FiberCache-size sweep on the extended set.

Paper: the denser extended set leans harder on capacity — small caches
degrade sharply (traffic up to ~8x compulsory at 0.75 MB).
"""


def test_fig25(run_figure):
    result = run_figure("fig25")
    rows = {r["config"]: r for r in result["rows"]}

    assert (rows["12.0MB"]["gmean_speedup"]
            >= rows["0.75MB"]["gmean_speedup"])
    # Capacity starvation hits the extended set harder than the common.
    assert (rows["0.75MB"]["mean_traffic"]
            > 1.5 * rows["12.0MB"]["mean_traffic"])
