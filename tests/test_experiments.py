"""Tests for the experiment harness (registry + runner, on small inputs).

These use the smallest suite matrices so the full battery stays fast; the
benchmarks exercise the complete sweeps.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    all_experiment_ids,
    get_experiment,
    scaled_cpu_config,
    scaled_gamma_config,
)
from repro.experiments.runner import (
    MODEL_SCALE,
    ExperimentRunner,
    preprocess_options,
)


class TestRegistry:
    def test_every_figure_and_table_present(self):
        ids = set(all_experiment_ids())
        expected = {f"fig{i}" for i in [3] + list(range(10, 26))}
        expected |= {f"table{i}" for i in range(1, 5)}
        expected |= {"ext_matraptor", "ext_dataflows", "ext_energy"}
        assert ids == expected

    def test_lookup(self):
        exp = get_experiment("fig12")
        assert "traffic" in exp.title.lower()
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_claims_recorded(self):
        for exp in EXPERIMENTS:
            assert exp.paper_claim
            assert exp.title


class TestScaledConfigs:
    def test_fibercache_scaled(self):
        config = scaled_gamma_config()
        assert config.fibercache_bytes == 3 * 1024 * 1024 // MODEL_SCALE
        assert config.num_pes == 32
        assert config.radix == 64

    def test_overrides(self):
        config = scaled_gamma_config(num_pes=8)
        assert config.num_pes == 8
        assert config.fibercache_bytes == 3 * 1024 * 1024 // MODEL_SCALE

    def test_cpu_llc_scaled(self):
        assert scaled_cpu_config().llc_bytes == 8 * 1024 * 1024 // MODEL_SCALE

    def test_preprocess_variants(self):
        assert preprocess_options("none") is None
        full = preprocess_options("full")
        assert full.reorder and full.tile and full.selective
        tile_all = preprocess_options("reorder_tile_all")
        assert not tile_all.selective
        with pytest.raises(ValueError, match="variant"):
            preprocess_options("bogus")


class TestRunnerCaching:
    def test_gamma_memoized(self):
        runner = ExperimentRunner()
        first = runner.gamma("wiki-Vote")
        second = runner.gamma("wiki-Vote")
        assert first is second

    def test_distinct_configs_not_conflated(self):
        runner = ExperimentRunner()
        base = runner.gamma("wiki-Vote")
        more_pes = runner.gamma(
            "wiki-Vote", config=scaled_gamma_config(num_pes=8))
        assert base is not more_pes
        assert base.config.num_pes != more_pes.config.num_pes

    def test_baseline_models(self):
        runner = ExperimentRunner()
        for model in ("outerspace", "sparch", "ip", "mkl"):
            result = runner.baseline(model, "wiki-Vote")
            assert result.total_traffic > 0
        with pytest.raises(ValueError, match="unknown baseline"):
            runner.baseline("tpu", "wiki-Vote")

    def test_speedup_positive(self):
        runner = ExperimentRunner()
        result = runner.gamma("wiki-Vote")
        assert runner.speedup_over_mkl(
            "wiki-Vote", result.runtime_seconds) > 1.0

    def test_compulsory_breakdown(self):
        runner = ExperimentRunner()
        compulsory = runner.compulsory("wiki-Vote")
        assert set(compulsory) == {"A", "B", "C"}
        assert runner.compulsory_total("wiki-Vote") == sum(
            compulsory.values())


class TestHeadlineShapes:
    """Spot-check paper-shape invariants on one small matrix per set."""

    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner()

    def test_gamma_beats_outer_product_traffic(self, runner):
        for name in ("wiki-Vote", "poisson3Da"):
            gamma = runner.gamma(name).total_traffic
            outerspace = runner.baseline("outerspace", name).total_traffic
            assert gamma < outerspace

    def test_gamma_faster_than_mkl(self, runner):
        for name in ("wiki-Vote", "poisson3Da", "msc10848"):
            result = runner.gamma(name, "full")
            assert runner.speedup_over_mkl(
                name, result.runtime_seconds) > 2.0

    def test_preprocessing_never_hurts_traffic_much(self, runner):
        for name in ("wiki-Vote", "poisson3Da", "msc10848"):
            g = runner.gamma(name, "none").normalized_traffic
            gp = runner.gamma(name, "full").normalized_traffic
            assert gp <= g * 1.1
