"""Extension: quantifying the Sec. 2.2 dataflow comparison (Fig. 2).

Runs the three dataflows functionally on sparse suite matrices and checks
the algorithmic claims behind the paper's motivation.
"""


def test_ext_dataflows(run_figure):
    result = run_figure("ext_dataflows")
    rows = {(r["matrix"], r["dataflow"]): r for r in result["rows"]}
    matrices = {m for m, _ in rows}

    for matrix in matrices:
        inner = rows[(matrix, "inner_product")]
        outer = rows[(matrix, "outer_product")]
        gustavson = rows[(matrix, "gustavson")]
        # Useful work is dataflow-independent.
        assert (inner["effectual"] == outer["effectual"]
                == gustavson["effectual"])
        # Inner product pays heavily for ineffectual intersections on
        # these sparse matrices.
        assert inner["ineffectual"] > 2 * inner["effectual"], matrix
        # Outer product's buffered partial matrices dwarf Gustavson's
        # single-row accumulator.
        assert (outer["intermediate"]
                > 10 * gustavson["intermediate"]), matrix
        # Gustavson does no intersection work at all.
        assert gustavson["ineffectual"] == 0
