"""ASCII chart rendering and chart-data extraction for the figures.

The evaluation artifacts are *figures*; these helpers render them as
terminal bar charts and scatter plots so benchmark output is directly
comparable to the paper's plots without a plotting dependency.

The second half of the module is the **chart-data layer** used by the
versioned figure pipeline (:mod:`repro.figures`): a figure builds one
structured ``chart_data`` dict (:func:`bar_data`, :func:`multi_bar_data`,
:func:`stacked_bar_data`, :func:`scatter_data`) and *both* presentations
are derived from it — :func:`render_chart` dispatches to the ASCII
renderers above, while :func:`chart_csv_rows` and
:func:`vega_lite_spec` emit the tidy CSV rows and the Vega-Lite JSON
spec. Because there is a single extraction point, the terminal chart
and the committed artifact can never disagree about the data. Specs are
plain JSON dicts (no plotting dependency) checked by
:func:`validate_vega_lite_spec` against the pinned schema contract.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.numfmt import canonical

_BAR_FILL = "#"
_STACK_FILLS = "#=+:*o"


def hbar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    value_format: str = "{:.2f}",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title
    peak = max_value if max_value is not None else max(values)
    peak = max(peak, 1e-12)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar_len = int(round(width * min(value, peak) / peak))
        bar = _BAR_FILL * bar_len
        overflow = ">" if value > peak else ""
        lines.append(
            f"{str(label):>{label_width}} |{bar}{overflow} "
            + value_format.format(value)
        )
    return "\n".join(lines)


def stacked_hbar_chart(
    labels: Sequence[str],
    stacks: Sequence[Dict[str, float]],
    categories: Sequence[str],
    width: int = 50,
    title: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Stacked horizontal bars (the paper's traffic-breakdown figures).

    Each category gets a distinct fill character, listed in the legend.
    """
    if len(labels) != len(stacks):
        raise ValueError("labels and stacks must have equal length")
    if len(categories) > len(_STACK_FILLS):
        raise ValueError(
            f"at most {len(_STACK_FILLS)} categories supported")
    totals = [sum(stack.get(c, 0.0) for c in categories)
              for stack in stacks]
    peak = max_value if max_value is not None else max(totals, default=0.0)
    peak = max(peak, 1e-12)
    label_width = max((len(str(label)) for label in labels), default=0)
    lines = [title] if title else []
    legend = "  ".join(
        f"{fill}={category}"
        for fill, category in zip(_STACK_FILLS, categories)
    )
    lines.append(f"legend: {legend}")
    for label, stack, total in zip(labels, stacks, totals):
        bar = ""
        for fill, category in zip(_STACK_FILLS, categories):
            segment = stack.get(category, 0.0)
            bar += fill * int(round(width * min(segment, peak) / peak))
        overflow = ">" if total > peak else ""
        lines.append(
            f"{str(label):>{label_width}} |{bar}{overflow} {total:.2f}"
        )
    return "\n".join(lines)


def scatter_plot(
    points: Sequence[Tuple[float, float]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    log_x: bool = False,
    log_y: bool = False,
    marker: str = "*",
    curve: Optional[Sequence[Tuple[float, float]]] = None,
) -> str:
    """ASCII scatter plot, optionally log-scaled, with an overlay curve.

    Used for the roofline figure: ``curve`` draws the roof itself.
    """
    if not points:
        return title

    def transform(value: float, log: bool) -> float:
        if log:
            if value <= 0:
                raise ValueError("log scale requires positive values")
            return math.log10(value)
        return value

    everything = list(points) + list(curve or [])
    xs = [transform(x, log_x) for x, _ in everything]
    ys = [transform(y, log_y) for _, y in everything]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, symbol: str) -> None:
        col = int((transform(x, log_x) - x_lo) / x_span * (width - 1))
        row = int((transform(y, log_y) - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = symbol

    for x, y in curve or []:
        place(x, y, "-")
    for x, y in points:
        place(x, y, marker)

    lines = [title] if title else []
    axis_note = []
    if log_x:
        axis_note.append("log x")
    if log_y:
        axis_note.append("log y")
    if axis_note:
        lines.append(f"({', '.join(axis_note)})")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f" x: [{min(x for x, _ in points):.3g}, "
        f"{max(x for x, _ in points):.3g}]  "
        f"y: [{min(y for _, y in points):.3g}, "
        f"{max(y for _, y in points):.3g}]"
    )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Grouped horizontal bars: one block per group, one bar per series."""
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    peak = max(
        (v for values in series.values() for v in values), default=0.0)
    peak = max(peak, 1e-12)
    series_width = max(len(name) for name in series)
    lines = [title] if title else []
    for index, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[index]
            bar = _BAR_FILL * int(round(width * value / peak))
            lines.append(f"  {name:>{series_width}} |{bar} {value:.2f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chart-data layer: one structure, two presentations
# ----------------------------------------------------------------------
#: The Vega-Lite schema every emitted spec declares.
VEGA_LITE_SCHEMA_URL = "https://vega.github.io/schema/vega-lite/v5.json"

#: The mark/type/channel vocabulary the pipeline is allowed to emit.
#: Pinned in ``tests/golden/vega_lite_schema.json`` so a change to the
#: spec surface is an explicit golden update, same discipline as
#: ``obs/traceevent.py``.
VEGA_LITE_CONTRACT: Dict[str, Any] = {
    "schema_url": VEGA_LITE_SCHEMA_URL,
    "marks": ["bar", "line", "point"],
    "field_types": ["nominal", "quantitative"],
    "channels": ["color", "x", "y", "yOffset"],
    "scale_types": ["linear", "log"],
}

_CHART_KINDS = ("bar", "multi_bar", "stacked_bar", "scatter")


def bar_data(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str = "",
    label_field: str = "label",
    value_field: str = "value",
    value_format: str = "{:.2f}",
    max_value: Optional[float] = None,
) -> Dict[str, Any]:
    """Chart data for a simple labelled bar chart (one value per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    return canonical({
        "kind": "bar",
        "title": title,
        "label_field": label_field,
        "value_field": value_field,
        "labels": [str(label) for label in labels],
        "values": list(values),
        "value_format": value_format,
        "max_value": max_value,
    })


def multi_bar_data(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    *,
    title: str = "",
    label_field: str = "label",
    series_field: str = "series",
    value_field: str = "value",
) -> Dict[str, Any]:
    """Chart data for grouped bars: one bar per (label, series) pair."""
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels")
    return canonical({
        "kind": "multi_bar",
        "title": title,
        "label_field": label_field,
        "series_field": series_field,
        "value_field": value_field,
        "labels": [str(label) for label in labels],
        "series": {str(name): list(values)
                   for name, values in series.items()},
    })


def stacked_bar_data(
    labels: Sequence[str],
    stacks: Sequence[Dict[str, float]],
    categories: Sequence[str],
    *,
    title: str = "",
    label_field: str = "label",
    category_field: str = "category",
    value_field: str = "value",
    max_value: Optional[float] = None,
) -> Dict[str, Any]:
    """Chart data for stacked bars (the traffic-breakdown figures)."""
    if len(labels) != len(stacks):
        raise ValueError("labels and stacks must have equal length")
    return canonical({
        "kind": "stacked_bar",
        "title": title,
        "label_field": label_field,
        "category_field": category_field,
        "value_field": value_field,
        "labels": [str(label) for label in labels],
        "categories": [str(category) for category in categories],
        "stacks": [
            {str(category): stack.get(category, 0.0)
             for category in categories}
            for stack in stacks
        ],
        "max_value": max_value,
    })


def scatter_data(
    points: Sequence[Tuple[float, float]],
    *,
    names: Optional[Sequence[str]] = None,
    curve: Optional[Sequence[Tuple[float, float]]] = None,
    title: str = "",
    x_field: str = "x",
    y_field: str = "y",
    series_field: str = "series",
    point_series: str = "points",
    curve_series: str = "roof",
    log_x: bool = False,
    log_y: bool = False,
) -> Dict[str, Any]:
    """Chart data for a scatter plot with an optional overlay curve.

    ``names`` optionally labels each point (carried into the CSV as a
    ``name`` column; the ASCII renderer ignores it).
    """
    if names is not None and len(names) != len(points):
        raise ValueError("names and points must have equal length")
    return canonical({
        "kind": "scatter",
        "title": title,
        "x_field": x_field,
        "y_field": y_field,
        "series_field": series_field,
        "point_series": point_series,
        "curve_series": curve_series,
        "points": [[x, y] for x, y in points],
        "names": [str(name) for name in names] if names is not None
        else None,
        "curve": [[x, y] for x, y in curve] if curve is not None else None,
        "log_x": bool(log_x),
        "log_y": bool(log_y),
    })


def render_chart(chart: Dict[str, Any]) -> str:
    """The ASCII rendering of a chart-data dict.

    Dispatches to the terminal renderers above, so the text chart in the
    report and the Vega-Lite artifact are two views of the same data.
    """
    kind = chart.get("kind")
    if kind == "bar":
        return hbar_chart(
            chart["labels"], chart["values"], title=chart["title"],
            value_format=chart.get("value_format", "{:.2f}"),
            max_value=chart.get("max_value"))
    if kind == "multi_bar":
        return grouped_bar_chart(
            chart["labels"], chart["series"], title=chart["title"])
    if kind == "stacked_bar":
        return stacked_hbar_chart(
            chart["labels"],
            [dict(stack) for stack in chart["stacks"]],
            chart["categories"], title=chart["title"],
            max_value=chart.get("max_value"))
    if kind == "scatter":
        return scatter_plot(
            [tuple(point) for point in chart["points"]],
            curve=([tuple(point) for point in chart["curve"]]
                   if chart.get("curve") else None),
            log_x=chart.get("log_x", False),
            log_y=chart.get("log_y", False),
            title=chart["title"])
    raise ValueError(f"unknown chart kind {kind!r}")


def chart_csv_rows(chart: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The tidy (long-form) rows of a chart-data dict.

    One row per plotted datum, in a deterministic order (label-major,
    then series/category in declared order). These rows are exactly what
    the figure pipeline writes to the ``.csv`` next to each spec and
    what the spec's ``data.url`` points at.
    """
    kind = chart.get("kind")
    if kind == "bar":
        return [
            {chart["label_field"]: label, chart["value_field"]: value}
            for label, value in zip(chart["labels"], chart["values"])
        ]
    if kind == "multi_bar":
        return [
            {
                chart["label_field"]: label,
                chart["series_field"]: name,
                chart["value_field"]: values[index],
            }
            for index, label in enumerate(chart["labels"])
            for name, values in chart["series"].items()
        ]
    if kind == "stacked_bar":
        return [
            {
                chart["label_field"]: label,
                chart["category_field"]: category,
                chart["value_field"]: stack.get(category, 0.0),
            }
            for label, stack in zip(chart["labels"], chart["stacks"])
            for category in chart["categories"]
        ]
    if kind == "scatter":
        rows = []
        names = chart.get("names")
        for index, (x, y) in enumerate(chart["points"]):
            row = {chart["series_field"]: chart["point_series"]}
            if names is not None:
                row["name"] = names[index]
            row[chart["x_field"]] = x
            row[chart["y_field"]] = y
            rows.append(row)
        for x, y in chart.get("curve") or []:
            row = {chart["series_field"]: chart["curve_series"]}
            if names is not None:
                row["name"] = ""
            row[chart["x_field"]] = x
            row[chart["y_field"]] = y
            rows.append(row)
        return rows
    raise ValueError(f"unknown chart kind {kind!r}")


def _axis(field: str, field_type: str, *, sort=False, log=False,
          stack=None, title: Optional[str] = None) -> Dict[str, Any]:
    encoding: Dict[str, Any] = {"field": field, "type": field_type}
    if sort is None:
        encoding["sort"] = None
    if log:
        encoding["scale"] = {"type": "log"}
    if stack is not None:
        encoding["stack"] = stack
    if title is not None:
        encoding["title"] = title
    return encoding


def vega_lite_spec(
    chart: Dict[str, Any],
    data_url: Optional[str] = None,
    description: str = "",
) -> Dict[str, Any]:
    """The Vega-Lite v5 spec (a plain JSON dict) of a chart-data dict.

    ``data_url`` references the sibling CSV written by the pipeline
    (the committed-artifact form); without it the rows are inlined under
    ``data.values`` (handy for notebooks). Category orders use
    ``"sort": null`` so the artifact preserves the figure's declared
    order instead of alphabetizing.
    """
    kind = chart.get("kind")
    if kind not in _CHART_KINDS:
        raise ValueError(f"unknown chart kind {kind!r}")
    if data_url is not None:
        data: Dict[str, Any] = {
            "url": data_url, "format": {"type": "csv"}}
    else:
        data = {"values": chart_csv_rows(chart)}
    spec: Dict[str, Any] = {
        "$schema": VEGA_LITE_SCHEMA_URL,
        "description": description or chart.get("title", ""),
        "data": data,
    }
    if kind == "bar":
        spec["mark"] = "bar"
        spec["encoding"] = {
            "y": _axis(chart["label_field"], "nominal", sort=None),
            "x": _axis(chart["value_field"], "quantitative"),
        }
    elif kind == "multi_bar":
        spec["mark"] = "bar"
        spec["encoding"] = {
            "y": _axis(chart["label_field"], "nominal", sort=None),
            "yOffset": _axis(chart["series_field"], "nominal",
                             sort=None),
            "x": _axis(chart["value_field"], "quantitative"),
            "color": _axis(chart["series_field"], "nominal", sort=None),
        }
    elif kind == "stacked_bar":
        spec["mark"] = "bar"
        spec["encoding"] = {
            "y": _axis(chart["label_field"], "nominal", sort=None),
            "x": _axis(chart["value_field"], "quantitative",
                       stack="zero"),
            "color": _axis(chart["category_field"], "nominal",
                           sort=None),
        }
    elif kind == "scatter":
        point_layer = {
            "mark": "point",
            "transform": [{
                "filter": (f"datum.{chart['series_field']} == "
                           f"'{chart['point_series']}'"),
            }],
            "encoding": {
                "x": _axis(chart["x_field"], "quantitative",
                           log=chart.get("log_x", False)),
                "y": _axis(chart["y_field"], "quantitative",
                           log=chart.get("log_y", False)),
            },
        }
        if not chart.get("curve"):
            spec["mark"] = point_layer["mark"]
            spec["encoding"] = point_layer["encoding"]
            return spec
        curve_layer = {
            "mark": "line",
            "transform": [{
                "filter": (f"datum.{chart['series_field']} == "
                           f"'{chart['curve_series']}'"),
            }],
            "encoding": {
                "x": _axis(chart["x_field"], "quantitative",
                           log=chart.get("log_x", False)),
                "y": _axis(chart["y_field"], "quantitative",
                           log=chart.get("log_y", False)),
            },
        }
        spec["layer"] = [curve_layer, point_layer]
    return spec


def _validate_encoding(encoding: Dict[str, Any], where: str) -> int:
    if not isinstance(encoding, dict) or not encoding:
        raise ValueError(f"{where}: encoding must be a non-empty dict")
    for channel, axis in encoding.items():
        if channel not in VEGA_LITE_CONTRACT["channels"]:
            raise ValueError(
                f"{where}: channel {channel!r} outside the pinned "
                "contract")
        if not isinstance(axis, dict) or "field" not in axis \
                or "type" not in axis:
            raise ValueError(
                f"{where}: channel {channel!r} needs field and type")
        if axis["type"] not in VEGA_LITE_CONTRACT["field_types"]:
            raise ValueError(
                f"{where}: field type {axis['type']!r} outside the "
                "pinned contract")
        scale = axis.get("scale", {})
        if scale and scale.get("type") not in \
                VEGA_LITE_CONTRACT["scale_types"]:
            raise ValueError(
                f"{where}: scale type {scale.get('type')!r} outside "
                "the pinned contract")
    return len(encoding)


def validate_vega_lite_spec(spec: Dict[str, Any]) -> int:
    """Structural validation of an emitted spec; returns channels seen.

    Not a full Vega-Lite validator (that would need the upstream JSON
    schema); checks the invariants the pipeline promises — declared v5
    schema, a data source (url or inline values), and marks/encodings
    drawn from :data:`VEGA_LITE_CONTRACT`. Raises ``ValueError`` on the
    first violation.
    """
    if spec.get("$schema") != VEGA_LITE_SCHEMA_URL:
        raise ValueError("spec must declare the pinned Vega-Lite schema")
    data = spec.get("data")
    if not isinstance(data, dict) or not ("url" in data
                                          or "values" in data):
        raise ValueError("spec needs data.url or data.values")
    layers = spec.get("layer")
    units = layers if layers is not None else [spec]
    if not units:
        raise ValueError("spec has an empty layer list")
    channels = 0
    for index, unit in enumerate(units):
        where = f"layer[{index}]" if layers is not None else "spec"
        mark = unit.get("mark")
        if mark not in VEGA_LITE_CONTRACT["marks"]:
            raise ValueError(
                f"{where}: mark {mark!r} outside the pinned contract")
        channels += _validate_encoding(unit.get("encoding"), where)
    return channels
