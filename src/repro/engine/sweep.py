"""Sweep planner and fault-tolerant process-parallel executor.

The paper's figures are a cross-product — models x matrices x
preprocessing variants x hardware configs (Figs. 10-25) — and each point
is independent, so the sweep engine enumerates them as
:class:`SweepPoint` values, skips the ones already in the disk cache, and
executes the misses across worker processes. The disk cache is the
cross-process result store: workers write records atomically and
checksum-validated (see :mod:`repro.engine.diskcache`), so a crashed or
raced sweep never leaves torn entries and a re-run only pays for what is
missing.

Campaign-scale sweeps (thousands of points) cannot afford one bad point
taking the run down, so execution is governed by a :class:`SweepPolicy`:

* **timeouts** — a point that exceeds ``timeout_seconds`` has its worker
  process killed (the only reliable cancellation for a hung or wedged
  native call) and the slot respawned;
* **bounded retries** — failed attempts (crash, hard worker death,
  timeout, exception) are retried up to ``max_retries`` times with
  exponential backoff and deterministic jitter;
* **quarantine** — a point that exhausts its retries is quarantined with
  its failure history and the sweep *completes*, returning partial
  results (:class:`SweepResult`) instead of aborting;
* **checkpoint/resume** — progress and quarantine state persist through
  the disk cache, so an interrupted sweep resumed with ``resume=True``
  (CLI ``--resume``) recomputes nothing already cached and does not
  re-burn retries on points already known bad.

``execute_point`` is the single entry point for evaluating one point; the
serial facade (:class:`repro.experiments.ExperimentRunner`) and the
parallel workers both go through it, which is what makes parallel,
retried, or resumed execution produce byte-identical records to a cold
serial run — the guarantee the chaos suite (``tests/test_chaos.py``)
enforces under injected faults.

When telemetry is active (:mod:`repro.obs.spans`, CLI ``--trace-dir``)
the engine publishes its whole lifecycle into the span stream: a
``sweep/point`` span per attempt (parent side, carrying slot/outcome), a
``point/execute`` span per computed point (worker side), ``sweep/<stat>``
instants mirroring every ``SweepResult.stats`` increment (emitted at the
single place the stat increments, so counts agree exactly),
``sweep/backoff`` delays, ``sweep/timeout_kill``, and ``sweep/checkpoint``
writes. ``collect_metrics=True`` (CLI ``--metrics``) additionally attaches
a :class:`~repro.obs.MetricsRegistry` to every computed point and stores
the blob on its record for the fleet roll-up. Both are strictly opt-in.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import itertools
import multiprocessing
import multiprocessing.connection
import os
import random
import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.config import CpuConfig, GammaConfig
from repro.engine import diskcache, faults
from repro.engine.defaults import (
    PREPROCESS_VARIANTS,
    preprocess_config_key,
    preprocess_options,
)
from repro.engine.record import (
    RunRecord,
    _config_from_payload,
    _config_payload,
)
from repro.engine.registry import (GAMMA_MODELS, SIMULATOR_MODELS,
                                   available_models, default_config_for,
                                   get_model)
from repro.obs import spans

#: Environment flag that tells workers to attach a MetricsRegistry to
#: every point they compute (set by ``run_sweep(collect_metrics=True)``
#: so the instruction crosses process boundaries with zero protocol
#: changes; unset means the default no-instrumentation fast path).
METRICS_ENV = "REPRO_SWEEP_METRICS"

#: Models evaluated by the paper's headline figures (MatRaptor is an
#: extension and is opted into explicitly).
DEFAULT_MODELS = ("gamma", "ip", "outerspace", "sparch", "mkl")

#: Variants the headline figures need ('G' and 'GP' bars).
DEFAULT_VARIANTS = ("none", "full")


#: The semiring every sweep/figure point runs under; non-default
#: semirings are a serving-tier feature and key their cache entries
#: separately (see :func:`record_key`).
DEFAULT_SEMIRING = "arithmetic"

#: The mask mode every sweep/figure point runs under; masked products
#: (:mod:`repro.apps.masked`) key their cache entries separately.
DEFAULT_MASK = "none"

#: The operand shape axis default: SpGEMM models take B as-is, and
#: ``gamma-spmv`` resolves it to its natural ``sparse-vector`` shape
#: (see :mod:`repro.baselines.spmv`).
DEFAULT_OPERAND = "matrix"


@dataclass(frozen=True)
class SweepPoint:
    """One (model, matrix, variant, config) evaluation to perform.

    ``config=None`` means the model's scaled experiment default; carrying
    the resolved config explicitly would bloat keys without changing
    results. ``variant``, ``multi_pe``, ``semiring``, and ``mask`` only
    affect the simulator models; ``semiring`` names a
    :data:`repro.semiring.STANDARD_SEMIRINGS` entry (the job server
    exposes it — sweeps always run the default), ``mask`` a
    :data:`repro.apps.masked.MASK_MODES` mode (the Gamma SpGEMM engines
    only), and ``operand`` a
    :data:`repro.baselines.spmv.OPERAND_SHAPES` vector shape
    (``gamma-spmv`` only).
    """

    model: str
    matrix: str
    variant: str = "none"
    config: Union[GammaConfig, CpuConfig, None] = None
    multi_pe: bool = True
    semiring: str = DEFAULT_SEMIRING
    mask: str = DEFAULT_MASK
    operand: str = DEFAULT_OPERAND

    def resolved_config(self) -> Union[GammaConfig, CpuConfig]:
        return self.config or default_config_for(self.model)

    def label(self) -> str:
        """Human-readable point name used in logs and failure reports."""
        text = f"{self.model}:{self.matrix}"
        if self.model in GAMMA_MODELS:
            text += f":{self.variant}"
        if self.model in SIMULATOR_MODELS:
            if self.semiring != DEFAULT_SEMIRING:
                text += f":{self.semiring}"
        if self.model in GAMMA_MODELS and self.mask != DEFAULT_MASK:
            text += f":mask-{self.mask}"
        if self.model == "gamma-spmv" and self.operand != DEFAULT_OPERAND:
            text += f":{self.operand}"
        return text


def record_key(point: SweepPoint) -> str:
    """The disk-cache key of a point's :class:`RunRecord`.

    The semiring, mask, and operand axes participate only when they are
    not the default, so every pre-existing cache entry (all keyed before
    the fields existed) stays addressable.
    """
    config = point.resolved_config()
    params = dict(
        model=point.model,
        matrix=point.matrix,
        variant=point.variant if point.model in GAMMA_MODELS else "",
        config=dataclasses.asdict(config),
        config_kind=type(config).__name__,
        multi_pe=(point.multi_pe if point.model in SIMULATOR_MODELS
                  else True),
    )
    if (point.model in SIMULATOR_MODELS
            and point.semiring != DEFAULT_SEMIRING):
        params["semiring"] = point.semiring
    if point.model in GAMMA_MODELS and point.mask != DEFAULT_MASK:
        params["mask"] = point.mask
    if point.model == "gamma-spmv" and point.operand != DEFAULT_OPERAND:
        params["operand"] = point.operand
    return diskcache.cache_key("record", **params)


def point_to_payload(point: SweepPoint) -> Dict:
    """JSON-compatible form of a point (checkpoint serialization)."""
    return {
        "model": point.model,
        "matrix": point.matrix,
        "variant": point.variant,
        "config": _config_payload(point.config),
        "multi_pe": point.multi_pe,
        "semiring": point.semiring,
        "mask": point.mask,
        "operand": point.operand,
    }


def point_from_payload(payload: Dict) -> SweepPoint:
    return SweepPoint(
        model=payload["model"],
        matrix=payload["matrix"],
        variant=payload.get("variant", "none"),
        config=_config_from_payload(payload.get("config")),
        multi_pe=payload.get("multi_pe", True),
        semiring=payload.get("semiring", DEFAULT_SEMIRING),
        mask=payload.get("mask", DEFAULT_MASK),
        operand=payload.get("operand", DEFAULT_OPERAND),
    )


# ----------------------------------------------------------------------
# Failure policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPolicy:
    """How a sweep responds to failing points.

    Attributes:
        timeout_seconds: Kill a worker whose point exceeds this wall
            clock (None disables; serial mode cannot cancel and ignores
            it). The killed attempt counts as a failure and retries.
        max_retries: Additional attempts after the first failure before a
            point is quarantined.
        backoff_base_seconds: First retry delay; attempt ``n`` waits
            ``base * 2**n``, capped at ``backoff_max_seconds``.
        backoff_max_seconds: Ceiling on any single retry delay.
        jitter_fraction: Each delay is stretched by up to this fraction,
            *deterministically* seeded from (point key, attempt) so runs
            remain reproducible while concurrent retries still spread out.
        fail_fast: Raise :class:`SweepPointError` on the first quarantine
            instead of completing with partial results (the pre-PR-4
            behavior, useful in tests that want hard failures).
    """

    timeout_seconds: Optional[float] = None
    max_retries: int = 2
    backoff_base_seconds: float = 0.5
    backoff_max_seconds: float = 30.0
    jitter_fraction: float = 0.25
    fail_fast: bool = False

    def backoff_delay(self, key: str, attempt: int) -> float:
        """The wait before retry ``attempt`` (0-based) of point ``key``."""
        base = min(self.backoff_base_seconds * (2 ** attempt),
                   self.backoff_max_seconds)
        seed = int.from_bytes(
            hashlib.sha256(f"{key}:{attempt}".encode()).digest()[:8], "big")
        jitter = random.Random(seed).random() * self.jitter_fraction
        return base * (1.0 + jitter)


@dataclass
class PointFailure:
    """Why a point was quarantined (or is being retried)."""

    point: SweepPoint
    attempts: int
    reason: str  # 'crash' | 'timeout' | 'error' | 'previous-run'
    error: str = ""

    def to_payload(self) -> Dict:
        return {
            "point": point_to_payload(self.point),
            "attempts": self.attempts,
            "reason": self.reason,
            "error": self.error,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "PointFailure":
        return cls(
            point=point_from_payload(payload["point"]),
            attempts=payload["attempts"],
            reason=payload["reason"],
            error=payload.get("error", ""),
        )


class SweepPointError(RuntimeError):
    """Raised under ``fail_fast`` when a point exhausts its retries."""

    def __init__(self, failure: PointFailure) -> None:
        super().__init__(
            f"sweep point {failure.point.label()} failed "
            f"({failure.reason}) after {failure.attempts} attempts: "
            f"{failure.error}")
        self.failure = failure


class SweepResult(Dict[SweepPoint, RunRecord]):
    """Sweep output: records for completed points plus failure state.

    A plain mapping (point -> record) for every point that succeeded —
    drop-in compatible with the pre-fault-tolerance dict return — with
    the partial-result bookkeeping on top:

    Attributes:
        quarantined: Points that exhausted their retries, with failure
            reasons; empty on a clean sweep.
        stats: Counter totals (``executed``, ``cached``, ``retries``,
            ``timeouts``, ``crashes``, ``errors``, ``quarantined``).
        provenance: Per completed point: where its record came from
            (``source``: 'cached' or 'computed'), how many attempts it
            took, and — for computed points — the wall-clock seconds.
            Prerequisite Gamma runs computed for baseline points appear
            too, so a run report can account for every evaluation.
    """

    def __init__(self) -> None:
        super().__init__()
        self.quarantined: Dict[SweepPoint, PointFailure] = {}
        self.stats: Dict[str, int] = {
            "executed": 0, "cached": 0, "retries": 0,
            "timeouts": 0, "crashes": 0, "errors": 0, "quarantined": 0,
        }
        self.provenance: Dict[SweepPoint, Dict] = {}

    @property
    def complete(self) -> bool:
        return not self.quarantined


# ----------------------------------------------------------------------
# Work programs (preprocessing output), cached like records
# ----------------------------------------------------------------------
_PROGRAM_MEMO: Dict[tuple, object] = {}


def cached_program(matrix: str, variant: str, config: GammaConfig):
    """Build (or recall) the preprocessed work program for a Gamma point.

    Keys on :func:`preprocess_config_key` — exactly the config fields the
    preprocessing pipeline reads — so PE-count/bandwidth sweeps share one
    program per (matrix, variant, cache size, radix).
    """
    options = preprocess_options(variant)
    if options is None:
        return None
    config_fields = preprocess_config_key(config)
    memo_key = (matrix, variant, tuple(sorted(config_fields.items())))
    if memo_key in _PROGRAM_MEMO:
        return _PROGRAM_MEMO[memo_key]

    import numpy as np

    from repro.core import WorkProgram
    from repro.core.scheduler import WorkItem
    from repro.matrices import suite
    from repro.preprocessing import preprocess

    disk_key = diskcache.cache_key(
        "program", matrix=matrix, variant=variant, **config_fields)
    cached = diskcache.load(disk_key)
    if cached is not None:
        items = [
            WorkItem(
                row=row, part=part, num_parts=num_parts,
                coords=np.asarray(coords, dtype=np.int64),
                values=np.asarray(values, dtype=np.float64),
            )
            for row, part, num_parts, coords, values in cached["items"]
        ]
        program = WorkProgram(items, cached["num_rows"], cached["num_cols"])
    else:
        a, b = suite.operands(matrix)
        program = preprocess(a, b, config, options)
        diskcache.store(disk_key, {
            "items": [
                [item.row, item.part, item.num_parts,
                 item.coords.tolist(), item.values.tolist()]
                for item in program.items
            ],
            "num_rows": program.num_rows,
            "num_cols": program.num_cols,
        })
    _PROGRAM_MEMO[memo_key] = program
    return program


# ----------------------------------------------------------------------
# Point execution (shared by the serial facade and parallel workers)
# ----------------------------------------------------------------------
def metrics_requested() -> bool:
    """Whether this process should instrument the points it computes.

    ``run_sweep(collect_metrics=True)`` sets :data:`METRICS_ENV`, which
    worker processes inherit — the flag crosses process boundaries the
    same way the fault plan and span directory do.
    """
    return os.environ.get(METRICS_ENV, "") == "1"


def execute_point(point: SweepPoint,
                  collect_metrics: Optional[bool] = None) -> RunRecord:
    """Evaluate one sweep point, reading/populating the disk cache.

    ``collect_metrics=None`` defers to :func:`metrics_requested`. When
    metrics are requested and the cached Gamma record predates them
    (no blob), the point is recomputed instrumented and the entry is
    overwritten — behaviorally identical (the fingerprint excludes
    metrics), just richer.

    The fault hooks (:mod:`repro.engine.faults`) are no-ops unless a
    fault plan is active — the chaos suite uses them to make this exact
    code path crash, hang, or poison its cache write on demand.
    """
    if collect_metrics is None:
        collect_metrics = metrics_requested()
    want_metrics = collect_metrics and point.model in SIMULATOR_MODELS
    key = record_key(point)
    payload = diskcache.load(key)
    if payload is not None:
        if not (want_metrics and payload.get("metrics") is None):
            try:
                return RunRecord.from_payload(payload)
            except (KeyError, TypeError, ValueError):
                pass  # stale/foreign entry: recompute and overwrite

    faults.on_point_start(point.model, point.matrix, point.variant)

    from repro.matrices import suite

    compute_start = time.time()
    a, b = suite.operands(point.matrix)
    config = point.resolved_config()
    model = get_model(point.model)
    if point.model in GAMMA_MODELS:
        program = None
        if point.mask == DEFAULT_MASK:
            program = cached_program(point.matrix, point.variant, config)
        record = model.run(
            a, b, config, matrix=point.matrix, variant=point.variant,
            multi_pe=point.multi_pe, program=program,
            semiring=point.semiring, mask=point.mask,
            collect_metrics=want_metrics)
    elif point.model in SIMULATOR_MODELS:  # gamma-spmv
        record = model.run(
            a, b, config, matrix=point.matrix, variant=point.variant,
            multi_pe=point.multi_pe, semiring=point.semiring,
            operand=point.operand, collect_metrics=want_metrics)
    else:
        c_nnz = execute_point(SweepPoint("gamma", point.matrix)).c_nnz
        record = model.run(a, b, config, matrix=point.matrix, c_nnz=c_nnz)
    diskcache.store(key, record.to_payload())
    spans.emit_span("point/execute", compute_start,
                    point=point.label(), model=point.model,
                    metrics=bool(want_metrics))
    faults.corrupt_cache_path(
        point.model, point.matrix, point.variant,
        diskcache.entry_path(key))
    return record


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_sweep(
    matrices: Sequence[str],
    models: Sequence[str] = DEFAULT_MODELS,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    configs: Optional[Sequence[GammaConfig]] = None,
    multi_pe: bool = True,
    masks: Sequence[str] = (DEFAULT_MASK,),
    operand: str = DEFAULT_OPERAND,
) -> List[SweepPoint]:
    """Enumerate the (model, matrix, variant, config) cross-product.

    Gamma points expand over ``variants``, ``configs`` (``None`` =
    scaled default only), and ``masks``; masked points always run the
    plain row dataflow (preprocessing programs are built for the full B
    operand, which the mask narrows), so they do not expand over
    ``variants``. ``gamma-spmv`` points expand over ``configs`` and take
    the ``operand`` vector shape; the remaining baseline points get one
    evaluation per matrix under their default config, matching what the
    figures consume.
    """
    from repro.apps.masked import MASK_MODES
    from repro.baselines.spmv import OPERAND_SHAPES

    for model in models:
        if model not in available_models():
            raise ValueError(
                f"unknown model {model!r}; known: {available_models()}")
    for variant in variants:
        if variant not in PREPROCESS_VARIANTS:
            raise ValueError(
                f"unknown preprocessing variant {variant!r}; "
                f"known: {PREPROCESS_VARIANTS}")
    for mask in masks:
        if mask not in MASK_MODES:
            raise ValueError(
                f"unknown mask mode {mask!r}; known: {MASK_MODES}")
    if operand not in OPERAND_SHAPES:
        raise ValueError(
            f"unknown operand shape {operand!r}; known: {OPERAND_SHAPES}")
    points: List[SweepPoint] = []
    gamma_configs: Sequence[Optional[GammaConfig]] = configs or [None]
    for matrix in matrices:
        for model in models:
            if model in GAMMA_MODELS:
                for config in gamma_configs:
                    for mask in masks:
                        if mask == DEFAULT_MASK:
                            for variant in variants:
                                points.append(SweepPoint(
                                    model, matrix, variant, config,
                                    multi_pe))
                        else:
                            points.append(SweepPoint(
                                model, matrix, "none", config, multi_pe,
                                mask=mask))
            elif model in SIMULATOR_MODELS:  # gamma-spmv
                for config in gamma_configs:
                    points.append(SweepPoint(
                        model, matrix, "none", config, multi_pe,
                        operand=operand))
            else:
                points.append(SweepPoint(model, matrix, ""))
    return points


def pending_points(points: Iterable[SweepPoint]) -> List[SweepPoint]:
    """Deduplicate a plan and drop points already in the disk cache."""
    seen = set()
    pending = []
    for point in points:
        if point in seen:
            continue
        seen.add(point)
        if diskcache.load(record_key(point)) is None:
            pending.append(point)
    return pending


# ----------------------------------------------------------------------
# Checkpoint (interrupted-sweep state, persisted through the disk cache)
# ----------------------------------------------------------------------
CHECKPOINT_VERSION = 1


def checkpoint_key(points: Sequence[SweepPoint]) -> str:
    """The checkpoint's cache key — a function of the plan, nothing else,
    so re-issuing the same ``python -m repro sweep`` finds it."""
    return diskcache.cache_key(
        "sweep-checkpoint",
        plan=sorted(record_key(p) for p in dict.fromkeys(points)))


def save_checkpoint(points: Sequence[SweepPoint],
                    result: SweepResult) -> None:
    """Persist sweep progress (records themselves live in the cache).

    Only resume-relevant state goes in: execution stats vary with
    scheduling (e.g. racing workers may each compute a shared
    prerequisite), and the cache must stay byte-identical between
    serial and parallel runs of the same plan.
    """
    diskcache.store(checkpoint_key(points), {
        "version": CHECKPOINT_VERSION,
        "total": len(list(dict.fromkeys(points))),
        "completed": len(result),
        "quarantined": [
            f.to_payload() for f in result.quarantined.values()
        ],
    })
    spans.emit_instant("sweep/checkpoint", completed=len(result),
                       quarantined=len(result.quarantined))


def load_checkpoint(
        points: Sequence[SweepPoint]) -> Optional[Dict]:
    payload = diskcache.load(checkpoint_key(points))
    if not payload or payload.get("version") != CHECKPOINT_VERSION:
        return None
    return payload


def clear_checkpoint(points: Sequence[SweepPoint]) -> None:
    diskcache.invalidate(checkpoint_key(points))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_sweep(
    points: Sequence[SweepPoint],
    workers: Optional[int] = None,
    serial: bool = False,
    on_result: Optional[Callable[[SweepPoint, RunRecord], None]] = None,
    on_executed: Optional[
        Callable[[SweepPoint, RunRecord, float], None]] = None,
    policy: Optional[SweepPolicy] = None,
    metrics=None,
    resume: bool = False,
    collect_metrics: bool = False,
) -> SweepResult:
    """Execute a sweep, parallelizing cache misses across processes.

    Already-cached points are loaded, not recomputed. Baseline points
    need each matrix's output size, which comes from a plain Gamma run;
    those prerequisite points are executed first so parallel baseline
    workers find them in the cache instead of redoing the simulation.

    Failing points are retried and eventually quarantined per ``policy``
    — the sweep always completes (unless ``policy.fail_fast``) and the
    returned :class:`SweepResult` maps every *successful* point to its
    record, with quarantined points reported separately.

    Args:
        points: The plan (duplicates are collapsed).
        workers: Process count (default: ``os.cpu_count()``).
        serial: Run misses in this process instead — same results,
            useful for determinism checks and debugging. Serial mode
            retries and quarantines but cannot cancel a hung point
            (``timeout_seconds`` needs a killable worker process).
        on_result: Called in the parent as each point completes.
        on_executed: Called in the parent for each point actually
            *computed* (a cache miss) with its wall-clock seconds —
            cached loads do not fire it. Prerequisite Gamma runs that
            were not themselves planned fire it too.
        policy: Failure-handling policy (default :class:`SweepPolicy`).
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; retries,
            timeouts, crashes, and quarantines are published as
            ``sweep/*`` counters for the CLI summary.
        resume: Honor a previous interrupted run's checkpoint for this
            exact plan: its quarantined points are skipped (reported as
            ``previous-run`` failures) instead of re-burning retries,
            and — via the disk cache — nothing already computed reruns.
        collect_metrics: Attach a
            :class:`~repro.obs.MetricsRegistry` to every *computed*
            point (CLI ``--metrics``), serializing the blob onto its
            record; propagated to worker processes via
            :data:`METRICS_ENV`. Off by default — sweeps pay nothing
            unless asked.

    Returns:
        Every completed point mapped to its record, serial or parallel
        alike — the result of a sweep does not depend on how it ran.
    """
    policy = policy or SweepPolicy()
    ordered = list(dict.fromkeys(points))
    result = SweepResult()
    failed_attempts: Dict[SweepPoint, int] = {}

    def count(name: str, amount: int = 1,
              point: Optional[SweepPoint] = None) -> None:
        """Update stats and mirror the event into the active telemetry.

        Every ``sweep/<name>`` span instant is emitted *here*, right
        where the stat increments, which is what makes span counts and
        ``SweepResult.stats`` agree exactly (the chaos-integration test
        pins this).
        """
        result.stats[name] = result.stats.get(name, 0) + amount
        if metrics is not None:
            metrics.inc(f"sweep/{name}", amount)
        if point is not None and name in ("errors", "timeouts", "crashes"):
            failed_attempts[point] = failed_attempts.get(point, 0) + 1
        if spans.active():
            attrs = {"point": point.label()} if point is not None else {}
            spans.emit_instant(f"sweep/{name}", **attrs)

    skip: Dict[SweepPoint, PointFailure] = {}
    if resume:
        checkpoint = load_checkpoint(ordered)
        if checkpoint:
            for payload in checkpoint.get("quarantined", ()):
                failure = PointFailure.from_payload(payload)
                failure.reason = "previous-run"
                skip[failure.point] = failure
    for point, failure in skip.items():
        if point in ordered:
            result.quarantined[point] = failure
            count("quarantined", point=point)

    runnable = [p for p in ordered if p not in result.quarantined]
    pending = pending_points(runnable)
    pending_set = set(pending)
    prerequisites = [
        p for p in dict.fromkeys(
            SweepPoint("gamma", q.matrix)
            for q in pending if q.model not in SIMULATOR_MODELS)
        if p not in result.quarantined
    ]

    computed: set = set()

    def on_point_done(point: SweepPoint, record: RunRecord,
                      wall_seconds: float) -> None:
        computed.add(point)
        count("executed", point=point)
        result.provenance[point] = {
            "source": "computed",
            "attempts": failed_attempts.get(point, 0) + 1,
            "wall_seconds": wall_seconds,
        }
        if on_executed is not None:
            on_executed(point, record, wall_seconds)
        if diskcache.cache_enabled():
            save_checkpoint(ordered, result)

    def on_point_quarantined(failure: PointFailure) -> None:
        result.quarantined[failure.point] = failure
        count("quarantined", point=failure.point)
        if policy.fail_fast:
            if diskcache.cache_enabled():
                save_checkpoint(ordered, result)
            raise SweepPointError(failure)
        if diskcache.cache_enabled():
            save_checkpoint(ordered, result)

    if collect_metrics:
        os.environ[METRICS_ENV] = "1"
    try:
        return _run_sweep_body(
            ordered, pending_set, pending, prerequisites, result,
            computed, workers, serial, policy, count,
            on_result, on_point_done, on_point_quarantined)
    finally:
        if collect_metrics:
            os.environ.pop(METRICS_ENV, None)


def _run_sweep_body(
    ordered, pending_set, pending, prerequisites, result,
    computed, workers, serial, policy, count,
    on_result, on_point_done, on_point_quarantined,
) -> SweepResult:
    use_processes = (not serial and diskcache.cache_enabled()
                     and (workers is None or workers > 1))
    if use_processes:
        max_workers = workers or os.cpu_count() or 1
        for batch in (pending_points(prerequisites), pending):
            batch = [p for p in batch if p not in result.quarantined]
            _run_batch_parallel(
                batch, max_workers, policy, count,
                on_point_done, on_point_quarantined)
        pending_set = set()  # workers computed (and notified) them all
    # Serial mode (and the no-disk-cache fallback, where processes cannot
    # share results) computes misses right here, in plan order.
    for point in ordered:
        if point in result.quarantined:
            continue
        if point in pending_set:
            outcome = _execute_with_retries(point, policy, count)
            if isinstance(outcome, PointFailure):
                on_point_quarantined(outcome)
                continue
            record, wall_seconds = outcome
            on_point_done(point, record, wall_seconds)
        else:
            try:
                record = execute_point(point)
            except Exception as exc:
                # A cached load can only fail here if the entry was
                # invalidated underneath us *and* recomputation failed.
                outcome = _execute_with_retries(
                    point, policy, count, first_error=exc)
                if isinstance(outcome, PointFailure):
                    on_point_quarantined(outcome)
                    continue
                record, wall_seconds = outcome
                on_point_done(point, record, wall_seconds)
            if point not in computed:
                count("cached", point=point)
                result.provenance.setdefault(
                    point, {"source": "cached", "attempts": 0})
        result[point] = record
        if on_result is not None:
            on_result(point, record)
    if diskcache.cache_enabled():
        save_checkpoint(ordered, result)
    return result


def _execute_with_retries(
    point: SweepPoint,
    policy: SweepPolicy,
    count: Callable[..., None],
    first_error: Optional[BaseException] = None,
) -> Union[Tuple[RunRecord, float], PointFailure]:
    """Serial-mode attempt loop: retries with backoff, then quarantine."""
    key = record_key(point)
    attempt = 0
    last_error = repr(first_error) if first_error is not None else ""
    if first_error is not None:
        count("errors", point=point)
        attempt = 1
    while attempt <= policy.max_retries:
        if attempt > 0:
            count("retries", point=point)
            backoff_start = time.time()
            time.sleep(policy.backoff_delay(key, attempt - 1))
            spans.emit_span("sweep/backoff", backoff_start,
                            point=point.label(), attempt=attempt)
        start = time.perf_counter()
        span_start = time.time()
        try:
            record = execute_point(point)
            spans.emit_span("sweep/point", span_start,
                            point=point.label(), attempt=attempt,
                            outcome="ok")
            return record, time.perf_counter() - start
        except Exception as exc:
            spans.emit_span("sweep/point", span_start,
                            point=point.label(), attempt=attempt,
                            outcome="error")
            count("errors", point=point)
            last_error = repr(exc)
            attempt += 1
    return PointFailure(point, attempt, "error", last_error)


# ----------------------------------------------------------------------
# Parallel executor: worker slots with kill-based cancellation
# ----------------------------------------------------------------------
def worker_loop(conn) -> None:
    """Worker process body: evaluate points until the parent hangs up.

    Every outcome — success payload or exception detail — travels back
    over the pipe; the parent treats a vanished pipe (hard crash,
    ``os._exit``, OOM-kill) as a failed attempt of whatever point the
    slot was running.
    """
    while True:
        try:
            point = conn.recv()
        except (EOFError, OSError):
            return
        if point is None:
            return
        start = time.perf_counter()
        try:
            payload = execute_point(point).to_payload()
            conn.send({"ok": True, "payload": payload,
                       "wall_seconds": time.perf_counter() - start})
        except BaseException as exc:  # report, don't die: slot is reused
            try:
                conn.send({"ok": False, "error": repr(exc),
                           "wall_seconds": time.perf_counter() - start})
            except (BrokenPipeError, OSError):
                return


class WorkerSlot:
    """One worker process + pipe, respawned after kills and crashes.

    Public because the sweep executor and the job server
    (:mod:`repro.serve.server`) share it: both need per-point
    kill-based cancellation — the only reliable way to stop a hung
    or wedged native call — with the slot immediately respawned for
    the next assignment.
    """

    def __init__(self, ctx, index: int = 0) -> None:
        self._ctx = ctx
        self.index = index
        self.busy_point: Optional[SweepPoint] = None
        self.busy_attempt = 0
        self.deadline: Optional[float] = None
        self.assigned_ts: float = 0.0
        self._spawn()

    def _spawn(self) -> None:
        self.conn, child_conn = multiprocessing.Pipe()
        self.process = self._ctx.Process(
            target=worker_loop, args=(child_conn,), daemon=True)
        # The slot index rides to the child through the environment
        # (fork and spawn contexts both inherit it at start()); the
        # worker's span recorder labels its lane with it. Harmless when
        # telemetry is off.
        os.environ[spans.SPAN_SLOT_ENV] = str(self.index)
        try:
            self.process.start()
        finally:
            os.environ.pop(spans.SPAN_SLOT_ENV, None)
        child_conn.close()

    def assign(self, point: SweepPoint, attempt: int,
               timeout: Optional[float]) -> None:
        self.busy_point = point
        self.busy_attempt = attempt
        self.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)
        self.assigned_ts = time.time()
        self.conn.send(point)

    def release(self) -> None:
        self.busy_point = None
        self.deadline = None

    def respawn(self) -> None:
        """Kill the current process (hung or dead) and start a fresh one."""
        self.process.terminate()
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5)
        self.conn.close()
        self.release()
        self._spawn()

    def shutdown(self) -> None:
        if self.busy_point is None and self.process.is_alive():
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        self.process.terminate()
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.kill()
        self.conn.close()


def _run_batch_parallel(
    batch: Sequence[SweepPoint],
    workers: int,
    policy: SweepPolicy,
    count: Callable[..., None],
    on_point_done: Callable[[SweepPoint, RunRecord, float], None],
    on_point_quarantined: Callable[[PointFailure], None],
) -> None:
    """Drive a batch through worker slots with timeout/retry/quarantine.

    Unlike a ``ProcessPoolExecutor`` — where a hung task occupies its
    worker forever and a crashed worker breaks the whole pool — each
    slot's process can be killed and respawned independently, which is
    what makes per-point cancellation and crash isolation possible.
    """
    if not batch:
        return
    ctx = multiprocessing.get_context()
    slots = [WorkerSlot(ctx, index)
             for index in range(min(workers, len(batch)))]
    # (ready_at, sequence, attempt, point): a heap so backoff delays and
    # fresh points interleave correctly; sequence breaks ties FIFO.
    sequence = itertools.count()
    queue: List[Tuple[float, int, int, SweepPoint]] = []
    now = time.monotonic()
    for point in batch:
        heapq.heappush(queue, (now, next(sequence), 0, point))
    outstanding = len(batch)

    def fail(slot_point: SweepPoint, attempt: int, reason: str,
             error: str) -> None:
        nonlocal outstanding
        count({"timeout": "timeouts", "crash": "crashes"}
              .get(reason, "errors"), point=slot_point)
        if attempt < policy.max_retries:
            count("retries", point=slot_point)
            delay = policy.backoff_delay(record_key(slot_point), attempt)
            spans.emit_instant("sweep/backoff", point=slot_point.label(),
                               attempt=attempt + 1, delay_seconds=delay)
            heapq.heappush(queue, (
                time.monotonic() + delay, next(sequence),
                attempt + 1, slot_point))
        else:
            outstanding -= 1
            on_point_quarantined(
                PointFailure(slot_point, attempt + 1, reason, error))

    try:
        while outstanding > 0:
            now = time.monotonic()
            # Hand ready work to idle slots.
            for slot in slots:
                if (slot.busy_point is None and queue
                        and queue[0][0] <= now):
                    _, _, attempt, point = heapq.heappop(queue)
                    slot.assign(point, attempt, policy.timeout_seconds)
            # Wait for a result, a deadline, or a retry becoming ready.
            busy = [s for s in slots if s.busy_point is not None]
            wake_times = [s.deadline for s in busy
                          if s.deadline is not None]
            if queue and any(s.busy_point is None for s in slots):
                wake_times.append(queue[0][0])
            timeout = None
            if wake_times:
                timeout = max(0.0, min(wake_times) - time.monotonic())
            if busy:
                readable = multiprocessing.connection.wait(
                    [s.conn for s in busy], timeout)
            else:
                readable = []
                if timeout:
                    time.sleep(min(timeout, 0.05))
            by_conn = {s.conn: s for s in busy}
            for conn in readable:
                slot = by_conn[conn]
                point, attempt = slot.busy_point, slot.busy_attempt
                assigned_ts = slot.assigned_ts
                try:
                    outcome = slot.conn.recv()
                except (EOFError, OSError):
                    # Hard worker death (os._exit, segfault, OOM-kill).
                    slot.respawn()
                    spans.emit_span(
                        "sweep/point", assigned_ts, point=point.label(),
                        attempt=attempt, slot=slot.index, outcome="crash")
                    fail(point, attempt, "crash",
                         "worker process died mid-point")
                    continue
                slot.release()
                spans.emit_span(
                    "sweep/point", assigned_ts, point=point.label(),
                    attempt=attempt, slot=slot.index,
                    outcome="ok" if outcome["ok"] else "error")
                if outcome["ok"]:
                    outstanding -= 1
                    record = RunRecord.from_payload(outcome["payload"])
                    on_point_done(point, record, outcome["wall_seconds"])
                else:
                    fail(point, attempt, "error", outcome["error"])
            # Deadline pass: anything still busy past its deadline hangs.
            now = time.monotonic()
            for slot in slots:
                if (slot.busy_point is not None
                        and slot.deadline is not None
                        and now >= slot.deadline
                        and not slot.conn.poll()):
                    point, attempt = slot.busy_point, slot.busy_attempt
                    assigned_ts = slot.assigned_ts
                    slot.respawn()
                    spans.emit_span(
                        "sweep/point", assigned_ts, point=point.label(),
                        attempt=attempt, slot=slot.index,
                        outcome="timeout")
                    spans.emit_instant(
                        "sweep/timeout_kill", point=point.label(),
                        slot=slot.index,
                        timeout_seconds=policy.timeout_seconds)
                    fail(point, attempt, "timeout",
                         f"exceeded {policy.timeout_seconds}s timeout")
    finally:
        for slot in slots:
            slot.shutdown()
