"""Tests for the model registry + parallel sweep engine.

Parity: for every registered model, the registry-dispatched run must
return exactly the cycles/traffic a direct ``run_*_model`` /
``GammaSimulator`` call produces. Determinism: a parallel sweep must
equal a serial sweep result-for-result. Small suite matrices keep the
battery fast.
"""

import dataclasses
import json

import pytest

from repro.baselines import (
    run_inner_product_model,
    run_mkl_model,
    run_outerspace_model,
    run_sparch_model,
)
from repro.baselines.matraptor import run_matraptor_model
from repro.config import GammaConfig
from repro.core import GammaSimulator
from repro.engine import (
    RunRecord,
    SweepPoint,
    available_models,
    derive_c_nnz,
    execute_point,
    get_model,
    pending_points,
    plan_sweep,
    record_key,
    run_sweep,
    scaled_cpu_config,
    scaled_gamma_config,
)
from repro.engine import diskcache
from repro.matrices import suite

SMALL_MATRICES = ("wiki-Vote", "poisson3Da")


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets its own disk cache directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    yield


class TestRegistry:
    def test_expected_models_registered(self):
        assert set(available_models()) >= {
            "gamma", "ip", "outerspace", "sparch", "mkl", "matraptor"}

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            get_model("tpu")

    @pytest.mark.parametrize("name", SMALL_MATRICES)
    @pytest.mark.parametrize("model,run_fn", [
        ("ip", run_inner_product_model),
        ("outerspace", run_outerspace_model),
        ("sparch", run_sparch_model),
        ("matraptor", run_matraptor_model),
    ])
    def test_baseline_parity(self, model, run_fn, name):
        a, b = suite.operands(name)
        config = scaled_gamma_config()
        direct = run_fn(a, b, config, c_nnz=1234)
        record = get_model(model).run(a, b, config, matrix=name,
                                      c_nnz=1234)
        assert record.cycles == direct.cycles
        assert record.traffic_bytes == direct.traffic_bytes
        assert record.flops == direct.flops
        assert record.c_nnz == 1234

    @pytest.mark.parametrize("name", SMALL_MATRICES)
    def test_mkl_parity(self, name):
        a, b = suite.operands(name)
        config = scaled_cpu_config()
        direct = run_mkl_model(a, b, config, c_nnz=1234)
        record = get_model("mkl").run(a, b, config, c_nnz=1234)
        assert record.cycles == direct.cycles
        assert record.traffic_bytes == direct.traffic_bytes

    @pytest.mark.parametrize("name", SMALL_MATRICES)
    def test_gamma_parity(self, name):
        a, b = suite.operands(name)
        config = scaled_gamma_config()
        direct = GammaSimulator(config, keep_output=False).run(a, b)
        record = get_model("gamma").run(a, b, config, matrix=name)
        assert record.cycles == direct.cycles
        assert record.traffic_bytes == direct.traffic_bytes
        assert record.compulsory_bytes == direct.compulsory_bytes
        assert record.c_nnz == direct.c_nnz


class TestRunRecord:
    def _record(self):
        return execute_point(SweepPoint("gamma", "wiki-Vote"))

    def test_payload_round_trip(self):
        record = self._record()
        payload = json.loads(json.dumps(record.to_payload()))
        assert RunRecord.from_payload(payload) == record

    def test_legacy_payload_without_c_nnz(self):
        record = self._record()
        payload = record.to_payload()
        payload["c_nnz"] = None
        payload["num_rows"] = suite.load("wiki-Vote").num_rows
        revived = RunRecord.from_payload(payload)
        assert revived.c_nnz == record.c_nnz

    def test_derive_c_nnz_inverts_compulsory(self):
        record = self._record()
        num_rows = suite.load("wiki-Vote").num_rows
        assert derive_c_nnz(
            record.compulsory_bytes["C"], num_rows) == record.c_nnz

    def test_derived_metrics_match_simulation(self):
        a, b = suite.operands("wiki-Vote")
        config = scaled_gamma_config()
        direct = GammaSimulator(config, keep_output=False).run(a, b)
        record = RunRecord.from_simulation(direct, matrix="wiki-Vote")
        assert record.normalized_traffic == direct.normalized_traffic
        assert record.bandwidth_utilization == pytest.approx(
            direct.bandwidth_utilization)
        assert record.pe_utilization == pytest.approx(direct.pe_utilization)
        assert record.gflops == pytest.approx(direct.gflops)
        assert record.runtime_seconds == direct.runtime_seconds


class TestDiskCache:
    def test_atomic_store_and_load(self):
        diskcache.store("somekey", {"x": 1})
        assert diskcache.load("somekey") == {"x": 1}
        assert not list(diskcache.cache_dir().glob("*.tmp"))

    def test_schema_version_in_key(self, monkeypatch):
        from repro.engine import record as record_mod

        key_v = diskcache.cache_key("record", matrix="m")
        monkeypatch.setattr(record_mod, "SCHEMA_VERSION", 99_999)
        monkeypatch.setattr(diskcache, "SCHEMA_VERSION", 99_999)
        assert diskcache.cache_key("record", matrix="m") != key_v

    def test_torn_entry_recomputed(self):
        point = SweepPoint("gamma", "wiki-Vote")
        key = record_key(point)
        diskcache.store(key, {"garbage": True})
        record = execute_point(point)
        assert record.cycles > 0
        # The torn entry was overwritten with a valid record.
        assert RunRecord.from_payload(diskcache.load(key)) == record


class TestSweep:
    def test_plan_cross_product(self):
        points = plan_sweep(["wiki-Vote"], models=("gamma", "mkl"),
                            variants=("none", "full"))
        assert SweepPoint("gamma", "wiki-Vote", "none") in points
        assert SweepPoint("gamma", "wiki-Vote", "full") in points
        assert SweepPoint("mkl", "wiki-Vote", "") in points
        assert len(points) == 3

    def test_plan_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown model"):
            plan_sweep(["wiki-Vote"], models=("warp",))
        with pytest.raises(ValueError, match="variant"):
            plan_sweep(["wiki-Vote"], variants=("sometimes",))

    def test_pending_skips_cached_and_dedupes(self):
        point = SweepPoint("gamma", "wiki-Vote")
        assert pending_points([point, point]) == [point]
        execute_point(point)
        assert pending_points([point, point]) == []

    def test_cached_point_not_recomputed(self):
        point = SweepPoint("gamma", "wiki-Vote")
        first = execute_point(point)
        assert execute_point(point) == first

    def test_record_key_distinguishes_config(self):
        base = SweepPoint("gamma", "wiki-Vote")
        other = SweepPoint("gamma", "wiki-Vote",
                           config=scaled_gamma_config(num_pes=8))
        assert record_key(base) != record_key(other)
        # None resolves to the scaled default: same key either way.
        explicit = SweepPoint("gamma", "wiki-Vote",
                              config=scaled_gamma_config())
        assert record_key(base) == record_key(explicit)

    def test_program_shared_across_pe_sweep(self):
        """PE count doesn't affect preprocessing → one program key."""
        from repro.engine import preprocess_config_key

        a = preprocess_config_key(scaled_gamma_config(num_pes=8))
        b = preprocess_config_key(scaled_gamma_config(num_pes=64))
        assert a == b
        c = preprocess_config_key(scaled_gamma_config(
            fibercache_bytes=GammaConfig().fibercache_bytes))
        assert a != c

    def test_serial_sweep_covers_plan(self):
        points = plan_sweep(SMALL_MATRICES, models=("gamma", "sparch"),
                            variants=("none",))
        results = run_sweep(points, serial=True)
        assert set(results) == set(points)
        for record in results.values():
            assert record.cycles > 0

    def test_parallel_equals_serial(self, tmp_path, monkeypatch):
        """The headline determinism guarantee, payload-for-payload."""
        points = plan_sweep(SMALL_MATRICES)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "par"))
        parallel = run_sweep(points, workers=2)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ser"))
        serial = run_sweep(points, serial=True)
        assert set(parallel) == set(serial)
        for point in points:
            assert (parallel[point].to_payload()
                    == serial[point].to_payload()), point


class TestFacadeParity:
    """The ExperimentRunner facade returns engine records unchanged."""

    def test_gamma_matches_execute_point(self):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner()
        record = runner.gamma("wiki-Vote")
        assert record == execute_point(SweepPoint("gamma", "wiki-Vote"))
        assert runner.c_nnz("wiki-Vote") == record.c_nnz

    def test_baseline_uses_true_c_nnz(self):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner()
        a, b = suite.operands("wiki-Vote")
        c_nnz = runner.c_nnz("wiki-Vote")
        direct = run_sparch_model(a, b, scaled_gamma_config(), c_nnz)
        record = runner.baseline("sparch", "wiki-Vote")
        assert record.cycles == direct.cycles
        assert record.traffic_bytes == direct.traffic_bytes

    def test_sweep_warms_facade_memo(self):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner()
        points = plan_sweep(["wiki-Vote"], models=("gamma",),
                            variants=("none",))
        (record,) = runner.sweep(points, serial=True)
        assert runner.gamma("wiki-Vote") is runner.gamma("wiki-Vote")
        assert runner.gamma("wiki-Vote") == record
