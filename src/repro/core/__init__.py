"""Gamma accelerator core: PEs, merger, FiberCache, scheduler, simulator."""

from repro.core.accumulator import Accumulator, accumulate
from repro.core.dram import MemoryInterface, TrafficCounter
from repro.core.fibercache import CacheStats, FiberCache
from repro.core.fibercache_ref import ReferenceFiberCache
from repro.core.merger import HighRadixMerger, merge_cycles
from repro.core.pe import PEResult, ProcessingElement
from repro.core.result import SimulationResult
from repro.core.scheduler import EpochScheduler, Scheduler, WorkItem, WorkProgram
from repro.core.simulator import GammaSimulator, multiply
from repro.core.simulator_ref import ReferenceGammaSimulator, multiply_reference
from repro.core.tasks import (LeafTask, Task, TaskInput, build_task_tree,
                              tree_stats)
from repro.core.trace import ExecutionTrace, TaskEvent

__all__ = [
    "Accumulator",
    "CacheStats",
    "EpochScheduler",
    "ExecutionTrace",
    "FiberCache",
    "GammaSimulator",
    "HighRadixMerger",
    "LeafTask",
    "MemoryInterface",
    "PEResult",
    "ProcessingElement",
    "ReferenceFiberCache",
    "ReferenceGammaSimulator",
    "Scheduler",
    "SimulationResult",
    "Task",
    "TaskEvent",
    "TaskInput",
    "TrafficCounter",
    "WorkItem",
    "WorkProgram",
    "accumulate",
    "build_task_tree",
    "merge_cycles",
    "multiply",
    "multiply_reference",
    "tree_stats",
]
