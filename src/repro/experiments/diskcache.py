"""Back-compat shim: the disk cache now lives in :mod:`repro.engine.diskcache`.

It moved into the engine so sweep workers can use it without importing the
experiment harness (which imports the runner, which imports the engine —
a cycle). Import from ``repro.engine.diskcache`` in new code.
"""

from repro.engine.diskcache import (  # noqa: F401
    cache_dir,
    cache_enabled,
    cache_key,
    contains,
    load,
    store,
)

__all__ = [
    "cache_dir",
    "cache_enabled",
    "cache_key",
    "contains",
    "load",
    "store",
]
