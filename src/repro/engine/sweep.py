"""Sweep planner and process-parallel executor.

The paper's figures are a cross-product — models x matrices x
preprocessing variants x hardware configs (Figs. 10-25) — and each point
is independent, so the sweep engine enumerates them as
:class:`SweepPoint` values, skips the ones already in the disk cache, and
executes the misses with a ``ProcessPoolExecutor``. The disk cache is the
cross-process result store: workers write records atomically (see
:mod:`repro.engine.diskcache`), so a crashed or raced sweep never leaves
torn entries and a re-run only pays for what is missing.

``execute_point`` is the single entry point for evaluating one point; the
serial facade (:class:`repro.experiments.ExperimentRunner`) and the
parallel workers both go through it, which is what makes parallel
pre-warming produce byte-identical figures to a cold serial run.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.config import CpuConfig, GammaConfig
from repro.engine import diskcache
from repro.engine.defaults import (
    PREPROCESS_VARIANTS,
    preprocess_config_key,
    preprocess_options,
)
from repro.engine.record import RunRecord
from repro.engine.registry import available_models, default_config_for, get_model

#: Models evaluated by the paper's headline figures (MatRaptor is an
#: extension and is opted into explicitly).
DEFAULT_MODELS = ("gamma", "ip", "outerspace", "sparch", "mkl")

#: Variants the headline figures need ('G' and 'GP' bars).
DEFAULT_VARIANTS = ("none", "full")


@dataclass(frozen=True)
class SweepPoint:
    """One (model, matrix, variant, config) evaluation to perform.

    ``config=None`` means the model's scaled experiment default; carrying
    the resolved config explicitly would bloat keys without changing
    results. ``variant`` and ``multi_pe`` only affect Gamma.
    """

    model: str
    matrix: str
    variant: str = "none"
    config: Union[GammaConfig, CpuConfig, None] = None
    multi_pe: bool = True

    def resolved_config(self) -> Union[GammaConfig, CpuConfig]:
        return self.config or default_config_for(self.model)


def record_key(point: SweepPoint) -> str:
    """The disk-cache key of a point's :class:`RunRecord`."""
    config = point.resolved_config()
    return diskcache.cache_key(
        "record",
        model=point.model,
        matrix=point.matrix,
        variant=point.variant if point.model == "gamma" else "",
        config=dataclasses.asdict(config),
        config_kind=type(config).__name__,
        multi_pe=point.multi_pe if point.model == "gamma" else True,
    )


# ----------------------------------------------------------------------
# Work programs (preprocessing output), cached like records
# ----------------------------------------------------------------------
_PROGRAM_MEMO: Dict[tuple, object] = {}


def cached_program(matrix: str, variant: str, config: GammaConfig):
    """Build (or recall) the preprocessed work program for a Gamma point.

    Keys on :func:`preprocess_config_key` — exactly the config fields the
    preprocessing pipeline reads — so PE-count/bandwidth sweeps share one
    program per (matrix, variant, cache size, radix).
    """
    options = preprocess_options(variant)
    if options is None:
        return None
    config_fields = preprocess_config_key(config)
    memo_key = (matrix, variant, tuple(sorted(config_fields.items())))
    if memo_key in _PROGRAM_MEMO:
        return _PROGRAM_MEMO[memo_key]

    import numpy as np

    from repro.core import WorkProgram
    from repro.core.scheduler import WorkItem
    from repro.matrices import suite
    from repro.preprocessing import preprocess

    disk_key = diskcache.cache_key(
        "program", matrix=matrix, variant=variant, **config_fields)
    cached = diskcache.load(disk_key)
    if cached is not None:
        items = [
            WorkItem(
                row=row, part=part, num_parts=num_parts,
                coords=np.asarray(coords, dtype=np.int64),
                values=np.asarray(values, dtype=np.float64),
            )
            for row, part, num_parts, coords, values in cached["items"]
        ]
        program = WorkProgram(items, cached["num_rows"], cached["num_cols"])
    else:
        a, b = suite.operands(matrix)
        program = preprocess(a, b, config, options)
        diskcache.store(disk_key, {
            "items": [
                [item.row, item.part, item.num_parts,
                 item.coords.tolist(), item.values.tolist()]
                for item in program.items
            ],
            "num_rows": program.num_rows,
            "num_cols": program.num_cols,
        })
    _PROGRAM_MEMO[memo_key] = program
    return program


# ----------------------------------------------------------------------
# Point execution (shared by the serial facade and parallel workers)
# ----------------------------------------------------------------------
def execute_point(point: SweepPoint) -> RunRecord:
    """Evaluate one sweep point, reading/populating the disk cache."""
    key = record_key(point)
    payload = diskcache.load(key)
    if payload is not None:
        try:
            return RunRecord.from_payload(payload)
        except (KeyError, TypeError, ValueError):
            pass  # stale/foreign entry: recompute and overwrite

    from repro.matrices import suite

    a, b = suite.operands(point.matrix)
    config = point.resolved_config()
    model = get_model(point.model)
    if point.model == "gamma":
        program = cached_program(point.matrix, point.variant, config)
        record = model.run(
            a, b, config, matrix=point.matrix, variant=point.variant,
            multi_pe=point.multi_pe, program=program)
    else:
        c_nnz = execute_point(SweepPoint("gamma", point.matrix)).c_nnz
        record = model.run(a, b, config, matrix=point.matrix, c_nnz=c_nnz)
    diskcache.store(key, record.to_payload())
    return record


def _execute_point_payload(point: SweepPoint) -> dict:
    """Worker entry point (top-level so it pickles).

    Returns the record payload plus the wall-clock seconds the point
    took in the worker, so the parent can surface per-point progress.
    """
    start = time.perf_counter()
    payload = execute_point(point).to_payload()
    return {"payload": payload,
            "wall_seconds": time.perf_counter() - start}


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_sweep(
    matrices: Sequence[str],
    models: Sequence[str] = DEFAULT_MODELS,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    configs: Optional[Sequence[GammaConfig]] = None,
    multi_pe: bool = True,
) -> List[SweepPoint]:
    """Enumerate the (model, matrix, variant, config) cross-product.

    Gamma points expand over ``variants`` and ``configs`` (``None`` =
    scaled default only); baseline points get one evaluation per matrix
    under their default config, matching what the figures consume.
    """
    for model in models:
        if model not in available_models():
            raise ValueError(
                f"unknown model {model!r}; known: {available_models()}")
    for variant in variants:
        if variant not in PREPROCESS_VARIANTS:
            raise ValueError(
                f"unknown preprocessing variant {variant!r}; "
                f"known: {PREPROCESS_VARIANTS}")
    points: List[SweepPoint] = []
    gamma_configs: Sequence[Optional[GammaConfig]] = configs or [None]
    for matrix in matrices:
        for model in models:
            if model == "gamma":
                for config in gamma_configs:
                    for variant in variants:
                        points.append(SweepPoint(
                            "gamma", matrix, variant, config, multi_pe))
            else:
                points.append(SweepPoint(model, matrix, ""))
    return points


def pending_points(points: Iterable[SweepPoint]) -> List[SweepPoint]:
    """Deduplicate a plan and drop points already in the disk cache."""
    seen = set()
    pending = []
    for point in points:
        if point in seen:
            continue
        seen.add(point)
        if diskcache.load(record_key(point)) is None:
            pending.append(point)
    return pending


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_sweep(
    points: Sequence[SweepPoint],
    workers: Optional[int] = None,
    serial: bool = False,
    on_result: Optional[Callable[[SweepPoint, RunRecord], None]] = None,
    on_executed: Optional[
        Callable[[SweepPoint, RunRecord, float], None]] = None,
) -> Dict[SweepPoint, RunRecord]:
    """Execute a sweep, parallelizing cache misses across processes.

    Already-cached points are loaded, not recomputed. Baseline points
    need each matrix's output size, which comes from a plain Gamma run;
    those prerequisite points are executed first so parallel baseline
    workers find them in the cache instead of redoing the simulation.

    Args:
        points: The plan (duplicates are collapsed).
        workers: Process count (default: ``os.cpu_count()``).
        serial: Run misses in this process instead — same results,
            useful for determinism checks and debugging.
        on_result: Called in the parent as each point completes.
        on_executed: Called in the parent for each point actually
            *computed* (a cache miss) with its wall-clock seconds —
            cached loads do not fire it. Prerequisite Gamma runs that
            were not themselves planned fire it too.

    Returns:
        Every planned point mapped to its record, serial or parallel
        alike — the result of a sweep does not depend on how it ran.
    """
    ordered = list(dict.fromkeys(points))
    results: Dict[SweepPoint, RunRecord] = {}

    def finish(point: SweepPoint, record: RunRecord) -> None:
        results[point] = record
        if on_result is not None:
            on_result(point, record)

    pending = pending_points(ordered)
    pending_set = set(pending)
    prerequisites = list(dict.fromkeys(
        SweepPoint("gamma", p.matrix)
        for p in pending if p.model != "gamma"
    ))
    use_processes = (not serial and diskcache.cache_enabled()
                     and (workers is None or workers > 1))
    if use_processes:
        max_workers = workers or os.cpu_count() or 1
        for batch in (pending_points(prerequisites), pending):
            _run_batch_parallel(batch, max_workers, on_executed)
        pending_set = set()  # workers computed (and notified) them all
    # Serial mode (and the no-disk-cache fallback, where processes cannot
    # share results) computes misses right here, in plan order.
    for point in ordered:
        if point in pending_set:
            start = time.perf_counter()
            record = execute_point(point)
            if on_executed is not None:
                on_executed(point, record, time.perf_counter() - start)
        else:
            record = execute_point(point)
        finish(point, record)
    return results


def _run_batch_parallel(
    batch: Sequence[SweepPoint],
    workers: int,
    on_executed: Optional[
        Callable[[SweepPoint, RunRecord, float], None]] = None,
) -> None:
    if not batch:
        return
    with ProcessPoolExecutor(max_workers=min(workers, len(batch))) as pool:
        futures = {pool.submit(_execute_point_payload, point): point
                   for point in batch}
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for future in done:
                outcome = future.result()  # surface worker exceptions
                if on_executed is not None:
                    on_executed(
                        futures[future],
                        RunRecord.from_payload(outcome["payload"]),
                        outcome["wall_seconds"],
                    )
