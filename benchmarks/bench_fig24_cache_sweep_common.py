"""Fig. 24: FiberCache-size sweep on the common set.

Paper: performance improves smoothly from 1.5 MB up, but collapses at
0.75 MB, where almost no capacity is left to capture reuse.
"""


def test_fig24(run_figure):
    result = run_figure("fig24")
    rows = {r["config"]: r for r in result["rows"]}

    # Monotone improvement with capacity.
    assert (rows["12.0MB"]["gmean_speedup"]
            >= rows["3.0MB"]["gmean_speedup"] * 0.98)
    assert (rows["3.0MB"]["gmean_speedup"]
            > rows["0.75MB"]["gmean_speedup"])
    # The small-cache cliff: traffic blows up at 0.75 MB.
    assert (rows["0.75MB"]["mean_traffic"]
            > 1.25 * rows["3.0MB"]["mean_traffic"])
