"""Chaos suite: the sweep engine under deterministic fault injection.

Every scenario arms a :mod:`repro.engine.faults` plan, runs a sweep, and
asserts two things: (1) the sweep *completes* — quarantining only points
that genuinely cannot succeed — and (2) every successful record is
bit-identical (``to_payload()`` equality) to a clean serial run in a
pristine cache, i.e. fault handling never changes results, only
availability.

Worker-death scenarios (hard kill, hang+timeout) need the parallel
executor; exception-style faults are also exercised through the serial
path. The kill-mid-sweep scenario runs a real child Python process that
``os._exit``\\ s partway through and asserts ``--resume`` semantics:
nothing already cached is recomputed.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.engine import diskcache, faults
from repro.engine.sweep import (
    SweepPoint,
    SweepPointError,
    SweepPolicy,
    load_checkpoint,
    plan_sweep,
    record_key,
    run_sweep,
)

MATRICES = ("wiki-Vote", "poisson3Da")
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Fast-failure policy: retries are near-instant so scenarios stay quick.
FAST = dict(backoff_base_seconds=0.01, backoff_max_seconds=0.05)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    yield
    faults.clear_plan()


@pytest.fixture()
def clean_records(tmp_path, monkeypatch):
    """Records from a clean serial sweep in a separate pristine cache."""
    plan = small_plan()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
    clean = run_sweep(plan, serial=True)
    assert clean.complete
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return {point: record.to_payload() for point, record in clean.items()}


def small_plan():
    return plan_sweep(MATRICES, models=("gamma", "sparch"),
                      variants=("none",))


def arm(tmp_path, *specs):
    return faults.FaultPlan.load(
        faults.install_plan(list(specs), tmp_path / "faults"))


def assert_identical(result, clean_records):
    assert set(result) == set(clean_records)
    for point, payload in clean_records.items():
        assert result[point].to_payload() == payload, point.label()


class TestWorkerCrash:
    def test_hard_worker_death_is_retried(self, tmp_path, clean_records):
        """os._exit in a worker kills the process; the point survives."""
        plan = arm(tmp_path, faults.FaultSpec(
            kind="kill", model="gamma", matrix="wiki-Vote"))
        result = run_sweep(
            small_plan(), workers=2,
            policy=SweepPolicy(max_retries=2, **FAST))
        assert result.complete
        assert result.stats["crashes"] == 1
        assert result.stats["retries"] == 1
        assert plan.triggered(0) == 1
        assert_identical(result, clean_records)

    def test_crash_exception_is_retried(self, tmp_path, clean_records):
        plan = arm(tmp_path, faults.FaultSpec(
            kind="crash", model="sparch", matrix="poisson3Da"))
        result = run_sweep(
            small_plan(), workers=2,
            policy=SweepPolicy(max_retries=2, **FAST))
        assert result.complete
        assert result.stats["errors"] == 1
        assert plan.triggered(0) == 1
        assert_identical(result, clean_records)


class TestHang:
    def test_hung_point_times_out_and_retries(self, tmp_path,
                                              clean_records):
        """A hang past the per-point timeout gets its worker killed."""
        arm(tmp_path, faults.FaultSpec(
            kind="hang", model="gamma", matrix="poisson3Da",
            hang_seconds=60.0))
        result = run_sweep(
            small_plan(), workers=2,
            policy=SweepPolicy(timeout_seconds=2.0, max_retries=1,
                               **FAST))
        assert result.complete
        assert result.stats["timeouts"] == 1
        assert result.stats["retries"] == 1
        assert_identical(result, clean_records)


class TestFlaky:
    def test_flaky_then_succeed_parallel(self, tmp_path, clean_records):
        plan = arm(tmp_path, faults.FaultSpec(
            kind="flaky", model="gamma", matrix="wiki-Vote", times=2))
        result = run_sweep(
            small_plan(), workers=2,
            policy=SweepPolicy(max_retries=3, **FAST))
        assert result.complete
        assert plan.triggered(0) == 2
        assert result.stats["retries"] == 2
        assert_identical(result, clean_records)

    def test_flaky_then_succeed_serial(self, tmp_path, clean_records):
        """The retry loop also protects serial (in-process) sweeps."""
        plan = arm(tmp_path, faults.FaultSpec(
            kind="flaky", model="gamma", matrix="wiki-Vote", times=1))
        result = run_sweep(
            small_plan(), serial=True,
            policy=SweepPolicy(max_retries=1, **FAST))
        assert result.complete
        assert plan.triggered(0) == 1
        assert result.stats["retries"] == 1
        assert_identical(result, clean_records)


class TestQuarantine:
    def test_only_genuinely_failing_point_quarantined(
            self, tmp_path, clean_records):
        """A persistent failure is isolated; the rest of the sweep lands."""
        arm(tmp_path, faults.FaultSpec(
            kind="crash", model="gamma", matrix="wiki-Vote",
            times=10_000))
        result = run_sweep(
            small_plan(), workers=2,
            policy=SweepPolicy(max_retries=1, **FAST))
        bad = SweepPoint("gamma", "wiki-Vote", "none")
        # sparch:wiki-Vote needs the quarantined gamma run for c_nnz, so
        # it genuinely cannot succeed either; poisson3Da is untouched.
        assert bad in result.quarantined
        assert result.quarantined[bad].attempts == 2
        for point in plan_sweep(["poisson3Da"],
                                models=("gamma", "sparch"),
                                variants=("none",)):
            assert result[point].to_payload() == clean_records[point]
        assert all(p.matrix == "wiki-Vote" for p in result.quarantined)

    def test_fail_fast_raises(self, tmp_path):
        arm(tmp_path, faults.FaultSpec(
            kind="crash", model="gamma", matrix="wiki-Vote",
            times=10_000))
        with pytest.raises(SweepPointError, match="gamma:wiki-Vote"):
            run_sweep(
                small_plan(), serial=True,
                policy=SweepPolicy(max_retries=0, fail_fast=True,
                                   **FAST))

    def test_resume_skips_known_bad_points(self, tmp_path):
        """--resume does not re-burn retries on quarantined points."""
        plan = arm(tmp_path, faults.FaultSpec(
            kind="crash", model="gamma", matrix="wiki-Vote",
            times=10_000))
        sweep = small_plan()
        first = run_sweep(sweep, serial=True,
                          policy=SweepPolicy(max_retries=1, **FAST))
        assert not first.complete
        burned = plan.triggered(0)
        # 2 attempts on gamma:wiki-Vote directly, plus 2 more through
        # sparch:wiki-Vote's recursive c_nnz prerequisite.
        assert burned == 4
        resumed = run_sweep(sweep, serial=True, resume=True,
                            policy=SweepPolicy(max_retries=1, **FAST))
        assert set(resumed.quarantined) == set(first.quarantined)
        assert all(f.reason == "previous-run"
                   for f in resumed.quarantined.values())
        # No new attempts were made against the known-bad point.
        assert plan.triggered(0) == burned
        # Everything that could succeed is served from cache, unchanged.
        for point, record in first.items():
            assert resumed[point].to_payload() == record.to_payload()


class TestCorruptCache:
    def test_corrupt_entry_invalidated_and_recomputed(
            self, tmp_path, clean_records):
        """A truncated cache entry is detected, dropped, and recomputed."""
        point = SweepPoint("gamma", "wiki-Vote", "none")
        arm(tmp_path, faults.FaultSpec(
            kind="corrupt_cache", model="gamma", matrix="wiki-Vote"))
        from repro.engine import execute_point, pending_points

        execute_point(point)  # computes, stores, then poisons the entry
        entry = diskcache.entry_path(record_key(point))
        assert entry.exists()
        with pytest.raises(json.JSONDecodeError):
            json.loads(entry.read_text())
        faults.clear_plan()
        # The poisoned entry reads as a miss (and is unlinked), so the
        # next sweep recomputes exactly this point...
        assert pending_points([point]) == [point]
        assert not entry.exists()
        executed = []
        result = run_sweep(small_plan(), serial=True,
                           policy=SweepPolicy(**FAST),
                           on_executed=lambda p, r, w: executed.append(p))
        assert point in executed
        # ...and the recomputed record is bit-identical to a clean run.
        assert_identical(result, clean_records)

    def test_worker_corrupt_write_self_heals(self, tmp_path,
                                             clean_records):
        """A worker's poisoned write is caught by the parent's read-back,
        recomputed in-process, and rewritten valid — same results."""
        point = SweepPoint("gamma", "wiki-Vote", "none")
        arm(tmp_path, faults.FaultSpec(
            kind="corrupt_cache", model="gamma", matrix="wiki-Vote"))
        result = run_sweep(small_plan(), workers=2,
                           policy=SweepPolicy(**FAST))
        assert result.complete
        assert_identical(result, clean_records)
        # The entry the worker truncated ends up valid on disk.
        assert diskcache.load(record_key(point)) is not None

    def test_checksum_mismatch_invalidated(self):
        """Bit-rot (valid JSON, wrong digest) is also caught."""
        diskcache.store("somekey", {"x": 1})
        entry = diskcache.entry_path("somekey")
        envelope = json.loads(entry.read_text())
        envelope["payload"]["x"] = 2  # flip a bit, keep old checksum
        entry.write_text(json.dumps(envelope))
        assert diskcache.load("somekey") is None
        assert not entry.exists()  # invalidated in place


class TestKillMidSweep:
    @pytest.mark.timeout(420)  # drives a whole child sweep process
    def test_resume_recomputes_nothing_cached(self, tmp_path,
                                              clean_records):
        """SIGKILL-equivalent death mid-sweep, then resume from cache."""
        driver = tmp_path / "driver.py"
        driver.write_text(textwrap.dedent("""
            import os, sys
            from repro.engine import plan_sweep, run_sweep

            done = []
            def executed(point, record, wall):
                print("computed", point.label(), flush=True)
                done.append(point)
                if len(done) == 2:
                    os._exit(137)  # no cleanup, like SIGKILL

            run_sweep(plan_sweep(%r, models=("gamma", "sparch"),
                                 variants=("none",)),
                      serial=True, on_executed=executed)
        """ % (list(MATRICES),)))
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            "src" + os.pathsep + env.get("PYTHONPATH", ""))
        proc = subprocess.run(
            [sys.executable, str(driver)], env=env, cwd=ROOT,
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 137, proc.stderr
        already = {line.split()[1] for line in proc.stdout.splitlines()
                   if line.startswith("computed")}
        assert len(already) == 2
        # Resume: only the not-yet-cached points are computed.
        executed = []
        result = run_sweep(small_plan(), serial=True, resume=True,
                           on_executed=lambda p, r, w: executed.append(p))
        assert result.complete
        assert {p.label() for p in executed}.isdisjoint(already)
        assert len(executed) == len(small_plan()) - 2
        assert_identical(result, clean_records)


class TestTelemetryAgreement:
    """Merged run-log span counts must agree *exactly* with
    ``SweepResult.stats`` — the engine emits each ``sweep/<stat>``
    instant from the same closure that increments the stat, so any
    drift is a bug, not sampling noise."""

    def _run_instrumented(self, tele_dir, plan_points, **kwargs):
        from repro.obs import spans

        spans.enable(tele_dir)
        try:
            result = run_sweep(plan_points, **kwargs)
        finally:
            spans.disable()
        merged = spans.merge_directory(tele_dir)
        counts = spans.count_by_name(merged["spans"])
        return result, counts

    def assert_counts_match(self, result, counts):
        for name, value in result.stats.items():
            assert counts.get(f"sweep/{name}", 0) == value, name

    def test_retry_spans_match_stats(self, tmp_path):
        arm(tmp_path, faults.FaultSpec(
            kind="flaky", model="gamma", matrix="wiki-Vote", times=2))
        result, counts = self._run_instrumented(
            tmp_path / "tele", small_plan(), workers=2,
            policy=SweepPolicy(max_retries=3, **FAST))
        assert result.complete
        assert result.stats["retries"] == 2
        self.assert_counts_match(result, counts)
        # faults.py publishes the injected cause alongside the engine's
        # observed effect: one fault/injected instant per trigger.
        assert counts.get("fault/injected", 0) == 2

    def test_quarantine_spans_match_stats(self, tmp_path):
        arm(tmp_path, faults.FaultSpec(
            kind="crash", model="gamma", matrix="wiki-Vote",
            times=10_000))
        result, counts = self._run_instrumented(
            tmp_path / "tele", small_plan(), serial=True,
            policy=SweepPolicy(max_retries=1, **FAST))
        assert not result.complete
        assert result.stats["quarantined"] == len(result.quarantined)
        self.assert_counts_match(result, counts)
        assert counts.get("fault/injected", 0) >= 1

    def test_timeout_kill_leaves_consistent_telemetry(self, tmp_path):
        """A killed worker's span file may end mid-line; the merge must
        still deliver counts that agree with the parent's stats."""
        arm(tmp_path, faults.FaultSpec(
            kind="hang", model="gamma", matrix="poisson3Da",
            hang_seconds=60.0))
        result, counts = self._run_instrumented(
            tmp_path / "tele", small_plan(), workers=2,
            policy=SweepPolicy(timeout_seconds=2.0, max_retries=1,
                               **FAST))
        assert result.complete
        assert result.stats["timeouts"] == 1
        self.assert_counts_match(result, counts)
        assert counts.get("sweep/timeout_kill", 0) == 1

    def test_clean_run_spans_match_stats(self, tmp_path):
        result, counts = self._run_instrumented(
            tmp_path / "tele", small_plan(), serial=True,
            policy=SweepPolicy(**FAST))
        assert result.complete
        self.assert_counts_match(result, counts)
        # Cache events from the one diskcache code path also land.
        from repro.obs import spans

        merged = spans.merge_directory(tmp_path / "tele")
        cache_counts = spans.count_by_name(merged["spans"],
                                           prefix="cache/")
        assert cache_counts.get("cache/store", 0) >= len(result)


class TestCheckpoint:
    def test_checkpoint_tracks_progress(self):
        sweep = small_plan()
        result = run_sweep(sweep, serial=True)
        checkpoint = load_checkpoint(sweep)
        assert checkpoint is not None
        assert checkpoint["completed"] == len(sweep)
        assert checkpoint["total"] == len(sweep)
        assert checkpoint["quarantined"] == []
        assert result.complete

    def test_checkpoint_is_plan_keyed(self):
        sweep = small_plan()
        run_sweep(sweep, serial=True)
        other = plan_sweep(["wiki-Vote"], models=("gamma",),
                           variants=("none",))
        # A different plan has its own checkpoint (initially absent...
        # though its points are already cached by the bigger sweep).
        assert load_checkpoint(other) is None
