"""Tests for affinity reordering, selective tiling, and the pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GammaConfig, PreprocessConfig
from repro.core import GammaSimulator
from repro.matrices import generators
from repro.matrices.csr import CsrMatrix
from repro.preprocessing import (
    affinity_reorder,
    estimate_row_footprint,
    preprocess,
    preprocess_with_report,
    split_row,
    tile_matrix,
)
from repro.preprocessing.reorder import is_permutation, reorder_for_gamma


class TestAffinityReorder:
    def test_returns_permutation(self):
        a = generators.uniform_random(60, 60, 4.0, seed=1)
        perm = affinity_reorder(a, window=8)
        assert is_permutation(perm, 60)

    def test_starts_at_start_row(self):
        a = generators.uniform_random(30, 30, 3.0, seed=2)
        perm = affinity_reorder(a, window=4, start_row=17)
        assert perm[0] == 17

    def test_groups_identical_rows(self):
        """Rows with identical column sets must end up adjacent."""
        rows = []
        rng = np.random.default_rng(3)
        patterns = [np.sort(rng.choice(100, 10, replace=False))
                    for _ in range(5)]
        assignment = []
        for i in range(40):
            p = i % 5
            assignment.append(p)
            rows.append((patterns[p], rng.random(10)))
        from repro.matrices.fiber import Fiber

        a = CsrMatrix.from_rows(
            [Fiber(c, v, check=False) for c, v in rows], 100)
        perm = affinity_reorder(a, window=4)
        # After the first few placements, consecutive rows share patterns.
        runs = [assignment[perm[i]] == assignment[perm[i + 1]]
                for i in range(len(perm) - 1)]
        assert sum(runs) >= 30  # 35 possible same-pattern adjacencies

    def test_recovers_renumbered_band(self):
        """The Sec. 4.1 core claim: reordering restores locality."""
        mesh = generators.mesh(400, 12.0, seed=4)
        scrambled = generators.symmetric_permute(mesh, seed=5)
        config = GammaConfig(fibercache_bytes=16 * 1024)
        sim = GammaSimulator(config, keep_output=False)
        base = sim.run(scrambled, scrambled)
        perm = reorder_for_gamma(scrambled, scrambled, config)
        from repro.core.scheduler import WorkProgram

        reordered = scrambled.permute_rows(perm)
        program_rows = WorkProgram.from_matrix(reordered)
        # Remap the program's rows back to original row ids for C.
        for item in program_rows.items:
            object.__setattr__(item, "row", perm[item.row])
        improved = sim.run(scrambled, scrambled, program=program_rows)
        assert (improved.traffic_bytes["B"]
                < 0.6 * base.traffic_bytes["B"])

    def test_window_validation(self):
        a = generators.uniform_random(10, 10, 2.0, seed=6)
        with pytest.raises(ValueError, match="window"):
            affinity_reorder(a, window=0)
        with pytest.raises(ValueError, match="start_row"):
            affinity_reorder(a, window=2, start_row=10)

    def test_empty_matrix(self):
        a = CsrMatrix.from_rows([], 5)
        assert affinity_reorder(a, window=1) == []


class TestSplitRow:
    def test_coordinate_space_split(self):
        coords = np.array([0, 10, 20, 30, 40, 50, 60, 70])
        values = np.arange(8.0)
        pieces = split_row(coords, values, 0, 80, radix=4)
        assert len(pieces) == 4
        for piece_coords, _ in pieces:
            # Each piece spans one even coordinate subrange.
            assert piece_coords.max() - piece_coords.min() < 20

    def test_empty_buckets_skipped(self):
        coords = np.array([0, 1, 79])
        values = np.ones(3)
        pieces = split_row(coords, values, 0, 80, radix=8)
        assert len(pieces) == 2  # bucket 0 and bucket 7

    def test_preserves_all_nonzeros(self):
        rng = np.random.default_rng(7)
        coords = np.sort(rng.choice(1000, 100, replace=False))
        values = rng.random(100)
        pieces = split_row(coords, values, 0, 1000, radix=16)
        recombined = np.concatenate([c for c, _ in pieces])
        np.testing.assert_array_equal(np.sort(recombined), coords)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            split_row(np.array([1]), np.array([1.0]), 5, 5, radix=4)


class TestTileMatrix:
    def _dense_sparse_matrix(self):
        return generators.mixed_density(
            100, 1000, sparse_nnz_per_row=4.0, dense_row_fraction=0.05,
            dense_row_nnz=400, seed=8)

    def test_selective_tiles_only_dense_rows(self):
        a = self._dense_sparse_matrix()
        fragments = tile_matrix(
            a, avg_b_row_nnz=10.0, config=GammaConfig(radix=8),
            threshold_bytes=10_000)
        frag_rows = {}
        for frag in fragments:
            frag_rows.setdefault(frag.row, []).append(frag)
        for row, frags in frag_rows.items():
            if a.row_nnz(row) > 10_000 / (10.0 * 12):
                assert len(frags) > 1, f"dense row {row} not tiled"
            else:
                assert len(frags) == 1, f"sparse row {row} tiled"

    def test_nonselective_tiles_everything(self):
        a = self._dense_sparse_matrix()
        fragments = tile_matrix(
            a, avg_b_row_nnz=10.0, config=GammaConfig(radix=8),
            selective=False)
        multi = sum(1 for f in fragments if f.nnz < a.row_nnz(f.row))
        assert multi > 0
        rows_with_multiple = len(fragments) - len(
            {f.row for f in fragments})
        assert rows_with_multiple > 50

    def test_fragments_cover_matrix(self):
        a = self._dense_sparse_matrix()
        fragments = tile_matrix(a, avg_b_row_nnz=10.0,
                                threshold_bytes=10_000)
        per_row = {}
        for frag in fragments:
            per_row[frag.row] = per_row.get(frag.row, 0) + frag.nnz
        for row in range(a.num_rows):
            assert per_row.get(row, 0) == a.row_nnz(row)

    def test_footprint_estimate(self):
        assert estimate_row_footprint(100, 10.0) == 100 * 10 * 12

    def test_recursive_split_bounds_fragment_footprint(self):
        # One giant dense row in a wide matrix must split recursively.
        rng = np.random.default_rng(9)
        coords = np.sort(rng.choice(100_000, 5000, replace=False))
        from repro.matrices.fiber import Fiber

        a = CsrMatrix.from_rows(
            [Fiber(coords, rng.random(5000), check=False)], 100_000)
        threshold = 50 * 12 * 10.0  # 50 nnz per fragment budget
        fragments = tile_matrix(
            a, avg_b_row_nnz=10.0, config=GammaConfig(radix=4),
            threshold_bytes=threshold)
        assert len(fragments) > 4  # recursion went deeper than one round
        sizes = [f.nnz for f in fragments]
        assert max(sizes) <= 5000 / 4  # strictly smaller than one round


class TestPipeline:
    def test_program_covers_matrix(self):
        a = generators.mixed_density(
            80, 80, 6.0, dense_row_fraction=0.1, dense_row_nnz=60, seed=10)
        config = GammaConfig(radix=8, fibercache_bytes=16 * 1024)
        program = preprocess(a, a, config, PreprocessConfig.full())
        program.validate_against(a)

    def test_report_fields(self):
        a = generators.mixed_density(
            80, 80, 6.0, dense_row_fraction=0.1, dense_row_nnz=60, seed=11)
        config = GammaConfig(radix=8, fibercache_bytes=16 * 1024)
        program, report = preprocess_with_report(
            a, a, config, PreprocessConfig.full())
        assert report.num_rows == 80
        assert report.num_fragments >= 80
        assert report.num_tiled_rows >= 0
        assert report.reorder_window >= 1

    def test_no_preprocessing_options(self):
        a = generators.uniform_random(40, 40, 3.0, seed=12)
        program = preprocess(a, a, options=PreprocessConfig.none())
        rows = [item.row for item in program.items]
        assert rows == sorted(rows)  # natural order retained

    def test_reorder_never_chosen_when_it_hurts(self):
        """The reuse-distance guard keeps the better ordering."""
        a = generators.mesh(300, 10.0, seed=13)  # already perfectly local
        config = GammaConfig(fibercache_bytes=8 * 1024)
        sim = GammaSimulator(config, keep_output=False)
        natural = sim.run(a, a)
        program = preprocess(a, a, config, PreprocessConfig.reorder_only())
        preprocessed = sim.run(a, a, program=program)
        assert (preprocessed.traffic_bytes["B"]
                <= natural.traffic_bytes["B"] * 1.1)

    def test_functional_equivalence_under_full_pipeline(self):
        a = generators.mixed_density(
            60, 60, 5.0, dense_row_fraction=0.1, dense_row_nnz=50, seed=14)
        config = GammaConfig(radix=4, fibercache_bytes=8 * 1024)
        program = preprocess(a, a, config, PreprocessConfig.full())
        result = GammaSimulator(config).run(a, a, program=program)
        expected = (a.to_scipy() @ a.to_scipy()).toarray()
        np.testing.assert_allclose(result.output.to_dense(), expected,
                                   atol=1e-9)

    def test_variant_constructors(self):
        assert PreprocessConfig.none().reorder is False
        assert PreprocessConfig.full().tile is True
        assert PreprocessConfig.reorder_only().tile is False
        assert PreprocessConfig.reorder_tile_all().selective is False

    def test_threshold_bytes_override(self):
        options = PreprocessConfig(tile_threshold_bytes=12345.0)
        assert options.threshold_bytes(10**9) == 12345.0
        default = PreprocessConfig()
        assert default.threshold_bytes(1000) == 250.0


# --- Property tests (Hypothesis) --------------------------------------

from repro.matrices.builder import CooBuilder  # noqa: E402
from repro.preprocessing.pipeline import estimate_b_traffic  # noqa: E402
from repro.preprocessing.tiling import RowFragment  # noqa: E402

#: Deterministic exploration so CI and local runs see identical cases.
PROPERTY = settings(derandomize=True, deadline=None, max_examples=40)


@st.composite
def csr_matrix(draw, max_rows=24, max_cols=24, max_nnz=80):
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    count = draw(st.integers(0, max_nnz))
    entries = draw(st.lists(
        st.tuples(st.integers(0, rows - 1), st.integers(0, cols - 1),
                  st.floats(0.1, 5.0)),
        min_size=count, max_size=count))
    builder = CooBuilder(rows, cols)
    for row, col, value in entries:
        builder.add(row, col, value)
    return builder.build()


@st.composite
def operand_pair(draw, max_dim=18, max_nnz=60):
    """A conformable (A, B) pair for C = A x B."""
    m = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))

    def build(rows, cols):
        count = draw(st.integers(0, max_nnz))
        builder = CooBuilder(rows, cols)
        for _ in range(count):
            builder.add(draw(st.integers(0, rows - 1)),
                        draw(st.integers(0, cols - 1)),
                        draw(st.floats(0.1, 5.0)))
        return builder.build()

    return build(m, k), build(k, n)


def row_columns(a):
    return [set(a.coords[a.offsets[r]:a.offsets[r + 1]].tolist())
            for r in range(a.num_rows)]


def csr_entries(matrix):
    out = {}
    for row in range(matrix.num_rows):
        start, end = matrix.offsets[row], matrix.offsets[row + 1]
        for idx in range(start, end):
            out[(row, int(matrix.coords[idx]))] = float(matrix.values[idx])
    return out


class TestReorderProperties:
    @PROPERTY
    @given(a=csr_matrix(), window=st.integers(1, 8),
           start=st.integers(0, 23))
    def test_always_a_valid_permutation(self, a, window, start):
        """Algorithm 1 output is a permutation from any start row."""
        perm = affinity_reorder(a, window=window,
                                start_row=min(start, a.num_rows - 1))
        assert is_permutation(perm, a.num_rows)

    @PROPERTY
    @given(a=csr_matrix(), window=st.integers(1, 6))
    def test_greedy_choice_is_stepwise_optimal(self, a, window):
        """At every step the placed row maximizes affinity with the
        current window over all unplaced rows — the Algorithm 1 greedy
        invariant. (The *global* windowed-affinity sum carries no such
        guarantee: greedy can lose it to the identity order, which is
        why the pipeline keeps whichever order its reuse-distance model
        prefers — see ``test_pipeline_never_worsens_predicted_traffic``.)

        Column-degree capping never fires at this size (cap >= 64), so
        the heap keys equal the plain set-intersection affinity.
        """
        perm = affinity_reorder(a, window=window)
        cols = row_columns(a)

        def affinity(row, position):
            return sum(len(cols[row] & cols[perm[j]])
                       for j in range(max(0, position - window), position))

        unplaced = set(range(a.num_rows)) - {perm[0]}
        for position in range(1, a.num_rows):
            chosen = perm[position]
            best = max(affinity(row, position) for row in unplaced)
            assert affinity(chosen, position) == best
            unplaced.discard(chosen)

    @PROPERTY
    @given(pair=operand_pair(), capacity_kb=st.integers(1, 8))
    def test_pipeline_never_worsens_predicted_traffic(self, pair,
                                                      capacity_kb):
        """The reuse-distance guard: the order the pipeline emits never
        predicts more B traffic than the natural (identity) order."""
        a, b = pair
        capacity = capacity_kb * 1024
        config = GammaConfig(fibercache_bytes=capacity)
        program = preprocess(a, b, config, PreprocessConfig.reorder_only())
        fragments = [
            RowFragment(row, a.coords[a.offsets[row]:a.offsets[row + 1]],
                        a.values[a.offsets[row]:a.offsets[row + 1]])
            for row in range(a.num_rows) if a.row_nnz(row) > 0
        ]
        index_of = {frag.row: i for i, frag in enumerate(fragments)}
        chosen = [index_of[item.row] for item in program.items]
        natural = list(range(len(fragments)))
        assert sorted(chosen) == natural  # still a permutation
        assert (estimate_b_traffic(fragments, chosen, b, capacity)
                <= estimate_b_traffic(fragments, natural, b, capacity))


class TestTilingProperties:
    @PROPERTY
    @given(pair=operand_pair())
    def test_tiled_then_merged_equals_untiled(self, pair):
        """Tiling every row and recombining the subrow partials is
        functionally invisible: same output as the untiled run."""
        a, b = pair
        config = GammaConfig(num_pes=4, radix=4,
                             fibercache_bytes=4 * 1024,
                             fibercache_ways=4, fibercache_banks=4)
        options = PreprocessConfig(reorder=False, selective=False)
        program = preprocess(a, b, config, options)
        program.validate_against(a)
        tiled = GammaSimulator(config).run(a, b, program=program).output
        untiled = GammaSimulator(config).run(a, b).output
        got, want = csr_entries(tiled), csr_entries(untiled)
        assert set(got) == set(want)
        for coord, value in want.items():
            # Subrow merge order changes float summation order.
            assert got[coord] == pytest.approx(value, rel=1e-9), coord
