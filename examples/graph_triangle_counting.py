#!/usr/bin/env python
"""Triangle counting with spMspM on Gamma.

Graph analytics is one of the paper's motivating domains (Sec. 2): the
number of triangles in an undirected graph is trace(A^3) / 6, which
reduces to one spMspM (A x A) followed by an element-wise masked
reduction with A. This example runs the spMspM on the simulated
accelerator and compares against a direct combinatorial count.
"""

import numpy as np

from repro import GammaConfig, GammaSimulator
from repro.matrices import generators
from repro.matrices.csr import CsrMatrix


def undirected_graph(num_nodes: int, seed: int) -> CsrMatrix:
    """A symmetric 0/1 adjacency matrix with clustered structure."""
    base = generators.block_random(
        num_nodes, num_nodes, 6.0, seed=seed, num_blocks=8,
        in_block_fraction=0.9)
    dense = base.to_dense()
    dense = ((dense + dense.T) > 0).astype(float)
    np.fill_diagonal(dense, 0.0)
    return CsrMatrix.from_dense(dense)


def count_triangles_direct(adj: CsrMatrix) -> int:
    """Reference count: sum over edges of common-neighbor overlaps."""
    triangles = 0
    for u in range(adj.num_rows):
        row_u = adj.row(u)
        neighbors_u = set(row_u.coords.tolist())
        for v in row_u.coords.tolist():
            if v <= u:
                continue
            row_v = adj.row(v)
            shared = neighbors_u.intersection(row_v.coords.tolist())
            triangles += sum(1 for w in shared if w > v)
    return triangles


def count_triangles_spmspm(adj: CsrMatrix,
                           simulator: GammaSimulator) -> tuple:
    """trace of (A x A) masked by A, / 2... computed per edge (u, v):
    (A^2)[u, v] counts paths u-w-v; summing over edges and dividing by 6
    gives the triangle count."""
    result = simulator.run(adj, adj)
    squared = result.output
    total = 0.0
    for u in range(adj.num_rows):
        mask = adj.row(u)
        paths = squared.row(u)
        total += mask.dot(paths)  # sparse intersection
    return int(round(total / 6)), result


def main() -> None:
    adj = undirected_graph(800, seed=11)
    print(f"graph: {adj.num_rows} nodes, {adj.nnz // 2} edges")

    simulator = GammaSimulator(GammaConfig())
    accelerated, result = count_triangles_spmspm(adj, simulator)
    direct = count_triangles_direct(adj)

    print(f"triangles (Gamma spMspM): {accelerated}")
    print(f"triangles (direct):       {direct}")
    assert accelerated == direct, "triangle counts disagree!"

    print(f"\nspMspM cycles: {result.cycles:,.0f}  "
          f"traffic: {result.total_traffic / 1024:.0f} KB  "
          f"({result.normalized_traffic:.2f}x compulsory)")


if __name__ == "__main__":
    main()
