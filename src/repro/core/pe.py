"""Processing element: linearly combines sparse fibers (paper Sec. 3.1, Fig. 6).

A PE takes up to ``radix`` input fiber descriptors (location, size, scaling
factor), streams them through the high-radix merger, multiplies each merged
element by its way's scaling factor, and accumulates same-coordinate values
into the output fiber.

Two models are provided:

* :meth:`ProcessingElement.combine` — fast functional path (vectorized), with
  the closed-form cycle count (1 input element per cycle + pipeline fill).
* :meth:`ProcessingElement.combine_detailed` — element-by-element path through
  the merger / multiplier / accumulator pipeline, counting cycles explicitly.
  The tests assert both models agree on output and timing.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.accumulator import Accumulator
from repro.core.merger import HighRadixMerger
from repro.matrices.fiber import Fiber, linear_combine

#: Pipeline fill charged when a pass runs in isolation (depth of a
#: radix-64 comparator tree).
_STANDALONE_FILL = 6


class PEResult:
    """Outcome of one PE pass.

    A ``__slots__`` class rather than a dataclass: one is built per task
    (millions per sweep point), so construction is on the hot path.

    Attributes:
        output: The produced (partial or final) output fiber.
        cycles: PE busy cycles for the pass: one consumed input element per
            cycle. Pipeline fill is excluded — PEs stage the next task while
            processing the current one and switch in a single cycle
            (Sec. 3.3), so fill only shows at the very start of a run.
        multiplies: Scaling multiplications performed (= input elements).
    """

    __slots__ = ("output", "cycles", "multiplies")

    def __init__(self, output: Fiber, cycles: int, multiplies: int) -> None:
        self.output = output
        self.cycles = cycles
        self.multiplies = multiplies

    def __repr__(self) -> str:
        return (f"PEResult(output={self.output!r}, cycles={self.cycles}, "
                f"multiplies={self.multiplies})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PEResult):
            return NotImplemented
        return (self.output == other.output
                and self.cycles == other.cycles
                and self.multiplies == other.multiplies)

    @property
    def unpipelined_cycles(self) -> int:
        """Latency of this pass in isolation (adds the merger tree fill)."""
        return self.cycles + _STANDALONE_FILL


class ProcessingElement:
    """One Gamma PE: a radix-R merger, a multiplier, and an accumulator.

    Args:
        radix: Maximum input fibers per pass (64 in the paper).
    """

    def __init__(self, radix: int = 64) -> None:
        self.merger = HighRadixMerger(radix)
        self.radix = radix

    def combine(
        self, fibers: Sequence[Fiber], scales: Sequence[float],
        semiring=None,
    ) -> PEResult:
        """Linearly combine fibers in one pass (fast functional model).

        Args:
            semiring: Scalar algebra for the multiply and accumulate units;
                None selects ordinary (+, x).
        """
        self._check_radix(fibers)
        output = linear_combine(fibers, scales, semiring=semiring)
        total_in = 0
        for f in fibers:
            total_in += len(f.coords)
        return PEResult(output, max(1, total_in), total_in)

    def combine_detailed(
        self, fibers: Sequence[Fiber], scales: Sequence[float],
        semiring=None,
    ) -> PEResult:
        """Element-accurate pipeline model (merger -> multiply -> accumulate).

        Walks the exact per-cycle behaviour: each cycle the merger emits one
        (coordinate, way) pair, the way index selects the value-buffer head
        and the scaling-factor register, the multiplier produces the scaled
        value, and the accumulator folds same-coordinate runs.
        """
        self._check_radix(fibers)
        if len(fibers) != len(scales):
            raise ValueError(
                f"{len(fibers)} fibers but {len(scales)} scaling factors"
            )
        merged = self.merger.merge([f.coords for f in fibers])
        heads = [0] * len(fibers)
        accumulator = Accumulator(
            add=semiring.add if semiring is not None else None)
        mul = semiring.mul if semiring is not None else (
            lambda x, y: x * y)
        multiplies = 0
        for coord, way in merged:
            value = float(fibers[way].values[heads[way]])
            heads[way] += 1
            accumulator.push(coord, mul(scales[way], value))
            multiplies += 1
        output = accumulator.flush()
        return PEResult(
            output=output,
            cycles=max(1, len(merged)),
            multiplies=multiplies,
        )

    def _check_radix(self, fibers: Sequence[Fiber]) -> None:
        if len(fibers) > self.radix:
            raise ValueError(
                f"{len(fibers)} input fibers exceed PE radix {self.radix}; "
                "the scheduler must split this combination into a task tree"
            )


def task_cycles(input_lengths: Sequence[int]) -> int:
    """Closed-form PE busy time for a merge pass over these input sizes."""
    return max(1, sum(input_lengths))


def epoch_merge_groups(el_task, el_coords, num_cols, num_tasks):
    """Merge-order plan for a whole epoch of PE passes.

    Combines :func:`repro.core.merger.composite_key_order` (the batched
    comparator-tree emission order) with the per-pass output sizing the
    batched simulator needs before values are computed: ``out_lens[t]``
    is the number of distinct coordinates pass ``t`` emits, i.e. the
    length of its output fiber.

    Returns ``(order, flags, out_lens)``; feed ``order``/``flags`` plus
    the scaled value stream to
    :func:`repro.core.accumulator.accumulate_groups` for the values.
    """
    import numpy as np

    from repro.core.merger import composite_key_order

    order, flags = composite_key_order(el_task, el_coords, num_cols)
    if len(order) == 0:
        return order, flags, np.zeros(num_tasks, dtype=np.int64)
    out_lens = np.bincount(el_task[order][flags], minlength=num_tasks)
    return order, flags, out_lens


def epoch_cycles(total_input_elements):
    """Vectorized :func:`task_cycles` for a whole epoch of merge passes.

    Takes the per-task total input element counts as an integer array
    and returns each task's busy cycles under the paper's PE timing law
    (one merged input element per cycle, minimum one cycle per pass) —
    the same value ``combine`` and ``combine_detailed`` report, so the
    batched core's timing is bit-identical to per-task execution.
    """
    import numpy as np

    return np.maximum(total_input_elements, 1)
